#!/usr/bin/env python
"""Robustness trajectory bench: corrupted mini-grid, curves, and gate.

Runs a small, fixed corruption sweep (ECTS + TEASER on scaled PowerCons,
three operators at severities 1/3/5) through
:func:`repro.robustness.run_robustness` and writes the deterministic
portion of the report to ``BENCH_ROBUST.json``; the committed copy at
the repository root is the regression reference. Corruption is seeded
per (dataset, op, severity) via crc32, so the recorded degradation
curves are a pure function of code + config — identical on every
machine.

Like ``bench_serve.py``, this is a standalone script (CI's
``robustness-smoke`` job runs it without pytest)::

    PYTHONPATH=src python benchmarks/bench_robust.py               # run
    PYTHONPATH=src python benchmarks/bench_robust.py \
        --check BENCH_ROBUST.json                                  # gate
    PYTHONPATH=src python benchmarks/bench_robust.py --determinism # 2x run

``--check`` fails when (a) a clean severity-0 cell moved beyond a small
epsilon against the committed baseline — corruption must never leak
into the clean cells — or (b) any robustness-AUC fell below half its
committed value (the factor-of-two philosophy of perf-smoke: loose
enough for cross-version numeric noise, tight enough to catch a broken
operator or a collapsed classifier). ``--determinism`` runs the grid
twice and fails on any byte-level difference.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

from repro.core.registry import default_algorithms, default_datasets
from repro.robustness import CorruptionSpec, run_robustness

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_ROBUST.json"

# The fixed bench grid: small enough for CI, wide enough to cover a
# NaN-producing, a value-perturbing, and a label-space operator.
ALGORITHMS = ["ECTS", "TEASER"]
DATASETS = ["PowerCons"]
OPS = [
    CorruptionSpec(op="missing_blocks", severity=1),
    CorruptionSpec(op="additive_noise", severity=1),
    CorruptionSpec(op="label_noise", severity=1),
]
SEVERITIES = [1, 3, 5]
SCALE = 0.08
FOLDS = 2
SEED = 0

# Gate thresholds.
_CLEAN_EPSILON = 1e-9  # severity-0 cells must not move at all
_AUC_FACTOR = 0.5  # robustness-AUC may not fall below baseline/2
_AUC_EPSILON = 0.05  # absolute floor so tiny baselines stay gateable


def _run_grid():
    report = run_robustness(
        default_algorithms(fast=True),
        default_datasets(scale=SCALE, seed=SEED),
        ops=OPS,
        severities=SEVERITIES,
        algorithm_names=ALGORITHMS,
        dataset_names=DATASETS,
        n_folds=FOLDS,
        seed=SEED,
        wide_threshold=max(2, int(1300 * SCALE)),
        large_threshold=max(2, int(1000 * SCALE)),
    )
    print(report.render())
    return report.deterministic_dict()


def _check_determinism() -> int:
    first, second = _run_grid(), _run_grid()
    if json.dumps(first, sort_keys=True) != json.dumps(
        second, sort_keys=True
    ):
        print(
            "\nDETERMINISM FAILURE: robustness reports differed between "
            "identical runs",
            file=sys.stderr,
        )
        return 1
    print("\ndeterminism ok: the corrupted grid reproduced exactly")
    return 0


def _check(current: dict, baseline_path: Path) -> int:
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    failures = []
    # (a) Severity-0 no-op gate: the clean cells are shared with the
    # plain grid and must be unmoved by the corruption machinery.
    for algorithm, per_dataset in baseline.get("clean", {}).items():
        for dataset, metrics in per_dataset.items():
            measured = current.get("clean", {}).get(algorithm, {}).get(
                dataset
            )
            if measured is None:
                failures.append(f"clean {algorithm}/{dataset}: missing")
                continue
            for metric, reference in metrics.items():
                if reference is None or measured.get(metric) is None:
                    continue
                if abs(measured[metric] - reference) > _CLEAN_EPSILON:
                    failures.append(
                        f"clean {algorithm}/{dataset}/{metric}: "
                        f"{measured[metric]:.9f} != baseline "
                        f"{reference:.9f} (severity-0 cells must be "
                        "bit-identical to the clean grid)"
                    )
    # (b) Robustness-AUC gate.
    for op_label, per_algorithm in baseline.get("robustness", {}).items():
        for algorithm, entry in per_algorithm.items():
            for metric, reference in entry.get("auc", {}).items():
                if reference is None:
                    continue
                measured = (
                    current.get("robustness", {})
                    .get(op_label, {})
                    .get(algorithm, {})
                    .get("auc", {})
                    .get(metric)
                )
                if measured is None:
                    failures.append(
                        f"auc {algorithm}/{op_label}/{metric}: missing"
                    )
                    continue
                floor = min(reference * _AUC_FACTOR, reference - _AUC_EPSILON)
                if measured < floor:
                    failures.append(
                        f"auc {algorithm}/{op_label}/{metric}: "
                        f"{measured:.4f} fell below {floor:.4f} "
                        f"(baseline {reference:.4f} x {_AUC_FACTOR:g})"
                    )
    if failures:
        print("\nROBUSTNESS REGRESSION:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(
        f"\nrobustness gate ok: severity-0 cells unmoved, no AUC below "
        f"{_AUC_FACTOR:g}x baseline"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", metavar="PATH", default=str(DEFAULT_OUTPUT),
        help=(
            "where to write the JSON results (default: repo "
            "BENCH_ROBUST.json)"
        ),
    )
    parser.add_argument(
        "--check", metavar="BASELINE", default=None,
        help=(
            "compare against a committed BENCH_ROBUST.json and exit "
            "non-zero on moved severity-0 cells or a robustness-AUC "
            f"below {_AUC_FACTOR:g}x baseline"
        ),
    )
    parser.add_argument(
        "--determinism", action="store_true",
        help="run the corrupted grid twice and fail on any difference",
    )
    arguments = parser.parse_args(argv)

    if arguments.determinism:
        return _check_determinism()

    results = _run_grid()
    results["python"] = platform.python_version()
    output = Path(arguments.output)
    output.write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"\nresults written to {output}")

    if arguments.check:
        return _check(results, Path(arguments.check))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
