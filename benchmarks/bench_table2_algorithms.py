"""Table 2 — characteristics of the evaluated algorithms.

Regenerates the paper's algorithm-characteristics table from the registry
metadata (category, variable support, early vs full-TSC, implementation
language). In this reproduction every implementation is Python, which the
table records — the paper's original mixed Java/C++/Python column is part
of what motivated its 'reimplement everything in one language' future work.
"""

from _harness import write_report

from repro.core import default_algorithms
from repro.tsc import MLSTMFCN, WEASEL, MiniROCKET

_FULL_TSC = {
    "MiniROCKET": MiniROCKET,
    "MLSTM": MLSTMFCN,
    "WEASEL": WEASEL,
}


def _build_table() -> str:
    registry = default_algorithms(fast=True)
    lines = [
        "# Table 2 — algorithm characteristics",
        "",
        "| algorithm | category | multivariate | early | language |",
        "|---|---|---|---|---|",
    ]
    for info in registry:
        lines.append(
            f"| {info.name} | {info.category} | "
            f"{'yes' if info.supports_multivariate else 'voting'} | "
            f"{'yes' if info.early else 'no'} | {info.language} |"
        )
    for name in sorted(_FULL_TSC):
        lines.append(
            f"| {name} | full-TSC | yes | no (used inside STRUT/ECEC/TEASER)"
            " | Python |"
        )
    return "\n".join(lines)


def test_table2(benchmark):
    """Registry construction + metadata rendering (Table 2)."""
    table = benchmark(_build_table)
    assert "ECEC" in table and "model-based" in table
    write_report("table2_algorithms", table)
