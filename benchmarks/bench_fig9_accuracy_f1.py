"""Figure 9 — accuracy and F1-score per dataset category.

Runs the full algorithms x datasets cross-validation grid (shared with the
other figure benches) and prints the per-category mean accuracy and F1
tables the paper plots as bar charts, plus the per-category ranking. The
shape checks assert the qualitative findings of Section 6.2.1 that are
robust at reduced scale: ECEC sits in the top ranks on accuracy, and class
imbalance drags F1 below accuracy on the 'Imbalanced' category.
"""

import numpy as np
from _harness import format_category_table, rank_per_category, run_grid, write_report

from repro.core.charts import grouped_bars


def test_fig9_accuracy_f1(benchmark):
    """Per-category accuracy and F1 (Figure 9)."""
    report = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    accuracy_table = report.metric_by_category("accuracy")
    f1_table = report.metric_by_category("f1")

    content = [
        "# Figure 9 — accuracy and F1-score per dataset category",
        "",
        format_category_table(accuracy_table, "accuracy"),
        "",
        format_category_table(f1_table, "F1-score"),
        "",
        "## best algorithm per category (accuracy)",
        "",
    ]
    ranking = rank_per_category(accuracy_table)
    for category, ranked in ranking.items():
        content.append(f"- {category}: {', '.join(ranked[:3])}")
    content.extend(["", "## chart (accuracy)", "", "```",
                    grouped_bars(accuracy_table), "```"])
    write_report("fig9_accuracy_f1", "\n".join(content))

    # Shape check 1: ECEC reaches the top accuracy ranks in several
    # categories. The paper has it first almost everywhere; at bench scale
    # its confidence machinery is data-starved, so the asserted floor is
    # top-3 in at least a quarter of the categories (EXPERIMENTS.md
    # discusses the deviation; raise REPRO_SCALE to tighten it).
    top3 = sum("ECEC" in ranked[:3] for ranked in ranking.values())
    assert top3 >= len(ranking) / 4, ranking

    # Shape check 2: imbalance costs F1 more than accuracy (Section 6.2.1).
    imbalanced_accuracy = np.mean(list(accuracy_table["Imbalanced"].values()))
    imbalanced_f1 = np.mean(list(f1_table["Imbalanced"].values()))
    assert imbalanced_f1 <= imbalanced_accuracy + 0.02

    # Shape check 3: every cell is a valid probability and the grid covers
    # all eight categories.
    values = [
        value for row in accuracy_table.values() for value in row.values()
    ]
    assert all(0.0 <= value <= 1.0 for value in values)
    assert len(accuracy_table) == 8
