"""Table 5 — worst-case training complexity, verified empirically.

The paper reports asymptotic training complexities (Table 5). This bench
measures how each algorithm's training time grows when the dataset height
``N`` doubles and when the series length ``L`` doubles, and prints the
observed growth factors next to the predicted dominant terms. Exact
exponents are noisy at bench scale; the check asserted here is the ordering
the paper highlights — EDSC and ECEC blow up with L (cubic terms), ECTS
blows up with N (cubic), ECONOMY-K and the STRUT variants stay tame.
"""

import time

from _harness import write_report

from _harness import make_benchmark_dataset
from repro.etsc import ECEC, ECTS, EDSC, TEASER, EconomyK, s_mini, s_weasel

_FACTORIES = {
    "ECEC": lambda: ECEC(n_prefixes=5),
    "ECO-K": lambda: EconomyK(n_clusters=2, n_checkpoints=5, n_estimators=6),
    "ECTS": lambda: ECTS(),
    "EDSC": lambda: EDSC(n_lengths=2, stride=1),
    "TEASER": lambda: TEASER(n_prefixes=5),
    "S-MINI": lambda: s_mini(n_features=300),
    "S-WEASEL": lambda: s_weasel(),
}

_PREDICTED = {
    "ECEC": "O(N * L^3 * #classifiers * #classes)",
    "ECO-K": "O(L log N + N L + #classes * #groups * N)",
    "ECTS": "O(N^3 * L)",
    "EDSC": "O(N^2 * L^3)",
    "TEASER": "O(L/S * L^2)",
    "S-MINI": "O(N * L * log L * #kernels)",
    "S-WEASEL": "O(N * L^2 * log L)",
}


def _train_seconds(factory, n, length) -> float:
    dataset = make_benchmark_dataset(n_instances=n, length=length, seed=1)
    start = time.perf_counter()
    factory().train(dataset)
    return time.perf_counter() - start


def _measure() -> tuple[str, dict[str, tuple[float, float]]]:
    base_n, base_l = 24, 24
    growth: dict[str, tuple[float, float]] = {}
    lines = [
        "# Table 5 — empirical training-time growth",
        "",
        "| algorithm | t(N,L) s | xN growth | xL growth | predicted |",
        "|---|---|---|---|---|",
    ]
    for name, factory in _FACTORIES.items():
        base = _train_seconds(factory, base_n, base_l)
        double_n = _train_seconds(factory, 2 * base_n, base_l)
        double_l = _train_seconds(factory, base_n, 2 * base_l)
        n_factor = double_n / max(base, 1e-9)
        l_factor = double_l / max(base, 1e-9)
        growth[name] = (n_factor, l_factor)
        lines.append(
            f"| {name} | {base:.3f} | x{n_factor:.1f} | x{l_factor:.1f} | "
            f"{_PREDICTED[name]} |"
        )
    return "\n".join(lines), growth


def test_table5_scaling(benchmark):
    """Training-time growth in N and L vs the Table 5 complexities."""
    report, growth = benchmark.pedantic(_measure, rounds=1, iterations=1)
    write_report("table5_scaling", report)
    # The paper's qualitative claims: length hits EDSC harder than the
    # selective-truncation variants, and height hits ECTS/EDSC.
    assert growth["EDSC"][1] > growth["S-MINI"][1]
    assert growth["ECTS"][0] >= 1.0
