#!/usr/bin/env python
"""Fleet-scale serving bench: replicated scenarios through the shard fleet.

Scales the bundled SLO scenarios to fleet size with ``--replicate``
semantics (every stream spec's count multiplied) and replays them
through :func:`repro.fleet.run_fleet`, writing the deterministic portion
of each report to ``BENCH_FLEET.json``; the committed copy at the
repository root is the regression reference. Virtual-clock replays are a
pure function of (scenario, fleet config), so the committed numbers are
a *trajectory*, not a measurement — identical on every machine.

Entries:

* ``bursty-1k``  — 1002 streams over 4 shards (throughput / p99 gate);
* ``bursty-10k`` — 10002 streams, same config (skipped by ``--quick``;
  demonstrates bounded memory at 10k concurrent admitted streams);
* ``overload-shed`` — 200 overload streams against a 64-slot admission
  queue under ``reject-new`` (the shed-rate gate: admission control must
  keep turning the overflow away, explicitly).

Like ``bench_serve.py``, this is a standalone script (CI's
``fleet-chaos-smoke`` job runs it without pytest)::

    PYTHONPATH=src python benchmarks/bench_fleet.py               # run all
    PYTHONPATH=src python benchmarks/bench_fleet.py --quick \
        --check BENCH_FLEET.json                                  # CI gate
    PYTHONPATH=src python benchmarks/bench_fleet.py --determinism # 2x run

``--check`` fails when any entry's p99 response latency exceeds 1.5x the
committed baseline, its consult throughput (virtual-clock, so
deterministic) falls below half the baseline's, or its shed rate drifts
outside [0.5x, 1.5x] of the baseline — a shed rate *below* the band
means admission control quietly stopped bounding the backlog.
``--determinism`` replays every entry twice and fails on any byte-level
difference.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

from repro.fleet import FleetConfig, SHED_REJECT_NEW, run_fleet
from repro.fleet.cli import replicate_scenario
from repro.slo import bundled_scenarios, load_scenario

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_FLEET.json"

_P99_FACTOR = 1.5
_P99_EPSILON_SECONDS = 0.001
_THROUGHPUT_FACTOR = 0.5
_SHED_BAND = (0.5, 1.5)
_SHED_EPSILON = 0.005

#: name -> (scenario, replicate factor, fleet config). Admission capacity
#: covers the full request burst for the throughput entries (the whole
#: workload is offered up front); the shed entry deliberately starves it.
_ENTRIES: dict[str, tuple[str, int, FleetConfig]] = {
    "bursty-1k": (
        "bursty",
        167,  # 6 streams/replica -> 1002
        FleetConfig(
            n_shards=4,
            max_active_per_shard=64,
            admission_capacity=1024,
            tick_events=512,
        ),
    ),
    "bursty-10k": (
        "bursty",
        1667,  # -> 10002
        FleetConfig(
            n_shards=4,
            max_active_per_shard=64,
            admission_capacity=10240,
            tick_events=512,
        ),
    ),
    "overload-shed": (
        "overload",
        50,  # 4 streams/replica -> 200
        FleetConfig(
            n_shards=2,
            max_active_per_shard=64,
            admission_capacity=64,
            shed_policy=SHED_REJECT_NEW,
            tick_events=256,
        ),
    ),
}


def _selected(quick: bool, names: list[str] | None) -> list[str]:
    if names:
        unknown = [n for n in names if n not in _ENTRIES]
        if unknown:
            known = ", ".join(_ENTRIES)
            raise SystemExit(f"unknown entries {unknown} (known: {known})")
        return names
    if quick:
        return [n for n in _ENTRIES if n != "bursty-10k"]
    return list(_ENTRIES)


def _run_entries(names: list[str]) -> dict[str, dict]:
    available = bundled_scenarios()
    reports: dict[str, dict] = {}
    for name in names:
        scenario_name, factor, config = _ENTRIES[name]
        scenario = replicate_scenario(
            load_scenario(available[scenario_name]), factor
        )
        report = run_fleet(scenario, config)
        full = report.as_dict()
        environment = full.pop("environment")
        reports[name] = full
        streams = full["streams"]
        print(
            f"{name:14s} {streams['requested']:6d} requested  "
            f"{streams['decided']:6d} decided  "
            f"{streams['shed']:5d} shed  "
            f"p99 {full['latency']['p99'] * 1e3:8.2f} ms  "
            f"{full['load']['throughput_per_second']:9.1f} consults/s  "
            f"peak RSS {environment.get('peak_rss_kb', 0) / 1024.0:7.1f} MiB  "
            f"wall {environment.get('wall_seconds', 0.0):6.1f} s"
        )
    return reports


def _check_determinism(names: list[str]) -> int:
    first = _run_entries(names)
    second = _run_entries(names)
    failures = [
        name
        for name in first
        if json.dumps(first[name], sort_keys=True)
        != json.dumps(second[name], sort_keys=True)
    ]
    if failures:
        print(
            "\nDETERMINISM FAILURE: fleet reports differed between "
            "identical runs: " + ", ".join(failures),
            file=sys.stderr,
        )
        return 1
    print(f"\ndeterminism ok: {len(first)} entry(ies) reproduced exactly")
    return 0


def _check(current: dict, baseline_path: Path) -> int:
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    failures = []
    for name, measured in current["fleets"].items():
        reference = baseline["fleets"].get(name)
        if reference is None:
            failures.append(f"{name}: missing from the committed baseline")
            continue
        p99 = measured["latency"]["p99"]
        p99_ceiling = max(
            reference["latency"]["p99"] * _P99_FACTOR, _P99_EPSILON_SECONDS
        )
        if p99 > p99_ceiling:
            failures.append(
                f"{name}: p99 {p99 * 1e3:.2f} ms exceeded "
                f"{p99_ceiling * 1e3:.2f} ms (baseline "
                f"{reference['latency']['p99'] * 1e3:.2f} ms x "
                f"{_P99_FACTOR:g})"
            )
        throughput = measured["load"]["throughput_per_second"]
        floor = reference["load"]["throughput_per_second"] * _THROUGHPUT_FACTOR
        if throughput < floor:
            failures.append(
                f"{name}: throughput {throughput:.1f} consults/s fell below "
                f"{floor:.1f} (baseline "
                f"{reference['load']['throughput_per_second']:.1f} x "
                f"{_THROUGHPUT_FACTOR:g})"
            )
        shed = measured["slo"]["shed_rate"]
        shed_baseline = reference["slo"]["shed_rate"]
        shed_floor = shed_baseline * _SHED_BAND[0] - _SHED_EPSILON
        shed_ceiling = max(shed_baseline * _SHED_BAND[1], _SHED_EPSILON)
        if not shed_floor <= shed <= shed_ceiling:
            failures.append(
                f"{name}: shed rate {shed:.3f} outside "
                f"[{max(shed_floor, 0.0):.3f}, {shed_ceiling:.3f}] "
                f"(baseline {shed_baseline:.3f}); below the band means "
                f"admission control stopped bounding the backlog"
            )
    if failures:
        print("\nFLEET REGRESSION:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(
        f"\nfleet gate ok: no entry regressed beyond {_P99_FACTOR:g}x p99, "
        f"{_THROUGHPUT_FACTOR:g}x throughput, or the shed-rate band"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--entry", action="append", metavar="NAME", default=None,
        help=f"entry to run (repeatable; known: {', '.join(_ENTRIES)})",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="skip the 10k-stream entry (CI profile)",
    )
    parser.add_argument(
        "--output", metavar="PATH", default=str(DEFAULT_OUTPUT),
        help="where to write the JSON results (default: repo BENCH_FLEET.json)",
    )
    parser.add_argument(
        "--check", metavar="BASELINE", default=None,
        help=(
            "compare against a committed BENCH_FLEET.json and exit non-zero "
            "on p99/throughput/shed-rate regressions"
        ),
    )
    parser.add_argument(
        "--determinism", action="store_true",
        help="replay every entry twice and fail on any report difference",
    )
    arguments = parser.parse_args(argv)
    names = _selected(arguments.quick, arguments.entry)

    if arguments.determinism:
        return _check_determinism(names)

    reports = _run_entries(names)
    results = {
        "clock": "virtual",
        "units": "seconds",
        "python": platform.python_version(),
        "fleets": reports,
    }
    output = Path(arguments.output)
    output.write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"\nresults written to {output}")

    if arguments.check:
        return _check(results, Path(arguments.check))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
