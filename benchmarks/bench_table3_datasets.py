"""Table 3 — dataset characteristics and category assignment.

Generates the twelve datasets at ``REPRO_SCALE`` and recomputes the Table 3
statistics (height, length, classes, CIR, CoV) plus the category flags. At
scale 1.0 the computed flags match the paper's row-for-row (this is also
asserted in tests/datasets); at reduced scale the canonical flags are shown
alongside so drift is visible.
"""

from _harness import get_scale, write_report

from repro.core import canonical_categories, categorize, default_datasets


def _build_table(scale: float) -> str:
    registry = default_datasets(scale=scale, seed=0)
    lines = [
        f"# Table 3 — dataset characteristics (scale={scale})",
        "",
        "| dataset | height | length | vars | classes | CIR | CoV |"
        " categories (canonical) |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for name in registry.names():
        dataset = registry.load(name)
        canonical = canonical_categories(name)
        measured = categorize(dataset)
        flags = ",".join(canonical.names())
        drift = "" if measured.names() == canonical.names() else " *"
        lines.append(
            f"| {name} | {dataset.n_instances} | {dataset.length} | "
            f"{dataset.n_variables} | {dataset.n_classes} | "
            f"{dataset.class_imbalance_ratio():.2f} | "
            f"{min(dataset.coefficient_of_variation(), 999.0):.2f} | "
            f"{flags}{drift} |"
        )
    lines.append("")
    lines.append(
        "`*` marks rows whose *measured* flags at this scale differ from "
        "the canonical Table 3 assignment (expected below scale 1.0 for "
        "the size-based Wide/Large flags)."
    )
    return "\n".join(lines)


def test_table3(benchmark):
    """Dataset generation + categorisation (Table 3)."""
    table = benchmark.pedantic(
        _build_table, args=(get_scale(),), rounds=1, iterations=1
    )
    assert "Maritime" in table
    write_report("table3_datasets", table)
