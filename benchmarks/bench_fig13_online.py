"""Figure 13 — online-feasibility heatmap.

For every (algorithm, dataset) pair the cell is the per-instance test
latency divided by the dataset's observation period; below 1 the algorithm
keeps up with the stream (blue in the paper), failures to train are the
hatched cells. Prints the heatmap as a markdown matrix with FEASIBLE /
TOO-SLOW / FAILED markers and asserts the structural properties: cells
exist for every dataset with a known frequency, and slow-frequency
datasets (HouseTwenty at 8 s, Maritime at 60 s) are feasible for the
fast-inference algorithms.
"""

from _harness import (
    ALGORITHM_ORDER,
    make_benchmark_dataset,
    run_grid,
    write_report,
)

from repro.core import StreamingSession, default_algorithms, wrap_for_dataset
from repro.core.charts import heatmap
from repro.serve import ServeFaultPlan, run_serve_sim


def test_fig13_online(benchmark):
    """Online feasibility cells (Figure 13)."""
    report = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    cells = report.online_feasibility()
    datasets = sorted({dataset for _, dataset in cells})
    algorithms = [
        name
        for name in ALGORITHM_ORDER
        if any(algorithm == name for algorithm, _ in cells)
    ]

    lines = [
        "# Figure 13 — online feasibility "
        "(test latency / observation period; <1 is feasible)",
        "",
        "| dataset | " + " | ".join(algorithms) + " |",
        "|" + "---|" * (len(algorithms) + 1),
    ]
    feasible_count = 0
    for dataset in datasets:
        row = []
        for algorithm in algorithms:
            value = cells.get((algorithm, dataset), "absent")
            if value == "absent":
                row.append("--")
            elif value is None:
                row.append("FAILED")
            else:
                marker = "ok" if value < 1.0 else "SLOW"
                feasible_count += value < 1.0
                row.append(f"{value:.3g} {marker}")
        lines.append(f"| {dataset} | " + " | ".join(row) + " |")
    # Compact marker heatmap, rows = datasets (swap the cell key order).
    marker_cells = {
        (dataset, algorithm): value
        for (algorithm, dataset), value in cells.items()
    }
    lines.extend(["", "```", heatmap(marker_cells), "```"])

    # True point-by-point latency distribution for one fast algorithm —
    # the session's latency_summary() is the same order-statistics code
    # the metrics layer aggregates, so these quantiles match a traced run.
    bench_dataset = make_benchmark_dataset(n_instances=20, length=30)
    info = default_algorithms(fast=True).get("ECTS")
    classifier = wrap_for_dataset(info.factory, bench_dataset)
    classifier.train(bench_dataset)
    session = StreamingSession(classifier, bench_dataset.length)
    session.run(bench_dataset.values[0])
    # The feasibility budget is the sampling period: over_budget_count is
    # how many consultations would have dropped an observation, and p99
    # is the tail the online criterion is really about (a feasible mean
    # with an over-budget p99 still loses data).
    budget = bench_dataset.frequency_seconds or 1.0
    latency = session.latency_summary(budget_seconds=budget)
    lines.extend(
        [
            "",
            "## Streaming push latency (ECTS, point-by-point, "
            f"budget = {budget:g}s sampling period)",
            "",
            "| count | mean | p50 | p95 | p99 | max | over budget |",
            "|---|---|---|---|---|---|---|",
            (
                f"| {latency.count} | {latency.mean * 1000:.2f}ms "
                f"| {latency.p50 * 1000:.2f}ms | {latency.p95 * 1000:.2f}ms "
                f"| {latency.p99 * 1000:.2f}ms | {latency.max * 1000:.2f}ms "
                f"| {latency.over_budget_count} |"
            ),
        ]
    )

    # Degraded-decision rate under consultation faults: replay the bench
    # dataset through the resilient serving layer with every consultation
    # timing out (injected, zero real delay). Every stream must still
    # decide, with all decisions fallback-sourced; the same replay with
    # no faults must stay entirely model-sourced.
    chaos = run_serve_sim(
        info.factory,
        bench_dataset,
        info.name,
        n_streams=5,
        fault_injector=ServeFaultPlan().timeout_consult(at=None),
        deadline_seconds=60.0,
    )
    clean = run_serve_sim(info.factory, bench_dataset, info.name, n_streams=5)
    lines.extend(
        [
            "",
            "## Degraded-decision rate (guarded serving replay)",
            "",
            "| replay | streams decided | degraded rate | breaker trips |",
            "|---|---|---|---|",
            (
                f"| all consults time out | {chaos.n_decided}/"
                f"{chaos.n_streams} | {chaos.degraded_rate:.0%} "
                f"| {chaos.n_breaker_trips} |"
            ),
            (
                f"| no faults | {clean.n_decided}/{clean.n_streams} "
                f"| {clean.degraded_rate:.0%} | {clean.n_breaker_trips} |"
            ),
        ]
    )
    write_report("fig13_online", "\n".join(lines))
    assert latency.count > 0
    assert latency.p50 <= latency.p95 <= latency.p99 <= latency.max
    assert chaos.n_decided == chaos.n_streams
    assert chaos.degraded_rate == 1.0
    assert chaos.n_breaker_trips > 0
    assert clean.degraded_rate == 0.0

    assert cells, "no feasibility cells computed"
    assert feasible_count > 0
    # Every successfully evaluated pair on a frequency-carrying dataset
    # must have a numeric cell.
    for (algorithm, dataset), result in report.results.items():
        if dataset in datasets:
            assert (algorithm, dataset) in cells
