"""Average-rank significance analysis over the evaluation grid.

The bake-off studies the paper follows ([4], [36]) summarise large
comparisons with Friedman/Nemenyi average-rank analysis. This bench applies
that toolchain to the shared grid: average rank per algorithm on the
harmonic mean, the Friedman/Iman-Davenport significance test, and the
Nemenyi critical difference. Shape check: the classic baselines (EDSC,
ECTS) do not take the top average rank — the statistical form of the
Section 6.3 ordering claim.
"""

from _harness import run_grid, write_report

from repro.core.significance import compare_algorithms


def test_significance_average_ranks(benchmark):
    """Friedman/Nemenyi analysis on the harmonic mean."""
    report = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    analysis = compare_algorithms(report, metric="harmonic_mean")
    write_report(
        "significance_ranks",
        "# Average ranks (harmonic mean) with Friedman/Nemenyi analysis\n\n"
        + analysis.to_markdown()
        + "\n\n```\n"
        + analysis.cd_diagram()
        + "\n```",
    )
    ranks = dict(zip(analysis.algorithms, analysis.average_ranks))
    best = min(ranks, key=ranks.get)
    assert best not in ("EDSC", "ECTS"), ranks
    assert analysis.critical_difference > 0
