"""Section 6.3 — the results-overview claims, checked directly.

Two claims are checked end-to-end rather than via the category tables:

1. *"ECEC, ECO-K and TEASER outperform EDSC and ECTS"* — confirmed on the
   overall harmonic mean by the Figure 11 bench; here the same ordering is
   checked on plain accuracy.
2. *"ETSC allows the early identification of 65% of simulations that are
   not deemed interesting"* — replayed on the Biological dataset: the
   fraction of non-interesting test simulations flagged as non-interesting
   before the final time-point.
"""

import numpy as np
from _harness import run_grid, write_report

from repro import VotingEnsemble, train_test_split
from repro.datasets import biological
from repro.etsc import ECEC


def _early_identification_rate(scale: float = 0.4, seed: int = 0) -> float:
    dataset = biological.generate(scale=scale, seed=seed)
    train, test = train_test_split(dataset, 0.3, seed=seed)
    classifier = VotingEnsemble(lambda: ECEC(n_prefixes=8))
    classifier.train(train)
    predictions = classifier.predict(test)
    non_interesting = test.labels == 0
    flagged = np.asarray(
        [
            prediction.label == 0 and prediction.prefix_length < test.length
            for prediction in predictions
        ]
    )
    return float((flagged & non_interesting).sum() / non_interesting.sum())


def test_sec63_ordering_claim(benchmark):
    """Claim 1: "ECEC, ECO-K and TEASER outperform EDSC and ECTS".

    Asserted exactly as the paper states it, on the overall harmonic mean:
    each of the three modern methods individually beats both classic
    baselines.
    """
    report = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    table = report.metric_by_category("harmonic_mean")

    def overall(name):
        values = [row[name] for row in table.values() if name in row]
        return float(np.mean(values)) if values else float("nan")

    modern = {name: overall(name) for name in ("ECEC", "ECO-K", "TEASER")}
    classic = {name: overall(name) for name in ("EDSC", "ECTS")}
    content = [
        "# Section 6.3 — ordering claim (overall harmonic mean)",
        "",
        *(
            f"- {name}: {value:.3f}"
            for name, value in {**modern, **classic}.items()
        ),
    ]
    write_report("sec63_ordering", "\n".join(content))
    for modern_name, modern_value in modern.items():
        for classic_name, classic_value in classic.items():
            assert modern_value > classic_value, (
                f"{modern_name} ({modern_value:.3f}) does not beat "
                f"{classic_name} ({classic_value:.3f})"
            )


def test_sec63_biological_early_stop(benchmark):
    """Claim 2: a large share of non-interesting simulations stop early."""
    rate = benchmark.pedantic(
        _early_identification_rate, rounds=1, iterations=1
    )
    write_report(
        "sec63_biological",
        "# Section 6.3 — early identification of non-interesting "
        f"simulations\n\nmeasured: {rate:.0%} (paper reports ~65%)",
    )
    # The paper reports 65%; at reduced scale a broad band around the claim
    # is the honest check (who-wins, not absolute numbers).
    assert rate > 0.4
