#!/usr/bin/env python
"""Serving-SLO trajectory bench: replay the bundled scenarios and gate.

Runs every bundled SLO scenario (``src/repro/slo/scenarios/``) through
:func:`repro.slo.run_scenario` and writes the deterministic portion of
each report to ``BENCH_SERVE.json``; the committed copy at the
repository root is the regression reference. Because the scenarios run
under the virtual clock, the recorded numbers are a pure function of
scenario config + seed — identical on every machine — so the committed
file is a *trajectory*, not a measurement.

Like ``bench_perf.py``, this is a standalone script (CI's
``serve-slo-smoke`` job runs it without pytest)::

    PYTHONPATH=src python benchmarks/bench_serve.py               # run all
    PYTHONPATH=src python benchmarks/bench_serve.py \
        --check BENCH_SERVE.json                                  # gate
    PYTHONPATH=src python benchmarks/bench_serve.py --determinism # 2x run

``--check`` fails when any scenario's deadline-miss rate exceeds twice
the committed baseline (plus a small absolute epsilon so a zero
baseline stays gateable) or its p99 response latency regressed beyond
1.5x. ``--determinism`` replays every scenario twice and fails on any
byte-level difference between the two deterministic reports.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

from repro.slo import bundled_scenarios, load_scenario, run_scenario

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_SERVE.json"

# Gate thresholds: deterministic virtual-clock replays should reproduce
# the committed numbers exactly, but cross-version BLAS differences can
# nudge a classifier's decision point, so the gate allows headroom
# before failing — mirroring perf-smoke's factor-of-two philosophy.
_MISS_RATE_FACTOR = 2.0
_MISS_RATE_EPSILON = 0.005  # absolute floor so zero baselines stay gateable
_P99_FACTOR = 1.5
_P99_EPSILON_SECONDS = 0.001


def _run_scenarios(names: list[str] | None) -> dict[str, dict]:
    available = bundled_scenarios()
    selected = names or sorted(available)
    reports: dict[str, dict] = {}
    for name in selected:
        if name not in available:
            known = ", ".join(sorted(available))
            raise SystemExit(f"unknown scenario {name!r} (bundled: {known})")
        scenario = load_scenario(available[name])
        report = run_scenario(scenario)
        reports[name] = report.deterministic_dict()
        slo = reports[name]["slo"]
        print(
            f"{name:12s} consults {reports[name]['load']['consults']:5d}   "
            f"p99 {reports[name]['latency']['p99'] * 1e3:8.2f} ms   "
            f"miss rate {slo['deadline_miss_rate']:.3f}   "
            f"degraded {slo['degraded_decision_rate']:.3f}"
        )
    return reports


def _check_determinism(names: list[str] | None) -> int:
    first = _run_scenarios(names)
    second = _run_scenarios(names)
    failures = [
        name
        for name in first
        if json.dumps(first[name], sort_keys=True)
        != json.dumps(second[name], sort_keys=True)
    ]
    if failures:
        print(
            "\nDETERMINISM FAILURE: reports differed between identical runs: "
            + ", ".join(failures),
            file=sys.stderr,
        )
        return 1
    print(f"\ndeterminism ok: {len(first)} scenario(s) reproduced exactly")
    return 0


def _check(current: dict, baseline_path: Path) -> int:
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    failures = []
    for name, reference in baseline["scenarios"].items():
        measured = current["scenarios"].get(name)
        if measured is None:
            failures.append(f"{name}: missing from this run")
            continue
        miss_rate = measured["slo"]["deadline_miss_rate"]
        miss_ceiling = max(
            reference["slo"]["deadline_miss_rate"] * _MISS_RATE_FACTOR,
            _MISS_RATE_EPSILON,
        )
        if miss_rate > miss_ceiling:
            failures.append(
                f"{name}: deadline-miss rate {miss_rate:.4f} exceeded "
                f"{miss_ceiling:.4f} (baseline "
                f"{reference['slo']['deadline_miss_rate']:.4f} x "
                f"{_MISS_RATE_FACTOR:g})"
            )
        p99 = measured["latency"]["p99"]
        p99_ceiling = max(
            reference["latency"]["p99"] * _P99_FACTOR, _P99_EPSILON_SECONDS
        )
        if p99 > p99_ceiling:
            failures.append(
                f"{name}: p99 {p99 * 1e3:.2f} ms exceeded "
                f"{p99_ceiling * 1e3:.2f} ms (baseline "
                f"{reference['latency']['p99'] * 1e3:.2f} ms x {_P99_FACTOR:g})"
            )
    if failures:
        print("\nSLO REGRESSION:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(
        f"\nslo gate ok: no scenario regressed beyond "
        f"{_MISS_RATE_FACTOR:g}x miss rate / {_P99_FACTOR:g}x p99 vs baseline"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scenario", action="append", metavar="NAME", default=None,
        help="bundled scenario to run (repeatable; default: all)",
    )
    parser.add_argument(
        "--output", metavar="PATH", default=str(DEFAULT_OUTPUT),
        help="where to write the JSON results (default: repo BENCH_SERVE.json)",
    )
    parser.add_argument(
        "--check", metavar="BASELINE", default=None,
        help=(
            "compare against a committed BENCH_SERVE.json and exit non-zero "
            f"on >{_MISS_RATE_FACTOR:g}x deadline-miss rate or "
            f">{_P99_FACTOR:g}x p99 latency"
        ),
    )
    parser.add_argument(
        "--determinism", action="store_true",
        help="replay every scenario twice and fail on any report difference",
    )
    arguments = parser.parse_args(argv)

    if arguments.determinism:
        return _check_determinism(arguments.scenario)

    reports = _run_scenarios(arguments.scenario)
    results = {
        "clock": "virtual",
        "units": "seconds",
        "python": platform.python_version(),
        "scenarios": reports,
    }
    output = Path(arguments.output)
    output.write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"\nresults written to {output}")

    if arguments.check:
        return _check(results, Path(arguments.check))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
