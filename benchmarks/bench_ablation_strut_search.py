"""Ablation — STRUT exhaustive grid vs binary-search truncation.

Section 4: "Aiming to lower the total execution time ... we follow an
iterative binary search process to determine the minimum t, skipping this
way a substantial number of iterations." This ablation measures both the
number of classifier trainings each strategy performs and the quality of
the chosen truncation point.
"""

from _harness import make_benchmark_dataset, write_report

from repro.core.prediction import collect_predictions
from repro.data import train_test_split
from repro.etsc import STRUT
from repro.stats import accuracy
from repro.tsc import WEASEL


def _run(search: str, seed: int = 0):
    dataset = make_benchmark_dataset(n_instances=60, length=48, seed=seed)
    train, test = train_test_split(dataset, 0.3, seed=seed)
    fine_grid = tuple((i + 1) / 16 for i in range(16))
    strut = STRUT(
        classifier_factory=lambda: WEASEL(n_window_sizes=3, chi2_top_k=100),
        search=search,
        grid_fractions=fine_grid,
        seed=seed,
    ).train(train)
    labels, _ = collect_predictions(strut.predict(test))
    return {
        "evaluations": len(strut.evaluations_),
        "best_length": strut.best_length_,
        "accuracy": accuracy(test.labels, labels),
    }


def test_ablation_strut_search(benchmark):
    """Grid vs binary search: trainings performed and resulting quality."""
    results = benchmark.pedantic(
        lambda: {search: _run(search) for search in ("grid", "binary")},
        rounds=1,
        iterations=1,
    )
    grid, binary = results["grid"], results["binary"]
    write_report(
        "ablation_strut_search",
        "\n".join(
            [
                "# Ablation — STRUT truncation-point search",
                "",
                "| strategy | classifier trainings | chosen length | "
                "test accuracy |",
                "|---|---|---|---|",
                f"| exhaustive grid | {grid['evaluations']} | "
                f"{grid['best_length']} | {grid['accuracy']:.3f} |",
                f"| binary search | {binary['evaluations']} | "
                f"{binary['best_length']} | {binary['accuracy']:.3f} |",
            ]
        ),
    )
    # The paper's point: binary search skips a substantial number of
    # iterations without giving up predictive quality.
    assert binary["evaluations"] < grid["evaluations"]
    assert binary["accuracy"] >= grid["accuracy"] - 0.1
