"""Ablation — TEASER with and without z-normalisation.

The paper deliberately evaluates TEASER *without* its original
z-normalisation step because full-series statistics are unavailable online,
and attributes its ~5% deviation from the published TEASER numbers to that
choice (Section 6.3). This ablation runs both variants on a dataset whose
classes differ partly by offset; normalisation erases offset information,
so the non-normalised variant should not lose accuracy (and typically
gains).
"""

import numpy as np
from _harness import make_benchmark_dataset, write_report

from repro.core.prediction import collect_predictions
from repro.data import TimeSeriesDataset, train_test_split
from repro.etsc import TEASER
from repro.stats import accuracy, earliness


def _offset_dataset(seed=0):
    base = make_benchmark_dataset(n_instances=60, length=30, seed=seed)
    values = base.values.copy()
    values[base.labels == 1] += 1.5  # classes also differ by offset
    return TimeSeriesDataset(values, base.labels, name="offset")


def _evaluate(normalize: bool, seed: int = 0):
    train, test = train_test_split(_offset_dataset(seed), 0.3, seed=seed)
    model = TEASER(n_prefixes=6, normalize=normalize).train(train)
    labels, prefixes = collect_predictions(model.predict(test))
    return accuracy(test.labels, labels), earliness(prefixes, test.length)


def test_ablation_teaser_normalization(benchmark):
    """TEASER accuracy/earliness with normalisation on vs off."""
    results = benchmark.pedantic(
        lambda: {flag: _evaluate(flag) for flag in (False, True)},
        rounds=1,
        iterations=1,
    )
    (raw_acc, raw_earl) = results[False]
    (norm_acc, norm_earl) = results[True]
    write_report(
        "ablation_teaser_norm",
        "\n".join(
            [
                "# Ablation — TEASER z-normalisation",
                "",
                "| variant | accuracy | earliness |",
                "|---|---|---|",
                f"| normalize=False (paper's choice) | {raw_acc:.3f} | "
                f"{raw_earl:.3f} |",
                f"| normalize=True (original TEASER) | {norm_acc:.3f} | "
                f"{norm_earl:.3f} |",
            ]
        ),
    )
    # Offset information is discriminative here; skipping normalisation
    # must not hurt.
    assert raw_acc >= norm_acc - 0.05
