"""Make the shared benchmark harness importable from every bench file."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
