"""Supplementary material — per-dataset result tables.

The paper reports per-category aggregates in the body and the per-dataset
scores in its supplementary PDF. This bench renders the full per-dataset
matrix (accuracy / F1 / earliness / harmonic mean per algorithm-dataset
pair, failures marked) from the shared evaluation grid, and archives the
raw report as JSON so the campaign can be re-rendered without re-running.
"""

from pathlib import Path

from _harness import RESULTS_DIR, run_grid, write_report

from repro.core.results import report_to_markdown, save_report


def test_supplementary_per_dataset(benchmark):
    """Per-dataset score matrix + archived JSON report."""
    report = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    markdown = (
        "# Supplementary — per-dataset results\n\n"
        + report_to_markdown(report)
    )
    write_report("supplementary_per_dataset", markdown)
    RESULTS_DIR.mkdir(exist_ok=True)
    json_path = Path(RESULTS_DIR) / "grid_report.json"
    save_report(report, json_path)
    assert json_path.exists()
    assert "## accuracy" in markdown
    # Every algorithm/dataset pair is accounted for: result or failure.
    n_pairs = len(report.results) + len(report.failures)
    assert n_pairs == len(report.algorithms()) * len(report.datasets())
