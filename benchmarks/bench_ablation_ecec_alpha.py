"""Ablation — ECEC's accuracy/earliness trade-off parameter alpha.

ECEC selects its confidence threshold by minimising
``CF(theta) = alpha * (1 - accuracy) + (1 - alpha) * earliness``
(Section 3.5; Table 4 uses alpha = 0.8). Sweeping alpha traces the
trade-off curve: small alpha prioritises earliness, large alpha accuracy.
The check asserts monotonicity of earliness along the sweep (within noise).
"""

from _harness import make_benchmark_dataset, write_report

from repro.core.prediction import collect_predictions
from repro.data import train_test_split
from repro.etsc import ECEC
from repro.stats import accuracy, earliness

_ALPHAS = (0.0, 0.4, 0.8, 1.0)


def _sweep(seed: int = 0):
    dataset = make_benchmark_dataset(n_instances=60, length=30, seed=seed)
    train, test = train_test_split(dataset, 0.3, seed=seed)
    results = {}
    for alpha in _ALPHAS:
        model = ECEC(n_prefixes=6, alpha=alpha).train(train)
        labels, prefixes = collect_predictions(model.predict(test))
        results[alpha] = (
            accuracy(test.labels, labels),
            earliness(prefixes, test.length),
        )
    return results


def test_ablation_ecec_alpha(benchmark):
    """Accuracy/earliness along the alpha sweep."""
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    lines = [
        "# Ablation — ECEC trade-off parameter alpha",
        "",
        "| alpha | accuracy | earliness |",
        "|---|---|---|",
    ]
    for alpha, (acc, earl) in results.items():
        lines.append(f"| {alpha} | {acc:.3f} | {earl:.3f} |")
    write_report("ablation_ecec_alpha", "\n".join(lines))

    # alpha=0 ignores accuracy entirely -> cannot be later than alpha=1.
    assert results[0.0][1] <= results[1.0][1] + 1e-9
