#!/usr/bin/env python
"""Performance harness for the vectorised kernels and the parallel grid.

Times each rewritten kernel against an in-file reimplementation of the
historical loop it replaced, plus a small end-to-end evaluation grid at
``--workers 1`` and ``--workers 4``. Results go to ``BENCH_PERF.json``
(op -> median/p90 seconds and speedup vs the naive baseline); the
committed copy at the repository root is the regression reference.

Unlike the ``bench_*`` figure benches, this file is a standalone script
(CI's ``perf-smoke`` job runs it without pytest)::

    PYTHONPATH=src python benchmarks/bench_perf.py            # full
    PYTHONPATH=src python benchmarks/bench_perf.py --quick    # CI sizes
    PYTHONPATH=src python benchmarks/bench_perf.py --quick \
        --check BENCH_PERF.json                               # gate

``--check`` compares *speedups* (vectorised vs naive, both measured in
the same process on the same machine) rather than absolute seconds, so
the gate is meaningful across CI runner generations: it fails when any
kernel's speedup fell below half of the committed baseline's.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import AlgorithmRegistry, BenchmarkRunner, DatasetRegistry
from repro.etsc import ECTS
from repro.etsc.edsc import _best_match_distances
from repro.stats.backends import (
    OpTolerance,
    assert_conformant,
    get_backend,
    tolerance_for,
)
from repro.stats.distance import PrefixDistanceCache, pairwise_squared_euclidean
from repro.stats.dtw import dtw_distance, dtw_distance_matrix

sys.path.insert(0, str(Path(__file__).parent))
from _harness import make_benchmark_dataset  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_PERF.json"


# ---------------------------------------------------------------------------
# Naive baselines: faithful reimplementations of the historical loops.


def _naive_dtw(first: np.ndarray, second: np.ndarray) -> float:
    """The historical row-at-a-time DP (vectorised along columns only)."""
    n, m = len(first), len(second)
    previous = np.full(m + 1, np.inf)
    previous[0] = 0.0
    for i in range(n):
        current = np.full(m + 1, np.inf)
        cost = (first[i] - second) ** 2
        for j in range(m):
            current[j + 1] = cost[j] + min(
                previous[j], previous[j + 1], current[j]
            )
        previous = current
    return float(np.sqrt(previous[m]))


def _naive_dtw_matrix(rows: np.ndarray) -> np.ndarray:
    n_rows = rows.shape[0]
    distances = np.zeros((n_rows, n_rows))
    for i in range(n_rows):
        for j in range(i + 1, n_rows):
            distances[i, j] = distances[j, i] = _naive_dtw(rows[i], rows[j])
    return distances


def _naive_prefix_scan(references: np.ndarray, query: np.ndarray) -> np.ndarray:
    """From-scratch squared prefix distances recomputed at every length."""
    length = query.shape[-1]
    out = np.empty(len(references))
    for t in range(1, length + 1):
        differences = references[:, :t] - query[:t]
        out = np.einsum("ij,ij->i", differences, differences)
    return out


def _cached_prefix_scan(references: np.ndarray, query: np.ndarray) -> np.ndarray:
    cache = PrefixDistanceCache(references)
    out = None
    for t in range(query.shape[-1]):
        out = cache.advance(query[t])
    return out


def _naive_window_match(pattern: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """Per-row, per-offset EDSC matching loop."""
    width = len(pattern)
    n_offsets = matrix.shape[1] - width + 1
    best = np.empty(matrix.shape[0])
    for i, row in enumerate(matrix):
        best[i] = min(
            float(np.sqrt(((row[s : s + width] - pattern) ** 2).sum()))
            for s in range(n_offsets)
        )
    return best


def _naive_kmeans_update(
    rows: np.ndarray, centroids: np.ndarray
) -> np.ndarray:
    """The historical per-centroid Lloyd update."""
    distances = pairwise_squared_euclidean(rows, centroids)
    assignment = distances.argmin(axis=1)
    new_centroids = centroids.copy()
    for cluster in range(len(centroids)):
        members = rows[assignment == cluster]
        if len(members):
            new_centroids[cluster] = members.mean(axis=0)
        else:
            new_centroids[cluster] = rows[distances.min(axis=1).argmax()]
    return new_centroids


def _vector_kmeans_update(
    rows: np.ndarray, centroids: np.ndarray
) -> np.ndarray:
    """One Lloyd step through the shipped ``kmeans_update`` kernel op."""
    return get_backend("numpy").kmeans_update(rows, centroids)[0]


# Correctness tolerances come from the same per-op conformance policy the
# backend test suite asserts through (``tolerance_for``), so "equivalent"
# cannot mean one thing in tests and another in benchmarks. The prefix
# scan is the one exception: its in-file baseline recomputes each prefix
# from scratch with an einsum reduction rather than accumulating
# sequentially, so exactness is structurally impossible and it carries
# its own reordered-reduction bound over squared quantities.
_PREFIX_RESCAN_TOLERANCE = OpTolerance(
    rtol=1e-12,
    atol=1e-12,
    scale_power=2,
    note="from-scratch einsum rescan vs sequential accumulation",
)


def _conformance_check(tolerance, inputs=()):
    """A ``check_close`` callback asserting the shared tolerance policy."""
    return lambda fast, naive: assert_conformant(
        fast, naive, tolerance, inputs=inputs
    )


# ---------------------------------------------------------------------------
# Timing machinery.


def _time(function, repeats: int) -> dict:
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        samples.append(time.perf_counter() - start)
    samples.sort()
    p90_index = min(len(samples) - 1, int(round(0.9 * (len(samples) - 1))))
    return {
        "median": statistics.median(samples),
        "p90": samples[p90_index],
    }


def _bench_op(name, fast, naive, repeats, ops, check_close=None):
    fast_result, naive_result = fast(), naive()  # warm-up + correctness
    if check_close is not None:
        check_close(fast_result, naive_result)
    timing = _time(fast, repeats)
    baseline = _time(naive, max(2, repeats // 3))
    timing["baseline_median"] = baseline["median"]
    timing["speedup"] = (
        baseline["median"] / timing["median"] if timing["median"] else float("inf")
    )
    ops[name] = timing
    print(
        f"{name:24s} median {timing['median']*1e3:9.3f} ms   "
        f"naive {baseline['median']*1e3:9.3f} ms   "
        f"speedup {timing['speedup']:6.1f}x"
    )


def _kernel_benchmarks(quick: bool, repeats: int) -> dict:
    rng = np.random.default_rng(0)
    ops: dict[str, dict] = {}

    length = 120 if quick else 256
    a, b = rng.normal(size=length), rng.normal(size=length)
    _bench_op(
        "dtw_distance",
        lambda: dtw_distance(a, b),
        lambda: _naive_dtw(a, b),
        repeats,
        ops,
        # The row-based baseline performs the same per-cell operations as
        # the anti-diagonal kernel, so the declared tolerance is exact.
        check_close=_conformance_check(
            tolerance_for("numpy", "dtw"), inputs=(a, b)
        ),
    )

    n_rows, row_length = (14, 50) if quick else (30, 80)
    matrix = rng.normal(size=(n_rows, row_length))
    _bench_op(
        "dtw_distance_matrix",
        lambda: dtw_distance_matrix(matrix),
        lambda: _naive_dtw_matrix(matrix),
        repeats,
        ops,
        check_close=_conformance_check(
            tolerance_for("numpy", "dtw_matrix"), inputs=(matrix,)
        ),
    )

    # Near full sizes even in quick mode: the cache's advantage grows
    # with stream length, so a smaller scan would make the CI gate's
    # speedup comparison against the committed baseline meaningless.
    n_references, series_length = (160, 220) if quick else (200, 250)
    references = rng.normal(size=(n_references, series_length))
    query = rng.normal(size=series_length)
    _bench_op(
        "prefix_cache_scan",
        lambda: _cached_prefix_scan(references, query),
        lambda: _naive_prefix_scan(references, query),
        repeats,
        ops,
        check_close=_conformance_check(
            _PREFIX_RESCAN_TOLERANCE, inputs=(references, query)
        ),
    )

    n_series, match_length, width = (60, 150, 20) if quick else (120, 300, 30)
    match_matrix = rng.normal(size=(n_series, match_length))
    pattern = rng.normal(size=width)
    _bench_op(
        "edsc_window_match",
        lambda: _best_match_distances(pattern, match_matrix),
        lambda: _naive_window_match(pattern, match_matrix),
        repeats,
        ops,
        check_close=_conformance_check(
            tolerance_for("numpy", "shapelet_match"),
            inputs=(pattern, match_matrix),
        ),
    )

    n_points, n_features, k = (800, 12, 10) if quick else (3000, 16, 16)
    points = rng.normal(size=(n_points, n_features))
    centroids = points[rng.choice(n_points, size=k, replace=False)].copy()
    _bench_op(
        "kmeans_update",
        lambda: _vector_kmeans_update(points, centroids),
        lambda: _naive_kmeans_update(points, centroids),
        repeats,
        ops,
        check_close=_conformance_check(
            tolerance_for("numpy", "kmeans_update"),
            inputs=(points, centroids),
        ),
    )
    return ops


# ---------------------------------------------------------------------------
# End-to-end grid: serial vs 4 workers.
#
# Two grids are timed. The ECTS grid is pure CPU work, so its speedup
# tracks the physical core count of the machine generating the file (1.0x
# on a single-core box — see the recorded ``cpu_count``). The stalled
# grid's cells block on a fixed per-cell stall, the shape of budget waits
# and dataset I/O in real campaigns; its speedup isolates what the worker
# pool itself contributes — overlap of cell latency — independent of cores.

_STALL_SECONDS = 0.15


class _StalledECTS(ECTS):
    """ECTS whose training additionally blocks, emulating per-cell I/O."""

    def _train(self, dataset):
        time.sleep(_STALL_SECONDS)
        super()._train(dataset)


def _grid_registries(quick: bool, stalled: bool = False):
    algorithms = AlgorithmRegistry()
    if stalled:
        algorithms.register("ECTS", lambda: _StalledECTS(support=0.0))
    else:
        algorithms.register("ECTS", lambda: ECTS(support=0.0))
    datasets = DatasetRegistry()
    n_datasets = 6 if quick else 8
    if stalled:
        n_instances, length = 40, 30
    else:
        n_instances, length = (200, 80) if quick else (300, 100)
    for index in range(n_datasets):
        name = f"bench{index}"
        datasets.register(
            name,
            lambda index=index: make_benchmark_dataset(
                n_instances=n_instances, length=length, seed=index
            ),
        )
    return algorithms, datasets


def _run_grid(quick: bool, workers: int, stalled: bool = False) -> float:
    algorithms, datasets = _grid_registries(quick, stalled=stalled)
    runner = BenchmarkRunner(
        algorithms, datasets, n_folds=2, seed=0, workers=workers
    )
    start = time.perf_counter()
    report = runner.run()
    elapsed = time.perf_counter() - start
    assert not report.failures, report.failures
    return elapsed


def _grid_pair(quick: bool, name: str, ops: dict, stalled: bool) -> None:
    serial = _run_grid(quick, workers=1, stalled=stalled)
    parallel = _run_grid(quick, workers=4, stalled=stalled)
    ops[f"{name}_workers_1"] = {"median": serial, "p90": serial}
    ops[f"{name}_workers_4"] = {
        "median": parallel,
        "p90": parallel,
        "baseline_median": serial,
        "speedup": serial / parallel if parallel else float("inf"),
    }
    print(
        f"{name + '_workers_4':24s} median {parallel*1e3:9.3f} ms   "
        f"serial {serial*1e3:9.3f} ms   "
        f"speedup {serial / parallel:6.1f}x"
    )


def _grid_benchmarks(quick: bool, ops: dict) -> None:
    _grid_pair(quick, "grid", ops, stalled=False)
    _grid_pair(quick, "grid_stalled", ops, stalled=True)


# ---------------------------------------------------------------------------
# Regression gate.

_GATE_FACTOR = 2.0


def _check(current: dict, baseline_path: Path) -> int:
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    failures = []
    for op, reference in baseline["ops"].items():
        if op.startswith("grid_"):
            continue  # wall-clock of forked workers is too noisy to gate
        measured = current["ops"].get(op)
        if measured is None:
            failures.append(f"{op}: missing from this run")
            continue
        floor = reference["speedup"] / _GATE_FACTOR
        if measured["speedup"] < floor:
            failures.append(
                f"{op}: speedup {measured['speedup']:.1f}x fell below "
                f"{floor:.1f}x (baseline {reference['speedup']:.1f}x / "
                f"{_GATE_FACTOR:g})"
            )
    if failures:
        print("\nPERF REGRESSION:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"\nperf gate ok: no kernel regressed >{_GATE_FACTOR:g}x vs baseline")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI sizes: smaller inputs, fewer repeats",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="timing repeats per op (default 7, or 5 with --quick)",
    )
    parser.add_argument(
        "--output", metavar="PATH", default=str(DEFAULT_OUTPUT),
        help="where to write the JSON results (default: repo BENCH_PERF.json)",
    )
    parser.add_argument(
        "--check", metavar="BASELINE", default=None,
        help=(
            "compare against a committed BENCH_PERF.json and exit non-zero "
            f"if any kernel's speedup fell below baseline/{_GATE_FACTOR:g}"
        ),
    )
    parser.add_argument(
        "--skip-grid", action="store_true",
        help="kernels only (skip the end-to-end worker-pool comparison)",
    )
    arguments = parser.parse_args(argv)
    repeats = arguments.repeats or (5 if arguments.quick else 7)

    ops = _kernel_benchmarks(arguments.quick, repeats)
    if not arguments.skip_grid:
        _grid_benchmarks(arguments.quick, ops)

    results = {
        "mode": "quick" if arguments.quick else "full",
        "repeats": repeats,
        "units": "seconds",
        "cpu_count": os.cpu_count(),
        "ops": ops,
    }
    output = Path(arguments.output)
    output.write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"\nresults written to {output}")

    if arguments.check:
        return _check(results, Path(arguments.check))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
