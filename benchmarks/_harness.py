"""Shared infrastructure for the reproduction benchmarks.

Every bench regenerates one table or figure of the paper. Figures 9-12 all
consume the same algorithms x datasets cross-validation grid, so that grid
is computed once per benchmark session and memoised here.

Scale control
-------------
``REPRO_SCALE`` (default 0.05) scales dataset sizes; ``REPRO_FOLDS``
(default 2) sets the cross-validation folds; ``REPRO_BUDGET`` (default 120
seconds) is the per-pair time budget standing in for the paper's 48-hour
kill rule. Raise them for results closer to the published setting::

    REPRO_SCALE=0.2 REPRO_FOLDS=5 pytest benchmarks/ --benchmark-only

Reports
-------
Each bench prints its table and also writes it to
``benchmarks/results/<name>.md`` so the output survives pytest's capture.
"""

from __future__ import annotations

import json
import os
from functools import lru_cache
from pathlib import Path

import numpy as np

from repro.data import TimeSeriesDataset
from repro.core import (
    BenchmarkRunner,
    RunReport,
    category_names,
    default_algorithms,
    default_datasets,
)

RESULTS_DIR = Path(__file__).parent / "results"

ALGORITHM_ORDER = (
    "ECEC",
    "ECO-K",
    "ECTS",
    "EDSC",
    "TEASER",
    "S-MINI",
    "S-WEASEL",
    "S-MLSTM",
)


def get_scale() -> float:
    """Dataset scale factor from ``REPRO_SCALE``."""
    return float(os.environ.get("REPRO_SCALE", "0.05"))


def get_folds() -> int:
    """Cross-validation folds from ``REPRO_FOLDS``."""
    return int(os.environ.get("REPRO_FOLDS", "2"))


def get_budget_seconds() -> float:
    """Per-pair time budget from ``REPRO_BUDGET``."""
    return float(os.environ.get("REPRO_BUDGET", "120"))


@lru_cache(maxsize=4)
def run_grid(
    scale: float | None = None,
    folds: int | None = None,
    seed: int = 0,
) -> RunReport:
    """The full algorithms x datasets evaluation grid (memoised).

    All of Figures 9-13 read from this one report, exactly as the paper's
    figures all read from one experimental campaign.
    """
    scale = get_scale() if scale is None else scale
    folds = get_folds() if folds is None else folds
    runner = BenchmarkRunner(
        default_algorithms(fast=True),
        default_datasets(scale=scale, seed=seed),
        n_folds=folds,
        time_budget_seconds=get_budget_seconds(),
        seed=seed,
    )
    report = runner.run()
    # Machine-readable companion to the markdown tables: one JSONL record
    # per grid cell, so downstream analysis never has to re-parse markdown.
    write_cell_records(report, runner.metrics)
    return report


def cell_records(report: RunReport) -> list[dict]:
    """One dict per (algorithm, dataset) cell: scores or failure reason.

    All timing fields come from the shared instrumentation layer — the
    ``train_seconds``/``test_seconds`` measured inside ``evaluate`` —
    not from bench-local timers.
    """
    records = []
    for (algorithm, dataset), result in report.results.items():
        records.append(
            {
                "algorithm": algorithm,
                "dataset": dataset,
                "status": "ok",
                "accuracy": result.accuracy,
                "f1": result.f1,
                "earliness": result.earliness,
                "harmonic_mean": result.harmonic_mean,
                "train_seconds": result.train_seconds,
                "test_seconds": result.test_seconds,
                "test_seconds_per_instance": result.test_seconds_per_instance,
                "n_folds": len(result.folds),
            }
        )
    for (algorithm, dataset), reason in report.failures.items():
        status = "timeout" if "budget" in reason else "failed"
        records.append(
            {
                "algorithm": algorithm,
                "dataset": dataset,
                "status": status,
                "reason": reason,
            }
        )
    return records


def write_cell_records(
    report: RunReport, metrics=None, name: str = "grid_cells"
) -> Path:
    """Persist per-cell records (and the run's metrics snapshot) as JSONL."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.jsonl"
    with path.open("w", encoding="utf-8") as handle:
        for record in cell_records(report):
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        if metrics is not None:
            snapshot = {"type": "metrics", **metrics.snapshot()}
            handle.write(json.dumps(snapshot, sort_keys=True) + "\n")
    return path


def format_category_table(
    table: dict[str, dict[str, float]],
    metric_name: str,
    decimals: int = 3,
) -> str:
    """Render a ``{category: {algorithm: value}}`` mapping as markdown."""
    algorithms = [
        name
        for name in ALGORITHM_ORDER
        if any(name in row for row in table.values())
    ]
    lines = [
        f"## {metric_name}",
        "",
        "| category | " + " | ".join(algorithms) + " |",
        "|" + "---|" * (len(algorithms) + 1),
    ]
    for category in category_names():
        row = table.get(category)
        if not row:
            continue
        cells = [
            f"{row[name]:.{decimals}f}" if name in row else "--"
            for name in algorithms
        ]
        lines.append(f"| {category} | " + " | ".join(cells) + " |")
    return "\n".join(lines)


def rank_per_category(
    table: dict[str, dict[str, float]], reverse: bool = True
) -> dict[str, list[str]]:
    """Algorithms ranked best-first per category (``reverse=False`` for
    lower-is-better metrics such as earliness and training time)."""
    return {
        category: sorted(row, key=row.get, reverse=reverse)
        for category, row in table.items()
    }


def make_benchmark_dataset(
    n_instances: int = 40,
    length: int = 30,
    n_variables: int = 1,
    n_classes: int = 2,
    seed: int = 0,
) -> TimeSeriesDataset:
    """A frequency-separated synthetic dataset for micro-benchmarks."""
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    labels = np.arange(n_instances) % n_classes
    rng.shuffle(labels)
    values = np.empty((n_instances, n_variables, length))
    for i, label in enumerate(labels):
        for v in range(n_variables):
            values[i, v] = np.sin(
                (0.25 + 0.3 * label) * t + rng.uniform(0, 2 * np.pi)
            ) + 0.15 * rng.normal(size=length)
    return TimeSeriesDataset(values, labels, name="bench")


def write_report(name: str, content: str) -> Path:
    """Print a report and persist it under ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.md"
    path.write_text(content + "\n", encoding="utf-8")
    print(content)
    print(f"[report written to {path}]")
    return path
