"""Table 4 — parameter values of the ETSC algorithms.

Renders the paper's parameter table from the *actual* constructed objects
(both the fast profile used by the benches and the paper profile), so any
drift between documentation and code is caught here.
"""

from _harness import write_report

from repro.etsc import ECEC, ECTS, EDSC, TEASER, EconomyK
from repro.etsc.strut import s_mlstm


def _describe(profile: str) -> list[str]:
    fast = profile == "fast"
    ecec = ECEC(n_prefixes=8) if fast else ECEC(n_prefixes=20)
    economy = EconomyK(n_checkpoints=8) if fast else EconomyK()
    ects = ECTS()
    edsc = EDSC(n_lengths=2, stride=2) if fast else EDSC(n_lengths=None)
    teaser = TEASER(n_prefixes=8) if fast else TEASER(n_prefixes=20)
    mlstm = s_mlstm(n_epochs=10 if fast else 30)
    return [
        f"| ECEC | N={ecec.n_prefixes}, alpha={ecec.alpha} |",
        (
            f"| ECONOMY-K | k grid={economy.cluster_grid}, "
            f"lambda={economy.misclassification_cost}, "
            f"cost={economy.delay_cost} |"
        ),
        f"| ECTS | support={ects.support} |",
        (
            f"| EDSC | CHE, k={edsc.k}, minLen={edsc.min_length}, "
            f"maxLen={'L/2' if edsc.max_length is None else edsc.max_length},"
            f" stride={edsc.stride} |"
        ),
        (
            f"| TEASER | S={teaser.n_prefixes}, "
            f"v grid={teaser.consistency_grid}, nu={teaser.nu}, "
            f"normalize={teaser.normalize} |"
        ),
        (
            f"| S-MLSTM | truncation grid={mlstm.grid_fractions}, "
            "LSTM-unit grid=(8, 64, 128) |"
        ),
    ]


def _build_table() -> str:
    lines = ["# Table 4 — parameter values", ""]
    for profile in ("paper", "fast"):
        lines.append(f"## {profile} profile")
        lines.append("")
        lines.append("| algorithm | parameter values |")
        lines.append("|---|---|")
        lines.extend(_describe(profile))
        lines.append("")
    lines.append(
        "Paper values (Table 4): ECEC N=20 a=0.8; ECONOMY-K k={1,2,3} "
        "lambda=100 cost=0.001; ECTS support=0; EDSC CHE k=3 minLen=5 "
        "maxLen=L/2; TEASER S=20 (10 for Biological/Maritime)."
    )
    return "\n".join(lines)


def test_table4(benchmark):
    """Constructing every algorithm with its documented defaults (Table 4)."""
    table = benchmark(_build_table)
    assert "lambda=100.0" in table
    assert "support=0" in table
    write_report("table4_parameters", table)
