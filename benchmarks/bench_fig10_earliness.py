"""Figure 10 — earliness per dataset category (lower is better).

Prints the per-category mean earliness table and the earliest-first
ranking. Shape checks assert the robust qualitative findings of Section
6.2.2: the STRUT variants (which commit at a single validated truncation
point) are substantially earlier than ECTS (whose RNN-stability rule is
notoriously late), and every value is a valid ratio in (0, 1].
"""

import numpy as np
from _harness import format_category_table, rank_per_category, run_grid, write_report

from repro.core.charts import grouped_bars


def test_fig10_earliness(benchmark):
    """Per-category earliness (Figure 10)."""
    report = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    table = report.metric_by_category("earliness")

    content = [
        "# Figure 10 — earliness per dataset category (lower is better)",
        "",
        format_category_table(table, "earliness"),
        "",
        "## earliest algorithm per category",
        "",
    ]
    ranking = rank_per_category(table, reverse=False)
    for category, ranked in ranking.items():
        content.append(f"- {category}: {', '.join(ranked[:3])}")
    content.extend(["", "## chart", "", "```", grouped_bars(table), "```"])
    write_report("fig10_earliness", "\n".join(content))

    values = [v for row in table.values() for v in row.values()]
    assert all(0.0 < v <= 1.0 for v in values)

    # Section 6.2.2 shape: selective truncation beats ECTS on earliness.
    strut_mean = np.mean(
        [
            row[name]
            for row in table.values()
            for name in ("S-MINI", "S-WEASEL")
            if name in row
        ]
    )
    ects_mean = np.mean(
        [row["ECTS"] for row in table.values() if "ECTS" in row]
    )
    assert strut_mean < ects_mean
