#!/usr/bin/env python
"""Scheduler harness: LPT vs FIFO makespan, plus shard/steal equivalence.

Times the cost-model LPT dispatch against plain FIFO submission on a
deliberately skewed synthetic grid — many short datasets plus one long
dataset registered *last*, the worst case for FIFO (the long cell starts
after everything else and extends the makespan by nearly its full
duration). Cell cost is dominated by a ``time.sleep`` proportional to
the cost model's own prefix-based heuristic (quadratic in training-set
size), so the comparison isolates scheduling policy from core count:
sleeps overlap across pool workers even on a single-core runner.

The same grid then exercises checkpoint shards end to end: a two-shard
split run and a one-shard steal-everything run must both merge into the
serial reference report cell-for-cell.

Like ``bench_perf.py``, this is a standalone script (CI's
``sched-smoke`` job runs it without pytest)::

    PYTHONPATH=src python benchmarks/bench_sched.py            # full
    PYTHONPATH=src python benchmarks/bench_sched.py --quick    # CI repeats
    PYTHONPATH=src python benchmarks/bench_sched.py --quick \
        --check BENCH_SCHED.json                               # gate

``--check`` gates on the LPT-vs-FIFO *speedup* (both measured in the
same process on the same machine, so the ratio survives CI runner
generations): it fails when the measured speedup falls below
``max(1.3, baseline / 1.5)`` — 1.3x is the absolute floor the skewed
grid must always clear at 4 workers — or when either shard run stopped
reproducing the serial report.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import statistics
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core import (
    AlgorithmRegistry,
    BenchmarkRunner,
    DatasetRegistry,
    EarlyClassifier,
    EarlyPrediction,
    RunReport,
    merge_checkpoint_states,
)
from repro.core.sched import load_shard_checkpoints, report_from_state

sys.path.insert(0, str(Path(__file__).parent))
from _harness import make_benchmark_dataset  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_SCHED.json"

# Per-_train stall in seconds per (training instances)^2 — the same
# quadratic the cost model's prefix-based heuristic assumes, so the
# synthetic grid is exactly the workload LPT is calibrated for. With
# 2-fold CV a short dataset (25 instances, ~12 per training split)
# costs ~0.1 s per cell and the long dataset (75 instances) ~0.9 s.
_STALL_PER_SQUARED_INSTANCE = 3.2e-4

_N_SHORT_DATASETS = 27
_SHORT_INSTANCES = 25
_LONG_INSTANCES = 75
_WORKERS = 4


class _StalledMajority(EarlyClassifier):
    """Majority-class stub whose training stalls quadratically in size.

    The stall stands in for real training compute but is pure sleep, so
    four pool workers overlap fully even on one core and the measured
    makespan reflects the dispatch order alone.
    """

    supports_multivariate = True

    def _train(self, dataset):
        time.sleep(_STALL_PER_SQUARED_INSTANCE * dataset.n_instances**2)
        values, counts = np.unique(dataset.labels, return_counts=True)
        self._majority = int(values[counts.argmax()])

    def _predict(self, dataset):
        return [
            EarlyPrediction(self._majority, 1, dataset.length)
            for _ in range(dataset.n_instances)
        ]


def _skewed_registries() -> tuple[AlgorithmRegistry, DatasetRegistry]:
    """27 short datasets plus one long dataset registered last.

    Registration order is FIFO submission order, so putting the long
    dataset last makes FIFO start the dominant cell when every worker
    but one is already idle — the textbook LPT-vs-FIFO gap.
    """
    algorithms = AlgorithmRegistry()
    algorithms.register(
        "STALL", _StalledMajority, category="prefix-based"
    )
    datasets = DatasetRegistry()
    for index in range(_N_SHORT_DATASETS):
        datasets.register(
            f"short{index:02d}",
            lambda index=index: make_benchmark_dataset(
                n_instances=_SHORT_INSTANCES, length=30, seed=index
            ),
        )
    datasets.register(
        "long",
        lambda: make_benchmark_dataset(
            n_instances=_LONG_INSTANCES, length=30, seed=99
        ),
    )
    return algorithms, datasets


def _run_grid(scheduler: str, **runner_kwargs) -> tuple[float, RunReport]:
    algorithms, datasets = _skewed_registries()
    runner = BenchmarkRunner(
        algorithms,
        datasets,
        n_folds=2,
        seed=0,
        workers=_WORKERS,
        scheduler=scheduler,
        **runner_kwargs,
    )
    start = time.perf_counter()
    report = runner.run()
    elapsed = time.perf_counter() - start
    assert not report.failures, report.failures
    return elapsed, report


def _report_view(report: RunReport) -> dict:
    """Timing-stripped per-cell view (same shape CI's resume gate uses)."""
    cells = {
        f"{algorithm}/{dataset}": [
            (fold.accuracy, fold.f1, fold.earliness,
             fold.harmonic_mean, fold.n_test)
            for fold in result.folds
        ]
        for (algorithm, dataset), result in report.results.items()
    }
    failures = {
        f"{algorithm}/{dataset}": reason
        for (algorithm, dataset), reason in report.failures.items()
    }
    return {"cells": cells, "failures": failures}


# ---------------------------------------------------------------------------
# Makespan comparison.


def _makespan_benchmarks(repeats: int, ops: dict) -> None:
    fifo_samples, lpt_samples = [], []
    for _ in range(repeats):
        elapsed, _ = _run_grid("fifo")
        fifo_samples.append(elapsed)
        elapsed, _ = _run_grid("lpt")
        lpt_samples.append(elapsed)
    fifo = statistics.median(fifo_samples)
    lpt = statistics.median(lpt_samples)
    ops[f"sched_grid_fifo_workers_{_WORKERS}"] = {
        "median": fifo,
        "p90": max(fifo_samples),
    }
    ops[f"sched_grid_lpt_workers_{_WORKERS}"] = {
        "median": lpt,
        "p90": max(lpt_samples),
        "baseline_median": fifo,
        "speedup": fifo / lpt if lpt else float("inf"),
    }
    print(
        f"{'sched_grid_lpt':24s} median {lpt*1e3:9.3f} ms   "
        f"fifo {fifo*1e3:9.3f} ms   "
        f"speedup {fifo / lpt:6.2f}x"
    )


# ---------------------------------------------------------------------------
# Shard / steal equivalence.


def _merged_view(directory: Path) -> dict:
    states = load_shard_checkpoints(directory)
    merged = merge_checkpoint_states(states)
    return _report_view(report_from_state(merged))


def _run_shard(spec: str, directory: Path, steal: bool) -> BenchmarkRunner:
    algorithms, datasets = _skewed_registries()
    runner = BenchmarkRunner(
        algorithms,
        datasets,
        n_folds=2,
        seed=0,
        workers=_WORKERS,
        shard=spec,
        shard_steal=steal,
        checkpoint_path=directory,
    )
    runner.run()
    return runner


def _fresh_dir(path: Path) -> Path:
    """Shard runs resume implicitly from leftover shard-*.jsonl files, so
    a stale scratch directory would turn the whole phase into a no-op
    (and report zero steals). Always start from an empty directory."""
    if path.exists():
        shutil.rmtree(path)
    path.mkdir(parents=True)
    return path


def _shard_benchmarks(work_dir: Path, results: dict) -> None:
    _, serial_report = _run_grid("lpt")
    reference = _report_view(serial_report)

    # Two cooperating shards, no stealing: each runs exactly its bin.
    split_dir = _fresh_dir(work_dir / "split")
    _run_shard("0/2", split_dir, steal=False)
    _run_shard("1/2", split_dir, steal=False)
    split_equal = _merged_view(split_dir) == reference

    # One shard left alone with stealing on: it must claim and finish
    # the sibling's entire bin, and the merged grid is still complete.
    steal_dir = _fresh_dir(work_dir / "steal")
    runner = _run_shard("0/2", steal_dir, steal=True)
    steals = int(runner.metrics.snapshot().get("sched.steals", 0))
    steal_equal = _merged_view(steal_dir) == reference

    results["shard"] = {
        "split_report_equal": split_equal,
        "steal_report_equal": steal_equal,
        "steals": steals,
    }
    print(
        f"{'shard_merge':24s} split == serial: {split_equal}   "
        f"steal == serial: {steal_equal} ({steals} cells stolen)"
    )


# ---------------------------------------------------------------------------
# Regression gate.

_SPEEDUP_FLOOR = 1.3
_GATE_FACTOR = 1.5


def _check(current: dict, baseline_path: Path) -> int:
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    failures = []
    lpt_op = f"sched_grid_lpt_workers_{_WORKERS}"
    reference = baseline["ops"].get(lpt_op, {}).get("speedup")
    measured = current["ops"].get(lpt_op, {}).get("speedup")
    if measured is None:
        failures.append(f"{lpt_op}: missing from this run")
    else:
        floor = _SPEEDUP_FLOOR
        if reference is not None:
            floor = max(floor, reference / _GATE_FACTOR)
        if measured < floor:
            failures.append(
                f"{lpt_op}: LPT speedup {measured:.2f}x fell below "
                f"{floor:.2f}x (baseline "
                f"{reference:.2f}x / {_GATE_FACTOR:g}, absolute floor "
                f"{_SPEEDUP_FLOOR:g}x)"
                if reference is not None
                else f"{lpt_op}: LPT speedup {measured:.2f}x fell below "
                f"the {_SPEEDUP_FLOOR:g}x floor"
            )
    shard = current.get("shard", {})
    for flag in ("split_report_equal", "steal_report_equal"):
        if not shard.get(flag):
            failures.append(
                f"shard.{flag}: merged shard report diverged from the "
                "serial reference"
            )
    if not shard.get("steals", 0):
        failures.append(
            "shard.steals: the lone stealing shard claimed no sibling "
            "cells"
        )
    if failures:
        print("\nSCHED REGRESSION:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(
        f"\nsched gate ok: LPT speedup {measured:.2f}x, "
        "shard merges reproduce the serial report"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI repeats (the grid itself is identical to the full run: "
        "the gate compares schedule quality, not machine speed)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="makespan repeats per scheduler (default 3, or 2 with --quick)",
    )
    parser.add_argument(
        "--output", metavar="PATH", default=str(DEFAULT_OUTPUT),
        help="where to write the JSON results (default: repo BENCH_SCHED.json)",
    )
    parser.add_argument(
        "--check", metavar="BASELINE", default=None,
        help=(
            "compare against a committed BENCH_SCHED.json and exit "
            "non-zero if the LPT speedup fell below "
            f"max({_SPEEDUP_FLOOR:g}, baseline/{_GATE_FACTOR:g}) or a "
            "shard merge stopped matching the serial report"
        ),
    )
    parser.add_argument(
        "--skip-shards", action="store_true",
        help="makespan comparison only (skip the shard/steal equivalence)",
    )
    parser.add_argument(
        "--work-dir", metavar="DIR", default=None,
        help="scratch directory for shard checkpoints "
        "(default: a fresh temporary directory)",
    )
    arguments = parser.parse_args(argv)
    repeats = arguments.repeats or (2 if arguments.quick else 3)

    ops: dict[str, dict] = {}
    _makespan_benchmarks(repeats, ops)

    results = {
        "mode": "quick" if arguments.quick else "full",
        "repeats": repeats,
        "units": "seconds",
        "cpu_count": os.cpu_count(),
        "grid": {
            "datasets": _N_SHORT_DATASETS + 1,
            "short_instances": _SHORT_INSTANCES,
            "long_instances": _LONG_INSTANCES,
            "workers": _WORKERS,
        },
        "ops": ops,
    }
    if not arguments.skip_shards:
        if arguments.work_dir:
            work_dir = Path(arguments.work_dir)
            work_dir.mkdir(parents=True, exist_ok=True)
        else:
            work_dir = Path(tempfile.mkdtemp(prefix="bench_sched_"))
        _shard_benchmarks(work_dir, results)

    output = Path(arguments.output)
    output.write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"\nresults written to {output}")

    if arguments.check:
        return _check(results, Path(arguments.check))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
