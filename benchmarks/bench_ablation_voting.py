"""Ablation — voting schemes for univariate algorithms on multivariate data.

The paper applies majority voting with worst-voter earliness (Section 6.1)
and lists "alternative voting schemes" as future work. This bench compares
the three implemented schemes (majority / confidence / earliest) with ECEC
members on a multivariate dataset. Structural check: the earliest scheme is
never later than majority (it inherits the fastest voter's earliness by
construction).
"""

from _harness import make_benchmark_dataset, write_report

from repro.core import VotingEnsemble
from repro.core.prediction import collect_predictions
from repro.data import train_test_split
from repro.etsc import ECEC
from repro.stats import accuracy, earliness

_SCHEMES = ("majority", "confidence", "earliest")


def _run():
    dataset = make_benchmark_dataset(
        n_instances=50, length=30, n_variables=3, seed=0
    )
    train, test = train_test_split(dataset, 0.3, seed=0)
    results = {}
    for scheme in _SCHEMES:
        ensemble = VotingEnsemble(
            lambda: ECEC(n_prefixes=6), scheme=scheme
        )
        ensemble.train(train)
        labels, prefixes = collect_predictions(ensemble.predict(test))
        results[scheme] = (
            accuracy(test.labels, labels),
            earliness(prefixes, test.length),
        )
    return results


def test_ablation_voting_schemes(benchmark):
    """Accuracy/earliness of the three voting schemes."""
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [
        "# Ablation — voting schemes (ECEC members, 3 variables)",
        "",
        "| scheme | accuracy | earliness |",
        "|---|---|---|",
    ]
    for scheme in _SCHEMES:
        acc, earl = results[scheme]
        lines.append(f"| {scheme} | {acc:.3f} | {earl:.3f} |")
    write_report("ablation_voting", "\n".join(lines))
    assert results["earliest"][1] <= results["majority"][1] + 1e-9
