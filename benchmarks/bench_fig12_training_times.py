"""Figure 12 — training times per dataset category.

Prints the per-category mean wall-clock training time (seconds here;
the paper's y-axis is minutes) and the fastest-first ranking. The shape
check asserts Section 6.2.4's most robust finding: S-WEASEL and ECO-K are
among the fastest trainers, far cheaper than ECEC (which trains one WEASEL
pipeline per ladder prefix, per variable).
"""

import numpy as np
from _harness import format_category_table, rank_per_category, run_grid, write_report

from repro.core.charts import grouped_bars


def test_fig12_training_times(benchmark):
    """Per-category training time (Figure 12)."""
    report = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    table = report.metric_by_category("train_seconds")

    content = [
        "# Figure 12 — training time per dataset category (seconds)",
        "",
        format_category_table(table, "train seconds", decimals=2),
        "",
        "## fastest algorithm per category",
        "",
    ]
    for category, ranked in rank_per_category(table, reverse=False).items():
        content.append(f"- {category}: {', '.join(ranked[:3])}")
    content.extend(["", "## chart", "", "```",
                    grouped_bars(table, decimals=2), "```"])
    write_report("fig12_training_times", "\n".join(content))

    def overall(name):
        values = [row[name] for row in table.values() if name in row]
        return float(np.mean(values)) if values else float("inf")

    assert overall("S-WEASEL") < overall("ECEC")
    assert overall("ECO-K") < overall("ECEC")
