"""Figure 11 — harmonic mean of accuracy and earliness per category.

Prints the per-category harmonic-mean table and ranking. Shape checks
assert the paper's headline Section 6.3 finding that survives reduced
scale: the confirmed ordering "ECEC, ECO-K and TEASER outperform EDSC and
ECTS" holds on the overall mean.
"""

import numpy as np
from _harness import format_category_table, rank_per_category, run_grid, write_report

from repro.core.charts import grouped_bars


def _overall_mean(table, name):
    values = [row[name] for row in table.values() if name in row]
    return float(np.mean(values)) if values else float("nan")


def test_fig11_harmonic_mean(benchmark):
    """Per-category harmonic mean (Figure 11)."""
    report = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    table = report.metric_by_category("harmonic_mean")

    content = [
        "# Figure 11 — harmonic mean of accuracy and earliness",
        "",
        format_category_table(table, "harmonic mean"),
        "",
        "## best algorithm per category",
        "",
    ]
    for category, ranked in rank_per_category(table).items():
        content.append(f"- {category}: {', '.join(ranked[:3])}")
    overall = {
        name: _overall_mean(table, name)
        for name in (
            "ECEC", "ECO-K", "ECTS", "EDSC", "TEASER",
            "S-MINI", "S-WEASEL", "S-MLSTM",
        )
    }
    content.extend(["", "## overall means", ""])
    for name, value in sorted(overall.items(), key=lambda kv: -kv[1]):
        content.append(f"- {name}: {value:.3f}")
    content.extend(["", "## chart", "", "```", grouped_bars(table), "```"])
    write_report("fig11_harmonic_mean", "\n".join(content))

    # Section 6.3: the modern methods outperform the two classic baselines.
    modern = np.mean([overall["ECEC"], overall["TEASER"], overall["ECO-K"]])
    classic = np.mean([overall["EDSC"], overall["ECTS"]])
    assert modern > classic, overall

    # Section 6.2.3: ECEC is "mostly impacted by dataset characteristics"
    # yet sits in the top harmonic-mean ranks for the majority of
    # categories; S-MLSTM takes the best overall score.
    ranking = rank_per_category(table)
    ecec_top3 = sum("ECEC" in ranked[:3] for ranked in ranking.values())
    assert ecec_top3 >= len(ranking) / 2, ranking
    assert max(overall, key=overall.get) in ("S-MLSTM", "ECEC", "TEASER")
