"""WEASEL and WEASEL+MUSE full time-series classifiers.

WEASEL (Word ExtrAction for time SEries cLassification, Schafer & Leser
2017) slides windows of several lengths over each series, symbolises every
window with SFA (Fourier truncation + information-gain binning), builds a
bag-of-patterns of unigrams and bigrams, prunes it with a chi-squared test,
and classifies with logistic regression.

WEASEL+MUSE extends the pipeline to multivariate series by building one bag
per variable (plus one per first-difference "derivative" channel) and
concatenating the feature spaces. Both live in :class:`WEASEL`, which
switches behaviour on the number of variables.

Following Section 6.1 of the paper, the per-window z-normalisation step is
*disabled by default* (``normalize=False``) because it is unrealistic in an
online setting; pass ``normalize=True`` to restore the original behaviour.
"""

from __future__ import annotations

import numpy as np

from ..core.base import FullTSClassifier
from ..data.dataset import TimeSeriesDataset
from ..data.preprocessing import z_normalize
from ..exceptions import DataError, NotFittedError
from ..stats.feature_selection import SelectKBest
from ..stats.linear import LogisticRegression
from ..transform.bop import BagOfPatterns
from ..transform.windows import window_lengths

__all__ = ["WEASEL"]


class _ChannelPipeline:
    """Bags + their fitted metadata for one (variable, derivative) channel."""

    def __init__(
        self,
        windows: list[int],
        word_length: int,
        alphabet_size: int,
        binning: str,
        use_bigrams: bool,
    ) -> None:
        self.bags = [
            BagOfPatterns(
                window=window,
                word_length=word_length,
                alphabet_size=alphabet_size,
                binning=binning,
                use_bigrams=use_bigrams,
            )
            for window in windows
        ]

    def fit_transform(self, matrix: np.ndarray, labels: np.ndarray) -> np.ndarray:
        parts = [bag.fit_transform(matrix, labels) for bag in self.bags]
        return np.concatenate(parts, axis=1)

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        parts = [bag.transform(matrix) for bag in self.bags]
        return np.concatenate(parts, axis=1)


class WEASEL(FullTSClassifier):
    """WEASEL / WEASEL+MUSE classifier.

    Parameters
    ----------
    word_length, alphabet_size:
        SFA word configuration.
    n_window_sizes, min_window:
        How many window widths to use and the smallest one.
    use_bigrams:
        Count adjacent word pairs as extra features.
    use_derivatives:
        MUSE's first-difference channels (only applied to multivariate
        input; univariate WEASEL matches the original algorithm).
    normalize:
        Per-series z-normalisation before windowing (off by default, per the
        paper's online-realistic variant).
    chi2_top_k:
        Keep this many best features after the chi-squared test.
    l2:
        Regularisation of the logistic-regression head.
    """

    def __init__(
        self,
        word_length: int = 4,
        alphabet_size: int = 4,
        n_window_sizes: int = 4,
        min_window: int = 4,
        use_bigrams: bool = True,
        use_derivatives: bool = True,
        normalize: bool = False,
        binning: str = "information-gain",
        chi2_top_k: int = 200,
        l2: float = 1e-2,
    ) -> None:
        self.word_length = word_length
        self.alphabet_size = alphabet_size
        self.n_window_sizes = n_window_sizes
        self.min_window = min_window
        self.use_bigrams = use_bigrams
        self.use_derivatives = use_derivatives
        self.normalize = normalize
        self.binning = binning
        self.chi2_top_k = chi2_top_k
        self.l2 = l2
        self._channels: list[_ChannelPipeline] | None = None
        self._selector: SelectKBest | None = None
        self._head: LogisticRegression | None = None
        self._n_variables: int | None = None

    # ------------------------------------------------------------------
    def clone(self) -> "WEASEL":
        """Unfitted copy with identical hyperparameters."""
        return WEASEL(
            word_length=self.word_length,
            alphabet_size=self.alphabet_size,
            n_window_sizes=self.n_window_sizes,
            min_window=self.min_window,
            use_bigrams=self.use_bigrams,
            use_derivatives=self.use_derivatives,
            normalize=self.normalize,
            binning=self.binning,
            chi2_top_k=self.chi2_top_k,
            l2=self.l2,
        )

    @property
    def classes_(self) -> np.ndarray:
        """Distinct class labels seen during training."""
        if self._head is None:
            raise NotFittedError("WEASEL used before train")
        return self._head.classes_

    # ------------------------------------------------------------------
    def _channel_matrices(self, dataset: TimeSeriesDataset) -> list[np.ndarray]:
        """One (n_instances, length) matrix per channel.

        Channels are the raw variables plus, for multivariate input with
        ``use_derivatives``, their first differences (MUSE).
        """
        matrices = []
        for variable in range(dataset.n_variables):
            matrix = dataset.values[:, variable, :]
            if self.normalize:
                matrix = z_normalize(matrix)
            matrices.append(matrix)
        if dataset.n_variables > 1 and self.use_derivatives and dataset.length > 1:
            base_count = len(matrices)
            for variable in range(base_count):
                matrices.append(np.diff(matrices[variable], axis=1))
        return matrices

    def train(self, dataset: TimeSeriesDataset) -> "WEASEL":
        """Fit bags, feature selection, and the logistic head."""
        if dataset.n_classes < 2:
            raise DataError("WEASEL needs at least two classes to train")
        matrices = self._channel_matrices(dataset)
        self._n_variables = dataset.n_variables
        self._channels = []
        feature_blocks = []
        for matrix in matrices:
            windows = window_lengths(
                matrix.shape[1], self.min_window, self.n_window_sizes
            )
            channel = _ChannelPipeline(
                windows,
                self.word_length,
                self.alphabet_size,
                self.binning,
                self.use_bigrams,
            )
            feature_blocks.append(channel.fit_transform(matrix, dataset.labels))
            self._channels.append(channel)
        features = np.concatenate(feature_blocks, axis=1)
        self._selector = SelectKBest(min(self.chi2_top_k, features.shape[1]))
        selected = self._selector.fit_transform(features, dataset.labels)
        self._head = LogisticRegression(l2=self.l2)
        self._head.fit(selected, dataset.labels)
        return self

    def _features(self, dataset: TimeSeriesDataset) -> np.ndarray:
        if self._channels is None or self._selector is None:
            raise NotFittedError("WEASEL used before train")
        if dataset.n_variables != self._n_variables:
            raise DataError(
                f"trained on {self._n_variables} variables, "
                f"got {dataset.n_variables}"
            )
        matrices = self._channel_matrices(dataset)
        feature_blocks = [
            channel.transform(matrix)
            for channel, matrix in zip(self._channels, matrices)
        ]
        return self._selector.transform(
            np.concatenate(feature_blocks, axis=1)
        )

    def predict(self, dataset: TimeSeriesDataset) -> np.ndarray:
        """Predicted label per instance."""
        if self._head is None:
            raise NotFittedError("WEASEL used before train")
        return self._head.predict(self._features(dataset))

    def predict_proba(self, dataset: TimeSeriesDataset) -> np.ndarray:
        """Per-class probabilities (columns follow ``classes_``)."""
        if self._head is None:
            raise NotFittedError("WEASEL used before train")
        return self._head.predict_proba(self._features(dataset))
