"""MLSTM-FCN classifier wrapped in the FullTSClassifier interface.

See :class:`~repro.nn.network.MLSTMFCNNetwork` for the architecture. This
wrapper adds input scaling (per-variable standardisation computed on the
training set — legitimate online since it does not use per-series
statistics), label encoding, and the training loop configuration the paper
uses (Adam, fixed epochs, optional LSTM-unit grid search on a holdout).
"""

from __future__ import annotations

import numpy as np

from ..core.base import FullTSClassifier
from ..data.dataset import TimeSeriesDataset
from ..data.preprocessing import LabelEncoder
from ..data.splits import train_test_split
from ..exceptions import DataError, NotFittedError
from ..nn.network import MLSTMFCNNetwork
from ..nn.optim import Adam
from ..stats.linear import softmax
from ..stats.metrics import accuracy

__all__ = ["MLSTMFCN"]


class MLSTMFCN(FullTSClassifier):
    """Multivariate LSTM fully-convolutional network classifier.

    Parameters
    ----------
    lstm_units:
        Hidden size of the LSTM branch; ``None`` grid-searches the paper's
        ``{8, 64, 128}`` (scaled by ``unit_grid``) on an internal holdout.
    filters:
        FCN channel counts.
    n_epochs, batch_size, learning_rate, dropout:
        Training-loop configuration.
    unit_grid:
        Candidate LSTM sizes when ``lstm_units`` is ``None``.
    seed:
        Initialisation / shuffling seed.
    """

    def __init__(
        self,
        lstm_units: int | None = 8,
        filters: tuple[int, int, int] = (16, 32, 16),
        n_epochs: int = 30,
        batch_size: int = 16,
        learning_rate: float = 1e-2,
        dropout: float = 0.2,
        unit_grid: tuple[int, ...] = (8, 64, 128),
        seed: int = 0,
    ) -> None:
        self.lstm_units = lstm_units
        self.filters = filters
        self.n_epochs = n_epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.dropout = dropout
        self.unit_grid = unit_grid
        self.seed = seed
        self._network: MLSTMFCNNetwork | None = None
        self._encoder = LabelEncoder()
        self._shift: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    def clone(self) -> "MLSTMFCN":
        """Unfitted copy with identical hyperparameters."""
        return MLSTMFCN(
            lstm_units=self.lstm_units,
            filters=self.filters,
            n_epochs=self.n_epochs,
            batch_size=self.batch_size,
            learning_rate=self.learning_rate,
            dropout=self.dropout,
            unit_grid=self.unit_grid,
            seed=self.seed,
        )

    @property
    def classes_(self) -> np.ndarray:
        """Distinct class labels seen during training."""
        if self._encoder.classes_ is None:
            raise NotFittedError("MLSTMFCN used before train")
        return self._encoder.classes_

    # ------------------------------------------------------------------
    def _scaled(self, values: np.ndarray) -> np.ndarray:
        assert self._shift is not None and self._scale is not None
        return (values - self._shift[None, :, None]) / self._scale[
            None, :, None
        ]

    def _fit_network(
        self, dataset: TimeSeriesDataset, lstm_units: int
    ) -> MLSTMFCNNetwork:
        network = MLSTMFCNNetwork(
            n_variables=dataset.n_variables,
            n_classes=len(self._encoder.classes_),
            filters=self.filters,
            lstm_units=lstm_units,
            dropout=self.dropout,
            seed=self.seed,
        )
        encoded = self._encoder.transform(dataset.labels)
        one_hot = np.zeros((len(encoded), len(self._encoder.classes_)))
        one_hot[np.arange(len(encoded)), encoded] = 1.0
        network.train_epochs(
            self._scaled(dataset.values),
            one_hot,
            Adam(self.learning_rate),
            self.n_epochs,
            self.batch_size,
        )
        return network

    def train(self, dataset: TimeSeriesDataset) -> "MLSTMFCN":
        """Fit the network (with LSTM-size grid search when configured)."""
        if dataset.n_classes < 2:
            raise DataError("MLSTMFCN needs at least two classes to train")
        self._encoder.fit(dataset.labels)
        # Per-variable standardisation from training statistics only.
        self._shift = dataset.values.mean(axis=(0, 2))
        scale = dataset.values.std(axis=(0, 2))
        self._scale = np.where(scale < 1e-8, 1.0, scale)

        if self.lstm_units is not None:
            self._network = self._fit_network(dataset, self.lstm_units)
            return self
        # Grid search over LSTM sizes on an internal stratified holdout,
        # as in the paper's experimental setup (Section 6.1).
        try:
            fit_part, validation = train_test_split(
                dataset, test_fraction=0.25, seed=self.seed
            )
        except Exception:  # dataset too small to split; use all data
            fit_part, validation = dataset, dataset
        best_score = -np.inf
        best_units = self.unit_grid[0]
        for units in self.unit_grid:
            candidate = self._fit_network(fit_part, units)
            predictions = self._predict_with(candidate, validation)
            score = accuracy(validation.labels, predictions)
            if score > best_score:
                best_score = score
                best_units = units
        self._network = self._fit_network(dataset, best_units)
        return self

    # ------------------------------------------------------------------
    def _predict_with(
        self, network: MLSTMFCNNetwork, dataset: TimeSeriesDataset
    ) -> np.ndarray:
        logits = network.forward(self._scaled(dataset.values), training=False)
        return self._encoder.inverse_transform(logits.argmax(axis=1))

    def predict(self, dataset: TimeSeriesDataset) -> np.ndarray:
        """Predicted label per instance."""
        if self._network is None:
            raise NotFittedError("MLSTMFCN used before train")
        return self._predict_with(self._network, dataset)

    def predict_proba(self, dataset: TimeSeriesDataset) -> np.ndarray:
        """Per-class probabilities (columns follow ``classes_``)."""
        if self._network is None:
            raise NotFittedError("MLSTMFCN used before train")
        logits = self._network.forward(
            self._scaled(dataset.values), training=False
        )
        return softmax(logits)
