"""Interval-feature time-series classification (Time Series Forest style).

The bake-off taxonomy the paper references groups full-TSC methods into
dictionary-based (WEASEL), convolution-based (MiniROCKET), deep
(MLSTM-FCN), distance-based (1-NN-DTW) — and *interval-based*, represented
here. Following the Time Series Forest idea (Deng et al., 2013), each
series is summarised by simple statistics (mean, standard deviation, slope)
over random intervals, and a gradient-boosted classifier consumes the
resulting feature matrix. It completes the framework's coverage of the
major full-TSC families and slots into STRUT like any other backend.
"""

from __future__ import annotations

import numpy as np

from ..core.base import FullTSClassifier
from ..data.dataset import TimeSeriesDataset
from ..exceptions import ConfigurationError, DataError, NotFittedError
from ..stats.boosting import GradientBoostingClassifier

__all__ = ["IntervalForest"]


class IntervalForest(FullTSClassifier):
    """Random-interval statistics + gradient boosting.

    Parameters
    ----------
    n_intervals:
        Random intervals sampled per variable.
    min_interval:
        Minimum interval width in time-points.
    n_estimators:
        Boosting rounds of the head classifier.
    seed:
        Interval-sampling and boosting seed.
    """

    def __init__(
        self,
        n_intervals: int = 16,
        min_interval: int = 3,
        n_estimators: int = 30,
        seed: int = 0,
    ) -> None:
        if n_intervals < 1:
            raise ConfigurationError(
                f"n_intervals must be >= 1, got {n_intervals}"
            )
        if min_interval < 2:
            raise ConfigurationError(
                f"min_interval must be >= 2, got {min_interval}"
            )
        self.n_intervals = n_intervals
        self.min_interval = min_interval
        self.n_estimators = n_estimators
        self.seed = seed
        self._intervals: list[tuple[int, int, int]] | None = None
        self._head: GradientBoostingClassifier | None = None
        self._length: int | None = None

    def clone(self) -> "IntervalForest":
        """Unfitted copy with identical hyperparameters."""
        return IntervalForest(
            n_intervals=self.n_intervals,
            min_interval=self.min_interval,
            n_estimators=self.n_estimators,
            seed=self.seed,
        )

    @property
    def classes_(self) -> np.ndarray:
        """Distinct class labels seen during training."""
        if self._head is None:
            raise NotFittedError("IntervalForest used before train")
        return self._head.classes_

    # ------------------------------------------------------------------
    def _sample_intervals(self, n_variables: int, length: int) -> list[tuple[int, int, int]]:
        rng = np.random.default_rng(self.seed)
        minimum = min(self.min_interval, length)
        intervals = []
        for _ in range(self.n_intervals):
            variable = int(rng.integers(n_variables))
            width = int(rng.integers(minimum, length + 1))
            start = int(rng.integers(0, length - width + 1))
            intervals.append((variable, start, start + width))
        return intervals

    def _features(self, dataset: TimeSeriesDataset) -> np.ndarray:
        assert self._intervals is not None
        features = np.empty((dataset.n_instances, 3 * len(self._intervals)))
        for column, (variable, start, end) in enumerate(self._intervals):
            window = dataset.values[:, variable, start:end]
            features[:, 3 * column] = window.mean(axis=1)
            features[:, 3 * column + 1] = window.std(axis=1)
            # Least-squares slope over the interval.
            t = np.arange(end - start, dtype=float)
            t_centered = t - t.mean()
            denominator = float(np.sum(t_centered**2)) or 1.0
            features[:, 3 * column + 2] = (
                window @ t_centered
            ) / denominator
        return features

    # ------------------------------------------------------------------
    def train(self, dataset: TimeSeriesDataset) -> "IntervalForest":
        """Sample intervals and fit the boosted head."""
        if dataset.n_classes < 2:
            raise DataError("IntervalForest needs at least two classes")
        self._length = dataset.length
        self._intervals = self._sample_intervals(
            dataset.n_variables, dataset.length
        )
        self._head = GradientBoostingClassifier(
            n_estimators=self.n_estimators, seed=self.seed
        )
        self._head.fit(self._features(dataset), dataset.labels)
        return self

    def _validated_features(self, dataset: TimeSeriesDataset) -> np.ndarray:
        if self._head is None:
            raise NotFittedError("IntervalForest used before train")
        if dataset.length != self._length:
            raise DataError(
                f"trained on length {self._length}, got {dataset.length}"
            )
        return self._features(dataset)

    def predict(self, dataset: TimeSeriesDataset) -> np.ndarray:
        """Predicted label per instance."""
        features = self._validated_features(dataset)
        assert self._head is not None
        return self._head.predict(features)

    def predict_proba(self, dataset: TimeSeriesDataset) -> np.ndarray:
        """Per-class probabilities (columns follow ``classes_``)."""
        features = self._validated_features(dataset)
        assert self._head is not None
        return self._head.predict_proba(features)
