"""Full time-series classification algorithms (WEASEL, MiniROCKET,
MLSTM-FCN, and the interval-based extension)."""

from .interval_forest import IntervalForest
from .minirocket import MiniROCKET
from .mlstm_fcn import MLSTMFCN
from .weasel import WEASEL

__all__ = ["WEASEL", "MiniROCKET", "MLSTMFCN", "IntervalForest"]
