"""MiniROCKET full time-series classifier (Dempster et al., 2021).

MiniROCKET convolves each series with a fixed set of 84 kernels of length 9
whose weights are two-valued (three positions at +2, six at -1 — all
:math:`\\binom{9}{3}` choices), across a set of dilations, and summarises
each convolution with a single feature: the Proportion of Positive Values
(PPV) above a bias. Biases are drawn from quantiles of convolution outputs
on training data. A linear head over the ~10k PPV features completes the
classifier.

The two-valued weights admit the standard trick: with kernel index set
:math:`A` (the three +2 positions), ``conv = 3 * sum_{j in A} S_j - sum_j
S_j`` where :math:`S_j` is the input shifted by ``j * dilation`` — so the
nine shifted sums are computed once per dilation and shared by all 84
kernels.

Deviations from the reference implementation (documented in DESIGN.md):
zero padding is always applied (the original alternates padding per
feature), dilations are powers of two rather than a log-spaced 32-point
grid, and multivariate input is handled by summing convolutions over a
random channel subset per kernel/dilation (the original's channel
combination strategy, simplified).
"""

from __future__ import annotations

import itertools

import numpy as np

from ..core.base import FullTSClassifier
from ..data.dataset import TimeSeriesDataset
from ..exceptions import DataError, NotFittedError
from ..stats.linear import LogisticRegression
from ..stats.scaling import StandardScaler

__all__ = ["MiniROCKET"]

_KERNEL_LENGTH = 9
_KERNEL_INDEX_SETS = np.asarray(
    list(itertools.combinations(range(_KERNEL_LENGTH), 3)), dtype=int
)  # (84, 3)


def _dilations_for_length(length: int) -> list[int]:
    """Powers-of-two dilations whose receptive field fits the series."""
    dilations = []
    dilation = 1
    while (_KERNEL_LENGTH - 1) * dilation < length and len(dilations) < 8:
        dilations.append(dilation)
        dilation *= 2
    return dilations or [1]


class MiniROCKET(FullTSClassifier):
    """MiniROCKET transform + logistic-regression head.

    Parameters
    ----------
    n_features:
        Target number of PPV features (split evenly over kernel/dilation
        pairs); the paper uses about 10,000, the default here is smaller to
        keep the benchmark sweeps fast — raise it for accuracy-critical use.
    l2:
        Regularisation of the linear head.
    seed:
        Seed for bias sampling and channel subsets.
    """

    def __init__(
        self,
        n_features: int = 2000,
        l2: float = 1e-2,
        seed: int = 0,
    ) -> None:
        if n_features < 84:
            raise DataError(f"n_features must be >= 84, got {n_features}")
        self.n_features = n_features
        self.l2 = l2
        self.seed = seed
        self._dilations: list[int] | None = None
        self._biases: np.ndarray | None = None  # (n_combos, n_biases)
        self._channel_subsets: list[np.ndarray] | None = None
        self._scaler: StandardScaler | None = None
        self._head: LogisticRegression | None = None
        self._length: int | None = None

    def clone(self) -> "MiniROCKET":
        """Unfitted copy with identical hyperparameters."""
        return MiniROCKET(
            n_features=self.n_features, l2=self.l2, seed=self.seed
        )

    @property
    def classes_(self) -> np.ndarray:
        """Distinct class labels seen during training."""
        if self._head is None:
            raise NotFittedError("MiniROCKET used before train")
        return self._head.classes_

    # ------------------------------------------------------------------
    def _shifted_sums(self, matrix: np.ndarray, dilation: int) -> np.ndarray:
        """The nine dilation-shifted copies of each (padded) series.

        Returns an array of shape ``(9, n_series, length)`` whose ``j``-th
        slab is the input shifted by ``j * dilation`` under zero padding
        that centres the receptive field.
        """
        n_series, length = matrix.shape
        pad = (_KERNEL_LENGTH - 1) * dilation // 2
        padded = np.zeros((n_series, length + 2 * pad))
        padded[:, pad : pad + length] = matrix
        slabs = np.empty((_KERNEL_LENGTH, n_series, length))
        for j in range(_KERNEL_LENGTH):
            start = j * dilation
            slabs[j] = padded[:, start : start + length]
        return slabs

    def _convolutions(
        self, dataset: TimeSeriesDataset, dilation: int, subset: np.ndarray
    ) -> np.ndarray:
        """Convolution outputs of all 84 kernels for one dilation.

        Shape ``(84, n_series, length)``; multivariate input sums the
        selected channels before the shared-shift trick.
        """
        matrix = dataset.values[:, subset, :].sum(axis=1)
        slabs = self._shifted_sums(matrix, dilation)
        total = slabs.sum(axis=0)  # sum over the 9 taps
        outputs = np.empty((len(_KERNEL_INDEX_SETS),) + matrix.shape)
        for k, index_set in enumerate(_KERNEL_INDEX_SETS):
            outputs[k] = 3.0 * slabs[index_set].sum(axis=0) - total
        return outputs

    # ------------------------------------------------------------------
    def _fit_transform_parameters(self, dataset: TimeSeriesDataset) -> np.ndarray:
        """Choose dilations/channel subsets/biases and return train features."""
        rng = np.random.default_rng(self.seed)
        self._dilations = _dilations_for_length(dataset.length)
        n_combos = len(self._dilations)
        n_kernels = len(_KERNEL_INDEX_SETS)
        n_biases = max(
            1, int(np.ceil(self.n_features / (n_kernels * n_combos)))
        )
        self._channel_subsets = []
        for _ in range(n_combos):
            subset_size = int(
                rng.integers(1, dataset.n_variables + 1)
            )
            subset = rng.choice(
                dataset.n_variables, size=subset_size, replace=False
            )
            self._channel_subsets.append(np.sort(subset))

        quantiles = (np.arange(n_biases) + 0.5) / n_biases
        biases = np.empty((n_combos, n_kernels, n_biases))
        feature_blocks = []
        sample = rng.choice(
            dataset.n_instances,
            size=min(dataset.n_instances, 16),
            replace=False,
        )
        for combo, (dilation, subset) in enumerate(
            zip(self._dilations, self._channel_subsets)
        ):
            outputs = self._convolutions(dataset, dilation, subset)
            # Bias quantiles come from a small sample of training outputs,
            # per kernel, mirroring the reference implementation.
            sample_outputs = outputs[:, sample, :].reshape(n_kernels, -1)
            biases[combo] = np.quantile(sample_outputs, quantiles, axis=1).T
            feature_blocks.append(self._ppv(outputs, biases[combo]))
        self._biases = biases
        return np.concatenate(feature_blocks, axis=1)

    @staticmethod
    def _ppv(outputs: np.ndarray, biases: np.ndarray) -> np.ndarray:
        """PPV features: fraction of positions where conv exceeds each bias.

        ``outputs`` is ``(n_kernels, n_series, length)``, ``biases`` is
        ``(n_kernels, n_biases)``; the result is ``(n_series, n_kernels *
        n_biases)``.
        """
        n_kernels, n_series, _ = outputs.shape
        n_biases = biases.shape[1]
        features = np.empty((n_series, n_kernels * n_biases))
        for k in range(n_kernels):
            above = outputs[k][:, :, None] > biases[k][None, None, :]
            features[:, k * n_biases : (k + 1) * n_biases] = above.mean(axis=1)
        return features

    def _transform(self, dataset: TimeSeriesDataset) -> np.ndarray:
        assert self._dilations is not None
        assert self._biases is not None and self._channel_subsets is not None
        feature_blocks = []
        for combo, (dilation, subset) in enumerate(
            zip(self._dilations, self._channel_subsets)
        ):
            outputs = self._convolutions(dataset, dilation, subset)
            feature_blocks.append(self._ppv(outputs, self._biases[combo]))
        return np.concatenate(feature_blocks, axis=1)

    # ------------------------------------------------------------------
    def train(self, dataset: TimeSeriesDataset) -> "MiniROCKET":
        """Fit the random transform parameters and the linear head."""
        if dataset.n_classes < 2:
            raise DataError("MiniROCKET needs at least two classes to train")
        self._length = dataset.length
        features = self._fit_transform_parameters(dataset)
        self._scaler = StandardScaler()
        scaled = self._scaler.fit_transform(features)
        self._head = LogisticRegression(l2=self.l2)
        self._head.fit(scaled, dataset.labels)
        return self

    def _require_features(self, dataset: TimeSeriesDataset) -> np.ndarray:
        if self._head is None or self._scaler is None:
            raise NotFittedError("MiniROCKET used before train")
        if dataset.length != self._length:
            raise DataError(
                f"trained on length {self._length}, got {dataset.length}"
            )
        return self._scaler.transform(self._transform(dataset))

    def predict(self, dataset: TimeSeriesDataset) -> np.ndarray:
        """Predicted label per instance."""
        features = self._require_features(dataset)
        assert self._head is not None
        return self._head.predict(features)

    def predict_proba(self, dataset: TimeSeriesDataset) -> np.ndarray:
        """Per-class probabilities (columns follow ``classes_``)."""
        features = self._require_features(dataset)
        assert self._head is not None
        return self._head.predict_proba(features)
