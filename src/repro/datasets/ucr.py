"""Synthetic stand-ins for the ten UEA & UCR datasets of the paper.

Offline, the UEA & UCR archive is unavailable; each of the ten selected
datasets is replaced by a seeded generator that matches the published shape
(instances x variables x length), class count, class-imbalance ratio band,
and coefficient-of-variation band — the statistics that drive the paper's
Table 3 categorisation — while planting class-dependent temporal structure
of the corresponding flavour (accelerometer bursts, traffic profiles,
appliance pulse trains, astronomical transients, current waveforms,
consumption profiles, price returns).

``generate(name, scale=...)`` shrinks instance counts and, for the widest
sets, lengths by the same factor; category checks at reduced scale must use
proportionally scaled Wide/Large thresholds (the benches do).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..data.dataset import TimeSeriesDataset
from ..exceptions import RegistryError
from .synthetic import (
    allocate_labels,
    daily_profile,
    linear_trend,
    oscillation,
    pulse_train,
    scaled_count,
    transient_burst,
)

__all__ = ["generate", "DATASET_NAMES", "dataset_spec", "DatasetSpec"]


@dataclass(frozen=True)
class DatasetSpec:
    """Published shape of one UCR dataset plus its builder."""

    name: str
    height: int
    length: int
    n_classes: int
    n_variables: int
    class_weights: tuple[float, ...]
    frequency_seconds: float
    scale_length: bool  # shrink the length together with the height?
    builder: Callable[[int, np.random.Generator, int, int], np.ndarray]


# ---------------------------------------------------------------------------
# Builders: (label, rng, length, n_variables) -> array (n_variables, length)
# ---------------------------------------------------------------------------

def _basic_motions(label: int, rng: np.random.Generator, length: int, n_variables: int) -> np.ndarray:
    """Accelerometer/gyroscope-style activity signals (4 activities).

    Per-instance amplitude and frequency jitter models subject-to-subject
    variation: classes stay separable by frequency band, but no two
    instances share an exact template (as in the real recordings).
    """
    frequencies = (0.05, 0.35, 0.8, 0.5)[label] * rng.uniform(0.85, 1.15)
    amplitudes = (0.15, 1.2, 3.0, 2.0)[label] * rng.uniform(0.7, 1.3)
    series = np.empty((n_variables, length))
    for v in range(n_variables):
        phase = rng.uniform(0.0, 2.0 * np.pi)
        base = oscillation(
            length, frequencies * (1.0 + 0.1 * v), amplitudes, phase, rng, 0.3
        )
        if label == 3:  # racket sport: add swing bursts
            base += pulse_train(length, 4, 6, 4.0, rng)
        series[v] = base
    return series


def _dodger_profile(label_peaks: list[tuple[float, float, float]], rng: np.random.Generator, length: int) -> np.ndarray:
    """Positive traffic-count profile with day-to-day variation.

    Peak positions drift and heights scale per instance (weather, events),
    so same-class days are similar in shape but never near-duplicates.
    """
    day_scale = rng.uniform(0.75, 1.25)
    jittered = [
        (
            position + rng.normal(0.0, 0.02),
            width * rng.uniform(0.85, 1.15),
            height * day_scale * rng.uniform(0.85, 1.15),
        )
        for position, width, height in label_peaks
    ]
    profile = daily_profile(length, jittered, base=12.0 * rng.uniform(0.8, 1.2))
    noisy = profile + rng.normal(0.0, 1.5, size=length)
    return np.maximum(noisy, 0.0)


def _dodger_loop_day(label: int, rng: np.random.Generator, length: int, n_variables: int) -> np.ndarray:
    """Traffic counts; the seven classes are days of the week."""
    weekday = label < 5
    morning = 0.28 + 0.01 * label
    evening = 0.72 - 0.008 * label
    peaks = [
        (morning, 0.05, 28.0 if weekday else 10.0),
        (evening, 0.06, 24.0 if weekday else 14.0 + 2.0 * (label - 5)),
        (0.5, 0.2, 6.0 + label),
    ]
    return _dodger_profile(peaks, rng, length)[None, :]


def _dodger_loop_game(label: int, rng: np.random.Generator, length: int, n_variables: int) -> np.ndarray:
    """Game days add a pre-game spike on top of the normal profile."""
    peaks = [(0.3, 0.05, 25.0), (0.7, 0.06, 22.0)]
    if label == 1:
        peaks.append((0.55, 0.03, 30.0))
    return _dodger_profile(peaks, rng, length)[None, :]


def _dodger_loop_weekend(label: int, rng: np.random.Generator, length: int, n_variables: int) -> np.ndarray:
    """Weekends (minority class) lack the weekday commuter peaks."""
    if label == 0:  # weekday
        peaks = [(0.3, 0.05, 27.0), (0.7, 0.06, 23.0)]
    else:  # weekend
        peaks = [(0.5, 0.15, 15.0)]
    return _dodger_profile(peaks, rng, length)[None, :]


def _house_twenty(label: int, rng: np.random.Generator, length: int, n_variables: int) -> np.ndarray:
    """Household electricity: appliance on/off pulses over a small base."""
    n_pulses = int((6 if label == 0 else 14) * rng.uniform(0.8, 1.2))
    level = (2200.0 if label == 0 else 900.0) * rng.uniform(0.8, 1.2)
    width = max(length // 40, 2)
    series = pulse_train(
        length, n_pulses, width, level, rng, base=60.0, jitter=0.3
    )
    series += rng.normal(0.0, 12.0, size=length)
    return np.maximum(series, 0.0)[None, :]


def _lsst(label: int, rng: np.random.Generator, length: int, n_variables: int) -> np.ndarray:
    """Astronomical transients: class-dependent rise/decay per passband."""
    center = length * (0.25 + 0.04 * (label % 5)) + rng.normal(0.0, 1.5)
    rise = 1.0 + 0.35 * (label % 4)
    decay = 2.0 + 0.8 * (label % 7)
    series = np.empty((n_variables, length))
    for v in range(n_variables):
        band_gain = 0.5 + 0.25 * v + 0.05 * ((label * (v + 1)) % 6)
        amplitude = (
            band_gain * (40.0 + 12.0 * (label % 3)) * rng.uniform(0.6, 1.4)
        )
        series[v] = transient_burst(length, center, rise, decay, amplitude)
        series[v] += rng.normal(0.0, 2.5, size=length)
    return series


def _pickup_gesture(label: int, rng: np.random.Generator, length: int, n_variables: int) -> np.ndarray:
    """Wiimote z-acceleration gestures: bump trains per gesture class."""
    n_bumps = 1 + label % 5
    direction = 1.0 if label < 5 else -1.0
    series = np.full(length, 2.0 + rng.normal(0.0, 0.1))
    spacing = length / (n_bumps + 1)
    gesture_scale = rng.uniform(0.7, 1.4)
    for bump in range(n_bumps):
        center = spacing * (bump + 1) + rng.normal(0.0, 4.0)
        width = (4.0 + (label % 3)) * rng.uniform(0.8, 1.25)
        series += direction * 1.5 * gesture_scale * np.exp(
            -((np.arange(length) - center) ** 2) / (2.0 * width**2)
        )
    series += rng.normal(0.0, 0.15, size=length)
    return series[None, :]


def _plaid(label: int, rng: np.random.Generator, length: int, n_variables: int) -> np.ndarray:
    """Appliance current: harmonics + on/off envelope per appliance class."""
    t = np.arange(length, dtype=float)
    fundamental = (0.35 + 0.015 * label) * rng.uniform(0.97, 1.03)
    phase = rng.uniform(0.0, 2.0 * np.pi)
    waveform = np.sin(fundamental * t + phase)
    waveform += (0.2 + 0.05 * (label % 4)) * np.sin(3 * (fundamental * t + phase))
    waveform += (0.1 + 0.04 * (label % 3)) * np.sin(5 * (fundamental * t + phase))
    envelope = pulse_train(
        length, 1 + label % 3, max(length // 4, 4), 1.0, rng, jitter=0.1
    )
    series = (6.0 + label) * rng.uniform(0.7, 1.3) * waveform * envelope
    series += rng.normal(0.0, 0.2, size=length)
    return series[None, :]


def _power_cons(label: int, rng: np.random.Generator, length: int, n_variables: int) -> np.ndarray:
    """Household consumption: warm vs cold season daily profiles."""
    household = rng.uniform(0.7, 1.3)  # per-instance household size proxy
    if label == 0:  # warm season: single evening peak
        peaks = [(0.75 + rng.normal(0.0, 0.02), 0.08, 8.0 * household)]
    else:  # cold season: morning and evening heating peaks
        peaks = [
            (0.3 + rng.normal(0.0, 0.02), 0.07, 9.0 * household),
            (0.78 + rng.normal(0.0, 0.02), 0.08, 11.0 * household),
        ]
    series = daily_profile(length, peaks, base=6.0 * household)
    series += rng.normal(0.0, 0.8, size=length)
    return np.maximum(series, 0.0)[None, :]


def _share_price(label: int, rng: np.random.Generator, length: int, n_variables: int) -> np.ndarray:
    """Daily returns; the minority class develops a late upward drift."""
    returns = rng.normal(0.0, 1.0, size=length)
    if label == 1:
        returns += linear_trend(length, slope=0.05, onset=0.4)
    return returns[None, :]


# ---------------------------------------------------------------------------
# Published shapes (height x length, classes, variables) per dataset
# ---------------------------------------------------------------------------

_SPECS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec(
            "BasicMotions", 80, 100, 4, 6, (1, 1, 1, 1), 0.1, False,
            _basic_motions,
        ),
        DatasetSpec(
            "DodgerLoopDay", 158, 288, 7, 1, (1,) * 7, 300.0, False,
            _dodger_loop_day,
        ),
        DatasetSpec(
            "DodgerLoopGame", 158, 288, 2, 1, (1, 1), 300.0, False,
            _dodger_loop_game,
        ),
        DatasetSpec(
            "DodgerLoopWeekend", 158, 288, 2, 1, (5, 2), 300.0, False,
            _dodger_loop_weekend,
        ),
        DatasetSpec(
            "HouseTwenty", 159, 2000, 2, 1, (1, 1), 8.0, True, _house_twenty
        ),
        DatasetSpec(
            "LSST", 4925, 36, 14, 6,
            tuple(30.0 / (1.0 + i) + 1.0 for i in range(14)),
            86400.0, False, _lsst,
        ),
        DatasetSpec(
            "PickupGestureWiimoteZ", 100, 361, 10, 1, (1,) * 10, 0.1, False,
            _pickup_gesture,
        ),
        DatasetSpec(
            "PLAID", 1074, 1345, 11, 1,
            tuple(18.0 / (1.0 + i) + 1.0 for i in range(11)),
            0.033, True, _plaid,
        ),
        DatasetSpec(
            "PowerCons", 360, 144, 2, 1, (1, 1), 3600.0, False, _power_cons
        ),
        DatasetSpec(
            "SharePriceIncrease", 1931, 60, 2, 1, (2.7, 1.0), 86400.0, False,
            _share_price,
        ),
    ]
}

DATASET_NAMES: tuple[str, ...] = tuple(_SPECS)


def dataset_spec(name: str) -> DatasetSpec:
    """Published shape/metadata of one dataset stand-in."""
    try:
        return _SPECS[name]
    except KeyError:
        known = ", ".join(DATASET_NAMES)
        raise RegistryError(f"unknown dataset {name!r}; known: {known}") from None


def generate(name: str, scale: float = 1.0, seed: int = 0) -> TimeSeriesDataset:
    """Generate a UCR stand-in dataset at the given scale.

    ``scale=1`` reproduces the published height and length; smaller values
    shrink the height (and, for 'Wide' sets, the length) proportionally
    while preserving class structure and imbalance.
    """
    spec = dataset_spec(name)
    # crc32, not hash(): str hashing is randomised per process, which
    # would make "same seed" runs irreproducible across invocations.
    rng = np.random.default_rng(seed + zlib.crc32(name.encode()) % 100000)
    height = scaled_count(spec.height, scale, minimum=4 * spec.n_classes)
    length = (
        scaled_count(spec.length, scale, minimum=30)
        if spec.scale_length
        else spec.length
    )
    labels = allocate_labels(height, list(spec.class_weights), rng)
    values = np.empty((height, spec.n_variables, length))
    for i, label in enumerate(labels):
        values[i] = spec.builder(int(label), rng, length, spec.n_variables)
    return TimeSeriesDataset(
        values,
        labels,
        name=name,
        frequency_seconds=spec.frequency_seconds,
    )
