"""Synthetic generators for the paper's twelve evaluation datasets."""

from . import biological, maritime, synthetic, ucr
from .ucr import DATASET_NAMES

__all__ = ["biological", "maritime", "synthetic", "ucr", "DATASET_NAMES"]
