"""The Biological dataset: tumour-cell drug-treatment simulations.

The paper's dataset (Section 5.2) summarises PhysiBoSS tumour simulations
by three time-evolving cell counts — Alive, Necrotic, Apoptotic — over 48
time-points, labelled *interesting* when the treatment constrains tumour
growth (about 20% of 644 runs). The original traces are not redistributable
offline, so this module implements a mechanistic stand-in with the same
phenomenology:

* Alive cells grow logistically towards a carrying capacity.
* A drug is administered in pulses (configurable onset, period, duration,
  concentration — the paper's per-simulation treatment configuration) and
  kills alive cells at a concentration-dependent rate; the kill onset is
  delayed so that, as in the paper, classes only separate after roughly the
  first 30% of the horizon.
* Killed cells accumulate as Necrotic; natural cell death accumulates as
  Apoptotic regardless of the drug.

The *interesting* label applies the kind of expert rule the paper
describes: a run is interesting when the final alive population is pushed
well below its own peak (the tumour shrinks under treatment). Drug
parameters are sampled so that roughly 20% of runs qualify, reproducing the
published 80/20 imbalance.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import TimeSeriesDataset
from .synthetic import scaled_count

__all__ = ["generate", "simulate_treatment", "N_INSTANCES", "N_TIMEPOINTS"]

N_INSTANCES = 644
N_TIMEPOINTS = 48
# Interesting iff the final alive count drops below 30% of its own peak —
# calibrated so ~20% of runs qualify, the published imbalance.
_SHRINKAGE_RULE = 0.3


def simulate_treatment(
    rng: np.random.Generator,
    n_timepoints: int = N_TIMEPOINTS,
    initial_alive: float = 1100.0,
) -> tuple[np.ndarray, int]:
    """Run one tumour simulation; returns ``(series, label)``.

    ``series`` has shape ``(3, n_timepoints)`` with rows Alive, Necrotic,
    Apoptotic. The label is 1 (*interesting*) when the expert shrinkage
    rule fires.
    """
    # Per-simulation treatment configuration (fixed during the run).
    onset = int(rng.integers(n_timepoints // 5, n_timepoints // 2))
    period = int(rng.integers(4, 10))
    duration = int(rng.integers(1, period))
    concentration = float(rng.gamma(shape=1.6, scale=0.5))

    growth_rate = float(rng.uniform(0.03, 0.08))
    capacity = initial_alive * float(rng.uniform(1.3, 2.0))
    natural_death = float(rng.uniform(0.004, 0.010))
    kill_efficiency = 0.09

    alive = initial_alive * float(rng.uniform(0.9, 1.1))
    necrotic = 0.0
    apoptotic = 0.0
    series = np.empty((3, n_timepoints))
    for t in range(n_timepoints):
        drug_active = t >= onset and ((t - onset) % period) < duration
        growth = growth_rate * alive * (1.0 - alive / capacity)
        apoptosis = natural_death * alive
        kill = kill_efficiency * concentration * alive if drug_active else 0.0
        kill = min(kill, alive)  # cannot kill more cells than exist
        alive = max(alive + growth - apoptosis - kill, 0.0)
        necrotic += kill
        apoptotic += apoptosis
        measurement_noise = rng.normal(0.0, 4.0, size=3)
        series[0, t] = max(alive + measurement_noise[0], 0.0)
        series[1, t] = max(necrotic + measurement_noise[1], 0.0)
        series[2, t] = max(apoptotic + measurement_noise[2], 0.0)
    label = int(series[0, -1] < _SHRINKAGE_RULE * series[0].max())
    return series, label


def generate(
    scale: float = 1.0,
    seed: int = 0,
    n_timepoints: int = N_TIMEPOINTS,
) -> TimeSeriesDataset:
    """Generate the Biological dataset (644 x 3 x 48 at ``scale=1``).

    Labels emerge from the simulation dynamics rather than being assigned,
    so their ratio fluctuates mildly around the published 20% interesting.
    """
    rng = np.random.default_rng(seed)
    n_instances = scaled_count(N_INSTANCES, scale, minimum=40)
    values = np.empty((n_instances, 3, n_timepoints))
    labels = np.empty(n_instances, dtype=int)
    for i in range(n_instances):
        values[i], labels[i] = simulate_treatment(rng, n_timepoints)
    if len(np.unique(labels)) < 2:
        # Pathological seed/scale combination: force two minority examples
        # by re-running with stronger drugs until one run qualifies.
        strong = np.random.default_rng(seed + 1)
        index = 0
        while len(np.unique(labels)) < 2 and index < n_instances:
            series, label = simulate_treatment(strong, n_timepoints)
            if label != labels[(index + 1) % n_instances]:
                values[index], labels[index] = series, label
            index += 1
    return TimeSeriesDataset(
        values,
        labels,
        name="Biological",
        frequency_seconds=720.0,  # one measurement per simulated 12 min
    )
