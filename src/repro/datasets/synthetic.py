"""Shared toolkit for the synthetic dataset generators.

The twelve datasets of the paper cannot be downloaded offline, so each is
replaced by a seeded generator matched to its published shape statistics
(see DESIGN.md). The primitives here are the building blocks: oscillations,
square pulse trains (which push the coefficient of variation up, producing
'Unstable' datasets), transient bursts (astronomy-style light curves),
daily-profile bumps (traffic/power data), trends, and label allocation with
a target class-imbalance ratio.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DataError

__all__ = [
    "oscillation",
    "pulse_train",
    "transient_burst",
    "daily_profile",
    "linear_trend",
    "allocate_labels",
    "scaled_count",
]


def scaled_count(base: int, scale: float, minimum: int = 8) -> int:
    """Scale an instance/length count, never dropping below ``minimum``."""
    if scale <= 0:
        raise DataError(f"scale must be positive, got {scale}")
    return max(minimum, int(round(base * scale)))


def oscillation(
    length: int,
    frequency: float,
    amplitude: float = 1.0,
    phase: float = 0.0,
    rng: np.random.Generator | None = None,
    noise: float = 0.0,
) -> np.ndarray:
    """A sinusoid with optional Gaussian noise."""
    t = np.arange(length, dtype=float)
    series = amplitude * np.sin(frequency * t + phase)
    if noise > 0 and rng is not None:
        series = series + rng.normal(0.0, noise, size=length)
    return series


def pulse_train(
    length: int,
    n_pulses: int,
    width: int,
    level: float,
    rng: np.random.Generator,
    base: float = 0.0,
    jitter: float = 0.2,
) -> np.ndarray:
    """Square on/off pulses at random positions (appliance-style signal).

    The large on/off level difference yields the high coefficient of
    variation characteristic of the paper's 'Unstable' datasets.
    """
    series = np.full(length, base, dtype=float)
    if n_pulses < 1 or width < 1:
        return series
    for _ in range(n_pulses):
        start = int(rng.integers(0, max(1, length - width)))
        pulse_level = level * (1.0 + jitter * rng.normal())
        series[start : start + width] += max(pulse_level, 0.0)
    return series


def transient_burst(
    length: int,
    center: float,
    rise: float,
    decay: float,
    amplitude: float,
) -> np.ndarray:
    """Fast-rise / exponential-decay burst (astronomical transient shape)."""
    t = np.arange(length, dtype=float)
    left = np.exp(-((t - center) ** 2) / (2.0 * max(rise, 1e-6) ** 2))
    right = np.exp(-(t - center) / max(decay, 1e-6))
    burst = np.where(t < center, left, right)
    return amplitude * burst


def daily_profile(
    length: int,
    peaks: list[tuple[float, float, float]],
    base: float = 0.0,
) -> np.ndarray:
    """Sum of Gaussian bumps ``(position_fraction, width_fraction, height)``.

    Models daily traffic/consumption profiles: morning and evening peaks at
    class-dependent positions.
    """
    t = np.arange(length, dtype=float)
    series = np.full(length, base, dtype=float)
    for position, width, height in peaks:
        center = position * length
        sigma = max(width * length, 1e-6)
        series += height * np.exp(-((t - center) ** 2) / (2.0 * sigma**2))
    return series


def linear_trend(length: int, slope: float, onset: float = 0.0) -> np.ndarray:
    """A linear drift starting at the ``onset`` fraction of the series."""
    t = np.arange(length, dtype=float)
    start = onset * length
    return slope * np.maximum(t - start, 0.0)


def allocate_labels(
    n_instances: int,
    class_weights: list[float],
    rng: np.random.Generator,
) -> np.ndarray:
    """Shuffled label vector with class proportions ``class_weights``.

    Weights are normalised; every class receives at least two instances
    (so stratified splitting remains possible) as long as the total allows.
    """
    weights = np.asarray(class_weights, dtype=float)
    if weights.ndim != 1 or (weights <= 0).any():
        raise DataError("class_weights must be positive")
    weights = weights / weights.sum()
    counts = np.maximum(np.round(weights * n_instances).astype(int), 2)
    # Repair rounding so counts sum exactly to n_instances.
    while counts.sum() > n_instances:
        counts[counts.argmax()] -= 1
    while counts.sum() < n_instances:
        counts[counts.argmax()] += 1
    labels = np.repeat(np.arange(len(weights)), counts)
    rng.shuffle(labels)
    return labels
