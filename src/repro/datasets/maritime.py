"""The Maritime dataset: vessel position signals around the port of Brest.

The paper (Section 5.3) derives 80,591 instances of 30 one-minute
time-points from the AIS trajectories of nine vessels near Brest, each
point carrying timestamp, ship id, longitude, latitude, speed, heading,
and course over ground (7 variables). A 30-minute interval is positive when
the vessel ends inside the Brest port polygon (15,467 positive vs 64,124
negative).

Offline stand-in: a kinematic simulator. Nine simulated vessels cruise in
the Brest roadstead; a fraction of intervals are *approaches*, where the
vessel steers toward the harbour and decelerates. The label is computed the
same way the paper computes it — a point-in-polygon test of the final
position against a (here, synthetic) port polygon — so positives emerge
from the kinematics, not from a label flag. The default size is scaled to
~1,600 intervals (still 'Large' under the scaled thresholds the benches
use); pass ``scale=50`` for the full published height.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import TimeSeriesDataset
from .synthetic import scaled_count

__all__ = [
    "generate",
    "simulate_interval",
    "point_in_polygon",
    "PORT_POLYGON",
    "N_TIMEPOINTS",
]

N_TIMEPOINTS = 30
_BASE_INSTANCES = 1612  # 80591 / 50: the default laptop-scale height

# A convex polygon standing in for the Brest port area, in (lon, lat)
# degrees around the actual harbour location (-4.49, 48.38).
PORT_POLYGON = np.asarray(
    [
        (-4.52, 48.36),
        (-4.46, 48.36),
        (-4.44, 48.39),
        (-4.48, 48.41),
        (-4.53, 48.40),
    ]
)
_PORT_CENTER = PORT_POLYGON.mean(axis=0)


def point_in_polygon(point: np.ndarray, polygon: np.ndarray) -> bool:
    """Ray-casting point-in-polygon test (works for any simple polygon)."""
    x, y = float(point[0]), float(point[1])
    inside = False
    n = len(polygon)
    for i in range(n):
        x1, y1 = polygon[i]
        x2, y2 = polygon[(i + 1) % n]
        crosses = (y1 > y) != (y2 > y)
        if crosses and x < (x2 - x1) * (y - y1) / (y2 - y1) + x1:
            inside = not inside
    return inside


def simulate_interval(
    rng: np.random.Generator,
    ship_id: int,
    start_minute: float,
    approach: bool,
    n_timepoints: int = N_TIMEPOINTS,
) -> tuple[np.ndarray, int]:
    """Simulate one 30-minute interval; returns ``(series, label)``.

    ``series`` has shape ``(7, n_timepoints)`` with rows (timestamp,
    ship id, longitude, latitude, speed, heading, course over ground).
    """
    # Start somewhere in the roadstead, within ~0.15 degrees of the port.
    radius = rng.uniform(0.04, 0.15)
    angle = rng.uniform(0.0, 2.0 * np.pi)
    position = _PORT_CENTER + radius * np.asarray(
        [np.cos(angle), np.sin(angle)]
    )
    speed_knots = rng.uniform(6.0, 16.0)
    heading = rng.uniform(0.0, 360.0)
    series = np.empty((7, n_timepoints))
    degrees_per_knot_minute = 1.0 / 60.0 / 60.0 * 1.852 / 1.11  # ~deg/min

    for t in range(n_timepoints):
        if approach:
            # Steer toward the port centre and slow down when close.
            to_port = _PORT_CENTER - position
            target_heading = float(
                np.degrees(np.arctan2(to_port[0], to_port[1])) % 360.0
            )
            turn = ((target_heading - heading + 180.0) % 360.0) - 180.0
            heading = (heading + np.clip(turn, -25.0, 25.0)) % 360.0
            distance = float(np.linalg.norm(to_port))
            if distance < 0.05:
                speed_knots = max(speed_knots * 0.88, 1.0)
            # Approaching vessels push harder toward the harbour.
            speed_knots = min(speed_knots * 1.02, 18.0)
        else:
            heading = (heading + rng.normal(0.0, 8.0)) % 360.0
            speed_knots = float(
                np.clip(speed_knots + rng.normal(0.0, 0.5), 2.0, 20.0)
            )
        step = speed_knots * degrees_per_knot_minute * 6.0
        direction = np.asarray(
            [np.sin(np.radians(heading)), np.cos(np.radians(heading))]
        )
        position = position + step * direction + rng.normal(0.0, 2e-4, 2)
        course = (heading + rng.normal(0.0, 3.0)) % 360.0
        series[0, t] = start_minute + t
        series[1, t] = ship_id
        series[2, t] = position[0]
        series[3, t] = position[1]
        series[4, t] = speed_knots
        series[5, t] = heading
        series[6, t] = course
    label = int(point_in_polygon(position, PORT_POLYGON))
    return series, label


def generate(
    scale: float = 1.0,
    seed: int = 0,
    n_timepoints: int = N_TIMEPOINTS,
    n_ships: int = 9,
) -> TimeSeriesDataset:
    """Generate the Maritime dataset (~1,612 x 7 x 30 at ``scale=1``).

    Roughly 19% of intervals are approaches that end inside the port
    polygon, matching the published imbalance; the exact ratio fluctuates
    because labels come from the simulated kinematics.
    """
    rng = np.random.default_rng(seed)
    n_instances = scaled_count(_BASE_INSTANCES, scale, minimum=60)
    values = np.empty((n_instances, 7, n_timepoints))
    labels = np.empty(n_instances, dtype=int)
    for i in range(n_instances):
        ship_id = int(rng.integers(0, n_ships))
        # Approaches overshoot 19% because some fail to arrive in time.
        approach = bool(rng.random() < 0.26)
        values[i], labels[i] = simulate_interval(
            rng, ship_id, start_minute=float(i * n_timepoints), approach=approach
        )
    if len(np.unique(labels)) < 2:
        # Ensure both classes exist even at tiny scales.
        forced = np.random.default_rng(seed + 1)
        while labels[0] == labels[1]:
            values[0], labels[0] = simulate_interval(
                forced, 0, 0.0, approach=labels[1] == 0
            )
    return TimeSeriesDataset(
        values, labels, name="Maritime", frequency_seconds=60.0
    )
