"""Preprocessing utilities: missing values, normalisation, label encoding.

Section 5.1 of the paper fills missing values "with the mean of the last
value before the data gap and the first one after it" — implemented here by
:func:`fill_missing`. Z-normalisation (used internally by TEASER and WEASEL,
and deliberately *disabled* in the paper's online-realistic variants) lives in
:func:`z_normalize`.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DataError
from .dataset import TimeSeriesDataset

__all__ = [
    "fill_missing",
    "fill_missing_array",
    "z_normalize",
    "z_normalize_dataset",
    "LabelEncoder",
]


def fill_missing_array(series: np.ndarray) -> np.ndarray:
    """Fill NaN gaps in a 1-D series with the mean of the bracketing values.

    Edge cases, in order of application:

    - a gap at the *start* is back-filled with the first observed value
      (there is no left bracket to average with);
    - a gap at the *end* is forward-filled with the last observed value;
    - an *all-NaN* series has no observations to extend at all and
      becomes all zeros — callers that need a different sentinel should
      check :meth:`TimeSeriesDataset.has_missing` first;
    - interior gaps take the mean of the two bracketing observations,
      computed as ``0.5*a + 0.5*b`` so two finite values near the float
      limits never overflow to ``inf`` (``(a + b) / 2`` would);
    - an interior gap *longer than half the series* is filled with a
      linear ramp between the brackets instead. The paper's
      constant-mean rule is written for short sensor dropouts; applied
      to a gap that dominates the series it replaces most of the signal
      with one flat plateau, erasing the shape every distance-based
      classifier keys on. The ramp keeps the fill deterministic and
      bracket-bounded while preserving the series' trend. Ramp values
      are convex combinations ``(1-t)*a + t*b``, so they stay within
      ``[min(a, b), max(a, b)]`` and never overflow.

    The output therefore contains a non-finite value only where the
    input already contained one that was not NaN (an explicit ``inf``).
    """
    series = np.asarray(series, dtype=float).copy()
    missing = np.isnan(series)
    if not missing.any():
        return series
    observed = np.flatnonzero(~missing)
    if observed.size == 0:
        return np.zeros_like(series)
    # Leading and trailing gaps clamp to the nearest observation.
    series[: observed[0]] = series[observed[0]]
    series[observed[-1] + 1 :] = series[observed[-1]]
    long_gap = series.size // 2
    for start, end in zip(observed[:-1], observed[1:]):
        gap = end - start - 1
        if gap <= 0:
            continue
        if gap > long_gap:
            # A dominating gap: linear ramp, not a constant plateau.
            fractions = np.arange(1, gap + 1, dtype=float) / (gap + 1)
            series[start + 1 : end] = (
                (1.0 - fractions) * series[start]
                + fractions * series[end]
            )
        else:
            # Short gaps use the paper's bracketing mean, halving each
            # bracket *before* adding: 0.5*(a + b) overflows to inf for
            # a, b near ±float64 max even though the mean is
            # representable.
            series[start + 1 : end] = (
                0.5 * series[start] + 0.5 * series[end]
            )
    return series


def fill_missing(dataset: TimeSeriesDataset) -> TimeSeriesDataset:
    """Return a copy of ``dataset`` with every NaN gap filled.

    Applies :func:`fill_missing_array` independently per instance and
    variable, as in Section 5.1 of the paper.
    """
    if not dataset.has_missing():
        return dataset
    values = dataset.values.copy()
    for i in range(dataset.n_instances):
        for v in range(dataset.n_variables):
            values[i, v] = fill_missing_array(values[i, v])
    return TimeSeriesDataset(
        values,
        dataset.labels,
        name=dataset.name,
        frequency_seconds=dataset.frequency_seconds,
    )


def z_normalize(series: np.ndarray, epsilon: float = 1e-8) -> np.ndarray:
    """Z-normalise a series along its last axis.

    A (near-)constant series maps to zeros rather than exploding. The paper
    points out this step is unrealistic online since it requires the full
    series; the framework therefore exposes it as an explicit, optional step.
    """
    series = np.asarray(series, dtype=float)
    mean = series.mean(axis=-1, keepdims=True)
    std = series.std(axis=-1, keepdims=True)
    return (series - mean) / np.where(std < epsilon, 1.0, std)


def z_normalize_dataset(dataset: TimeSeriesDataset) -> TimeSeriesDataset:
    """Return a copy of ``dataset`` with each variable of each instance
    z-normalised over its own time axis."""
    return TimeSeriesDataset(
        z_normalize(dataset.values),
        dataset.labels,
        name=dataset.name,
        frequency_seconds=dataset.frequency_seconds,
    )


class LabelEncoder:
    """Map arbitrary integer labels to the contiguous range ``0..K-1``.

    Several substrates (softmax regression, boosting) require contiguous
    class indices; this encoder converts to and from the original labels.
    """

    def __init__(self) -> None:
        self.classes_: np.ndarray | None = None

    def fit(self, labels: np.ndarray) -> "LabelEncoder":
        """Learn the distinct labels present in ``labels``."""
        self.classes_ = np.unique(np.asarray(labels))
        return self

    def transform(self, labels: np.ndarray) -> np.ndarray:
        """Convert original labels to contiguous indices."""
        if self.classes_ is None:
            raise DataError("LabelEncoder used before fit")
        labels = np.asarray(labels)
        indices = np.searchsorted(self.classes_, labels)
        valid = (indices < len(self.classes_)) & (
            self.classes_[np.minimum(indices, len(self.classes_) - 1)] == labels
        )
        if not valid.all():
            unknown = np.unique(labels[~valid])
            raise DataError(f"unknown labels: {unknown.tolist()}")
        return indices

    def fit_transform(self, labels: np.ndarray) -> np.ndarray:
        """Fit on ``labels`` and return their contiguous indices."""
        return self.fit(labels).transform(labels)

    def inverse_transform(self, indices: np.ndarray) -> np.ndarray:
        """Convert contiguous indices back to the original labels."""
        if self.classes_ is None:
            raise DataError("LabelEncoder used before fit")
        return self.classes_[np.asarray(indices)]
