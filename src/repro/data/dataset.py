"""The :class:`TimeSeriesDataset` container used across the framework.

Every algorithm in the framework — early classifiers, full time-series
classifiers, and the evaluation harness — consumes time-series through this
container. The internal layout is a dense numpy array of shape
``(n_instances, n_variables, length)`` plus an integer label vector, which
matches the paper's setting of equal-length series (Section 5 fills missing
values before evaluation, mirrored here by
:func:`repro.data.preprocessing.fill_missing`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from ..exceptions import DataError

__all__ = ["TimeSeriesDataset"]


def _as_3d(values: np.ndarray | Sequence) -> np.ndarray:
    """Coerce input values into the canonical 3-D float layout."""
    array = np.asarray(values, dtype=float)
    if array.ndim == 2:
        # Univariate shorthand: (n_instances, length) -> one variable.
        array = array[:, np.newaxis, :]
    if array.ndim != 3:
        raise DataError(
            f"time-series values must be 2-D or 3-D, got shape {array.shape}"
        )
    return array


@dataclass(frozen=True)
class TimeSeriesDataset:
    """A labelled collection of equal-length (possibly multivariate) series.

    Parameters
    ----------
    values:
        Array of shape ``(n_instances, n_variables, length)``. A 2-D array
        ``(n_instances, length)`` is accepted as univariate shorthand.
    labels:
        Integer class label per instance.
    name:
        Human-readable dataset name (used in reports and benchmarks).
    frequency_seconds:
        Sampling period of the series in seconds; drives the online
        feasibility analysis of the paper's Figure 13. ``None`` when unknown.
    """

    values: np.ndarray
    labels: np.ndarray
    name: str = "unnamed"
    frequency_seconds: float | None = None
    _classes: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        values = _as_3d(self.values)
        labels = np.asarray(self.labels)
        if labels.ndim != 1:
            raise DataError(f"labels must be 1-D, got shape {labels.shape}")
        if len(labels) != values.shape[0]:
            raise DataError(
                f"{values.shape[0]} instances but {len(labels)} labels"
            )
        if values.shape[0] == 0:
            raise DataError("dataset must contain at least one instance")
        if values.shape[2] == 0:
            raise DataError("time-series length must be positive")
        if not np.issubdtype(labels.dtype, np.integer):
            as_int = labels.astype(int)
            if not np.array_equal(as_int, labels.astype(float)):
                raise DataError("labels must be integers (class indices)")
            labels = as_int
        # Bypass the frozen guard once to store normalised arrays.
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "labels", labels)
        object.__setattr__(self, "_classes", np.unique(labels))

    # ------------------------------------------------------------------
    # Shape accessors
    # ------------------------------------------------------------------
    @property
    def n_instances(self) -> int:
        """Number of time-series instances (the paper's dataset *height*)."""
        return self.values.shape[0]

    @property
    def n_variables(self) -> int:
        """Number of variables per instance (1 for univariate data)."""
        return self.values.shape[1]

    @property
    def length(self) -> int:
        """Number of time-points per series (the paper's dataset *length*)."""
        return self.values.shape[2]

    @property
    def classes(self) -> np.ndarray:
        """Sorted array of the distinct class labels present."""
        return self._classes

    @property
    def n_classes(self) -> int:
        """Number of distinct class labels."""
        return len(self._classes)

    @property
    def is_univariate(self) -> bool:
        """Whether the dataset has exactly one variable."""
        return self.n_variables == 1

    def __len__(self) -> int:
        return self.n_instances

    def __iter__(self) -> Iterator[tuple[np.ndarray, int]]:
        """Iterate over ``(series, label)`` pairs, series of shape (V, L)."""
        for i in range(self.n_instances):
            yield self.values[i], int(self.labels[i])

    # ------------------------------------------------------------------
    # Derived datasets
    # ------------------------------------------------------------------
    def select(self, indices: np.ndarray | Sequence[int]) -> "TimeSeriesDataset":
        """Return the sub-dataset at the given instance indices."""
        indices = np.asarray(indices)
        return TimeSeriesDataset(
            self.values[indices],
            self.labels[indices],
            name=self.name,
            frequency_seconds=self.frequency_seconds,
        )

    def truncate(self, prefix_length: int) -> "TimeSeriesDataset":
        """Return the dataset restricted to the first ``prefix_length`` points.

        This is the elementary operation behind every prefix-based method in
        the paper (ECEC, TEASER, STRUT, ...).
        """
        if not 1 <= prefix_length <= self.length:
            raise DataError(
                f"prefix_length must be in [1, {self.length}], "
                f"got {prefix_length}"
            )
        return TimeSeriesDataset(
            self.values[:, :, :prefix_length],
            self.labels,
            name=self.name,
            frequency_seconds=self.frequency_seconds,
        )

    def variable(self, index: int) -> "TimeSeriesDataset":
        """Return the univariate dataset for a single variable.

        Used by the voting wrapper (Section 6.1) that runs one univariate
        classifier per variable of a multivariate dataset.
        """
        if not 0 <= index < self.n_variables:
            raise DataError(
                f"variable index must be in [0, {self.n_variables}), "
                f"got {index}"
            )
        return TimeSeriesDataset(
            self.values[:, index : index + 1, :],
            self.labels,
            name=f"{self.name}[var={index}]",
            frequency_seconds=self.frequency_seconds,
        )

    def with_labels(self, labels: np.ndarray) -> "TimeSeriesDataset":
        """Return a copy of this dataset with replacement labels."""
        return TimeSeriesDataset(
            self.values,
            labels,
            name=self.name,
            frequency_seconds=self.frequency_seconds,
        )

    def concatenate(self, other: "TimeSeriesDataset") -> "TimeSeriesDataset":
        """Stack another dataset's instances below this one's."""
        if other.n_variables != self.n_variables:
            raise DataError("cannot concatenate: variable counts differ")
        if other.length != self.length:
            raise DataError("cannot concatenate: lengths differ")
        return TimeSeriesDataset(
            np.concatenate([self.values, other.values], axis=0),
            np.concatenate([self.labels, other.labels]),
            name=self.name,
            frequency_seconds=self.frequency_seconds,
        )

    # ------------------------------------------------------------------
    # Statistics used by the Table 3 categorisation
    # ------------------------------------------------------------------
    def class_counts(self) -> dict[int, int]:
        """Return a mapping of class label to number of instances."""
        labels, counts = np.unique(self.labels, return_counts=True)
        return {int(label): int(count) for label, count in zip(labels, counts)}

    def class_imbalance_ratio(self) -> float:
        """Most-populated over least-populated class size (paper's CIR)."""
        counts = np.asarray(list(self.class_counts().values()), dtype=float)
        return float(counts.max() / counts.min())

    def coefficient_of_variation(self) -> float:
        """Standard deviation over absolute mean of all values (paper's CoV)."""
        flat = self.values[np.isfinite(self.values)]
        mean = flat.mean()
        if mean == 0:
            return float("inf")
        return float(flat.std() / abs(mean))

    def has_missing(self) -> bool:
        """Whether any value is NaN."""
        return bool(np.isnan(self.values).any())
