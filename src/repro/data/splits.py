"""Train/test splitting and stratified k-fold cross-validation.

The paper evaluates every algorithm with *stratified random sampling 5-fold
cross-validation* (Section 6.1); :func:`stratified_k_fold` implements exactly
that. A stratified holdout split (:func:`train_test_split`) is used inside
algorithms that need an internal validation set (e.g. STRUT).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..exceptions import DataError
from .dataset import TimeSeriesDataset

__all__ = ["stratified_k_fold", "train_test_split", "stratified_indices"]


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def stratified_indices(
    labels: np.ndarray,
    n_folds: int,
    seed: int | np.random.Generator | None = 0,
) -> list[np.ndarray]:
    """Partition instance indices into ``n_folds`` class-stratified folds.

    Each class's indices are shuffled and dealt round-robin across folds, so
    every fold's class distribution matches the full dataset's as closely as
    integer counts allow.
    """
    labels = np.asarray(labels)
    if n_folds < 2:
        raise DataError(f"n_folds must be >= 2, got {n_folds}")
    if n_folds > len(labels):
        raise DataError(
            f"n_folds={n_folds} exceeds number of instances {len(labels)}"
        )
    rng = _rng(seed)
    folds: list[list[int]] = [[] for _ in range(n_folds)]
    # Deal each class independently so folds stay stratified; rotate the
    # starting fold per class to even out fold sizes.
    offset = 0
    for label in np.unique(labels):
        class_indices = np.flatnonzero(labels == label)
        rng.shuffle(class_indices)
        for position, index in enumerate(class_indices):
            folds[(position + offset) % n_folds].append(int(index))
        offset += len(class_indices) % n_folds
    return [np.asarray(sorted(fold), dtype=int) for fold in folds]


def stratified_k_fold(
    dataset: TimeSeriesDataset,
    n_folds: int = 5,
    seed: int | np.random.Generator | None = 0,
) -> Iterator[tuple[TimeSeriesDataset, TimeSeriesDataset]]:
    """Yield ``(train, test)`` dataset pairs for stratified k-fold CV."""
    folds = stratified_indices(dataset.labels, n_folds, seed)
    all_indices = np.arange(dataset.n_instances)
    for fold in folds:
        test_mask = np.zeros(dataset.n_instances, dtype=bool)
        test_mask[fold] = True
        yield dataset.select(all_indices[~test_mask]), dataset.select(fold)


def train_test_split(
    dataset: TimeSeriesDataset,
    test_fraction: float = 0.25,
    seed: int | np.random.Generator | None = 0,
) -> tuple[TimeSeriesDataset, TimeSeriesDataset]:
    """Stratified holdout split into ``(train, test)``.

    Guarantees at least one instance of every class in each side whenever the
    class has at least two instances; singleton classes go to the training
    side so the model can at least learn them.
    """
    if not 0.0 < test_fraction < 1.0:
        raise DataError(
            f"test_fraction must be in (0, 1), got {test_fraction}"
        )
    rng = _rng(seed)
    labels = dataset.labels
    train_indices: list[int] = []
    test_indices: list[int] = []
    for label in np.unique(labels):
        class_indices = np.flatnonzero(labels == label)
        rng.shuffle(class_indices)
        if len(class_indices) == 1:
            train_indices.extend(class_indices.tolist())
            continue
        n_test = int(round(test_fraction * len(class_indices)))
        n_test = min(max(n_test, 1), len(class_indices) - 1)
        test_indices.extend(class_indices[:n_test].tolist())
        train_indices.extend(class_indices[n_test:].tolist())
    return dataset.select(sorted(train_indices)), dataset.select(
        sorted(test_indices)
    )
