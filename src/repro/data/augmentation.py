"""Time-series data augmentation.

Complements :mod:`repro.etsc.tsmote`: where T-SMOTE synthesises minority
instances by interpolation, these transforms perturb existing instances —
the standard toolkit for making small training sets (the norm in the UCR
archive) go further. All functions are dataset-in/dataset-out, label-
preserving, and seeded.

* :func:`jitter` — additive Gaussian noise scaled to each variable's std;
* :func:`scale` — per-instance random amplitude scaling;
* :func:`time_warp` — smooth random re-timing via a monotone warp of the
  time axis (linear interpolation back onto the original grid);
* :func:`window_slice` — random crop re-stretched to the original length;
* :func:`augment` — concatenate the original dataset with ``n_rounds``
  augmented copies drawn from any mix of the above.

.. warning::
   Augmented copies are *near-duplicates* of their sources. Distance-based
   early classifiers (ECTS and other 1-NN methods) treat a near-twin as a
   stable nearest neighbour from the very first prefix, which collapses
   their Minimum Prediction Lengths and makes them commit far too early.
   Use augmentation with feature-based learners (boosting, WEASEL,
   MiniROCKET, MLSTM-FCN); for imbalance specifically, prefer
   :func:`repro.etsc.temporal_smote`.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from .dataset import TimeSeriesDataset

__all__ = ["jitter", "scale", "time_warp", "window_slice", "augment"]


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def jitter(
    dataset: TimeSeriesDataset,
    strength: float = 0.05,
    seed: int | np.random.Generator | None = 0,
) -> TimeSeriesDataset:
    """Add Gaussian noise of ``strength`` x per-variable std."""
    if strength < 0:
        raise ConfigurationError(f"strength must be >= 0, got {strength}")
    rng = _rng(seed)
    stds = dataset.values.std(axis=(0, 2), keepdims=True)
    stds = np.where(stds < 1e-12, 1.0, stds)
    noise = rng.normal(0.0, 1.0, dataset.values.shape) * strength * stds
    return TimeSeriesDataset(
        dataset.values + noise,
        dataset.labels,
        name=dataset.name,
        frequency_seconds=dataset.frequency_seconds,
    )


def scale(
    dataset: TimeSeriesDataset,
    low: float = 0.8,
    high: float = 1.2,
    seed: int | np.random.Generator | None = 0,
) -> TimeSeriesDataset:
    """Multiply each instance by a random factor in ``[low, high]``."""
    if not 0 < low <= high:
        raise ConfigurationError(f"need 0 < low <= high, got [{low}, {high}]")
    rng = _rng(seed)
    factors = rng.uniform(low, high, size=(dataset.n_instances, 1, 1))
    return TimeSeriesDataset(
        dataset.values * factors,
        dataset.labels,
        name=dataset.name,
        frequency_seconds=dataset.frequency_seconds,
    )


def _monotone_warp(length: int, knots: int, strength: float, rng: np.random.Generator) -> np.ndarray:
    """A smooth monotone map of [0, L-1] onto itself."""
    anchors = np.linspace(0.0, length - 1.0, knots)
    perturbed = anchors + rng.normal(0.0, strength * length / knots, knots)
    perturbed[0], perturbed[-1] = 0.0, length - 1.0
    perturbed = np.maximum.accumulate(perturbed)  # enforce monotonicity
    return np.interp(np.arange(length), anchors, perturbed)


def time_warp(
    dataset: TimeSeriesDataset,
    strength: float = 0.2,
    knots: int = 4,
    seed: int | np.random.Generator | None = 0,
) -> TimeSeriesDataset:
    """Smoothly re-time each instance (classic magnitude-preserving warp)."""
    if strength < 0:
        raise ConfigurationError(f"strength must be >= 0, got {strength}")
    if knots < 2:
        raise ConfigurationError(f"knots must be >= 2, got {knots}")
    rng = _rng(seed)
    length = dataset.length
    grid = np.arange(length, dtype=float)
    warped = np.empty_like(dataset.values)
    for i in range(dataset.n_instances):
        mapping = _monotone_warp(length, knots, strength, rng)
        for v in range(dataset.n_variables):
            warped[i, v] = np.interp(mapping, grid, dataset.values[i, v])
    return TimeSeriesDataset(
        warped,
        dataset.labels,
        name=dataset.name,
        frequency_seconds=dataset.frequency_seconds,
    )


def window_slice(
    dataset: TimeSeriesDataset,
    fraction: float = 0.8,
    seed: int | np.random.Generator | None = 0,
) -> TimeSeriesDataset:
    """Crop a random window of ``fraction`` x L and stretch it back to L."""
    if not 0.0 < fraction <= 1.0:
        raise ConfigurationError(
            f"fraction must be in (0, 1], got {fraction}"
        )
    rng = _rng(seed)
    length = dataset.length
    window = max(2, int(round(fraction * length)))
    grid = np.arange(length, dtype=float)
    sliced = np.empty_like(dataset.values)
    for i in range(dataset.n_instances):
        start = int(rng.integers(0, length - window + 1))
        source = np.arange(start, start + window, dtype=float)
        target = np.linspace(start, start + window - 1, length)
        for v in range(dataset.n_variables):
            sliced[i, v] = np.interp(
                target, source, dataset.values[i, v, start : start + window]
            )
    return TimeSeriesDataset(
        sliced,
        dataset.labels,
        name=dataset.name,
        frequency_seconds=dataset.frequency_seconds,
    )


def augment(
    dataset: TimeSeriesDataset,
    transforms: Sequence[Callable[..., TimeSeriesDataset]] = (jitter, scale),
    n_rounds: int = 1,
    seed: int = 0,
) -> TimeSeriesDataset:
    """Original + ``n_rounds`` augmented copies per transform.

    Each round applies every transform (with a distinct seed) to the
    original dataset and stacks the results below it, multiplying the
    instance count by ``1 + n_rounds * len(transforms)``.
    """
    if n_rounds < 1:
        raise ConfigurationError(f"n_rounds must be >= 1, got {n_rounds}")
    if not transforms:
        raise ConfigurationError("at least one transform is required")
    combined = dataset
    offset = 0
    for round_index in range(n_rounds):
        for transform in transforms:
            augmented = transform(dataset, seed=seed + offset)
            combined = combined.concatenate(augmented)
            offset += 1
    return combined
