"""Dataset file I/O in the formats the paper's framework accepts.

Section 5.5: "measurements must be in .csv file format, where each row
constitutes a time-series example of a single variable, and the first value
of each row, the class label. Files of type .arff are also supported."

* :func:`load_csv` / :func:`save_csv` — one file per variable, first column
  is the class label, remaining columns the time-points. Empty cells encode
  missing values (NaN).
* :func:`load_multivariate_csv` — stitch several per-variable CSV files into
  one multivariate dataset (labels must agree across files).
* :func:`load_arff` / :func:`save_arff` — a pragmatic subset of ARFF:
  numeric attributes for the time-points plus a nominal/numeric class
  attribute in the final position.

Both loaders accept ``strict=False`` (lenient mode): malformed data rows
are skipped — counted and reported through one ``repro.data.io`` logger
warning per file — instead of raising :class:`DataFormatError`. Rows
that are merely *shorter* than the file's series length (a truncated
sensor log) are not malformed in lenient mode: they are kept and padded
with a NaN tail to the common length, counted through their own
``repro.data.io`` warning, and the NaNs flow into the Section 5.1 gap
filling like any other missing values. Header errors, unreadable files,
and files with *no* valid rows still raise; lenient mode only tolerates
bad rows inside an otherwise usable file.
"""

from __future__ import annotations

import os
import re
from typing import Sequence

import numpy as np

from ..exceptions import DataFormatError
from ..obs.logging import get_logger
from .dataset import TimeSeriesDataset

_logger = get_logger("data.io")

__all__ = [
    "load_csv",
    "save_csv",
    "load_multivariate_csv",
    "load_arff",
    "save_arff",
]


def _parse_cell(cell: str) -> float:
    cell = cell.strip()
    if cell in ("", "?", "NaN", "nan"):
        return float("nan")
    try:
        return float(cell)
    except ValueError as error:
        raise DataFormatError(f"cannot parse value {cell!r}") from error


def _report_skipped(path, skipped: list[str]) -> None:
    """One counted warning per file for lenient-mode row skips."""
    if skipped:
        _logger.warning(
            "%s: skipped %d malformed row(s) in lenient mode (first: %s)",
            path,
            len(skipped),
            skipped[0],
        )


def _report_padded(path, padded: list[str]) -> None:
    """One counted warning per file for lenient-mode NaN-tail padding."""
    if padded:
        _logger.warning(
            "%s: padded %d short row(s) with NaN tails in lenient mode "
            "(first: %s)",
            path,
            len(padded),
            padded[0],
        )


def load_csv(
    path: str | os.PathLike,
    name: str | None = None,
    frequency_seconds: float | None = None,
    strict: bool = True,
) -> TimeSeriesDataset:
    """Load a univariate dataset from the paper's CSV layout.

    Each row is one instance: ``label, x_0, x_1, ..., x_{L-1}``. All rows
    must have the same length; blank lines are skipped. With
    ``strict=False`` malformed rows (bad cells, non-integer labels) are
    skipped with a counted warning instead of raising, and
    variable-length rows are *kept*: every row shorter than the file's
    longest is padded with a NaN tail (a truncated recording is missing
    data, not garbage) and counted through its own warning.
    """
    rows: list[list[float]] = []
    labels: list[int] = []
    skipped: list[str] = []
    padded: list[str] = []

    def bad_row(message: str) -> None:
        if strict:
            raise DataFormatError(message)
        skipped.append(message)

    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            cells = line.split(",")
            if len(cells) < 2:
                bad_row(
                    f"{path}:{line_number}: row needs a label and at least "
                    "one time-point"
                )
                continue
            try:
                label_value = _parse_cell(cells[0])
                values = [_parse_cell(cell) for cell in cells[1:]]
            except DataFormatError as error:
                bad_row(f"{path}:{line_number}: {error}")
                continue
            if np.isnan(label_value) or label_value != int(label_value):
                bad_row(
                    f"{path}:{line_number}: label {cells[0]!r} is not an "
                    "integer"
                )
                continue
            labels.append(int(label_value))
            rows.append(values)
    if not rows:
        raise DataFormatError(f"{path}: no data rows")
    lengths = {len(row) for row in rows}
    if len(lengths) != 1:
        if strict:
            raise DataFormatError(
                f"{path}: rows have inconsistent lengths {sorted(lengths)}"
            )
        target = max(lengths)
        for index, row in enumerate(rows):
            if len(row) < target:
                padded.append(
                    f"row {index + 1}: length {len(row)} -> {target}"
                )
                row.extend([float("nan")] * (target - len(row)))
    _report_skipped(path, skipped)
    _report_padded(path, padded)
    return TimeSeriesDataset(
        np.asarray(rows, dtype=float),
        np.asarray(labels, dtype=int),
        name=name or os.path.splitext(os.path.basename(path))[0],
        frequency_seconds=frequency_seconds,
    )


def save_csv(dataset: TimeSeriesDataset, path: str | os.PathLike, variable: int = 0) -> None:
    """Write one variable of ``dataset`` in the paper's CSV layout."""
    values = dataset.values[:, variable, :]
    with open(path, "w", encoding="utf-8") as handle:
        for label, row in zip(dataset.labels, values):
            cells = [str(int(label))]
            cells.extend("" if np.isnan(x) else repr(float(x)) for x in row)
            handle.write(",".join(cells) + "\n")


def load_multivariate_csv(
    paths: Sequence[str | os.PathLike],
    name: str = "multivariate",
    frequency_seconds: float | None = None,
) -> TimeSeriesDataset:
    """Combine per-variable CSV files into one multivariate dataset.

    All files must contain the same number of rows, the same series length,
    and identical label columns.
    """
    if not paths:
        raise DataFormatError("at least one CSV path is required")
    parts = [load_csv(path) for path in paths]
    first = parts[0]
    for part, path in zip(parts[1:], list(paths)[1:]):
        if part.n_instances != first.n_instances or part.length != first.length:
            raise DataFormatError(f"{path}: shape differs from first file")
        if not np.array_equal(part.labels, first.labels):
            raise DataFormatError(f"{path}: labels differ from first file")
    values = np.concatenate([part.values for part in parts], axis=1)
    return TimeSeriesDataset(
        values, first.labels, name=name, frequency_seconds=frequency_seconds
    )


_ARFF_ATTRIBUTE = re.compile(r"@attribute\s+(\S+)\s+(.+)", re.IGNORECASE)


def load_arff(
    path: str | os.PathLike,
    name: str | None = None,
    frequency_seconds: float | None = None,
    strict: bool = True,
) -> TimeSeriesDataset:
    """Load a univariate dataset from an ARFF file.

    Supports numeric time-point attributes followed by one class attribute
    (nominal ``{a,b,...}`` or numeric) as the last column — the layout used
    by the UEA & UCR archive exports. With ``strict=False`` malformed data
    rows (unknown class value, unparsable cells, *more* cells than
    attributes) are skipped with a counted warning; rows with *fewer*
    cells — a truncated recording whose last cell is still the class —
    are kept, their missing time-points padded with a NaN tail and
    counted through their own warning. Header problems still raise.
    """
    attributes: list[tuple[str, str]] = []
    data_rows: list[str] = []
    in_data = False
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("%"):
                continue
            if in_data:
                data_rows.append(line)
                continue
            lowered = line.lower()
            if lowered.startswith("@data"):
                in_data = True
            elif lowered.startswith("@attribute"):
                match = _ARFF_ATTRIBUTE.match(line)
                if not match:
                    raise DataFormatError(f"{path}: bad attribute line {line!r}")
                attributes.append((match.group(1), match.group(2).strip()))
    if not attributes:
        raise DataFormatError(f"{path}: no @attribute declarations")
    if not data_rows:
        raise DataFormatError(f"{path}: no data rows")

    class_spec = attributes[-1][1]
    nominal_values: list[str] | None = None
    if class_spec.startswith("{") and class_spec.endswith("}"):
        nominal_values = [v.strip() for v in class_spec[1:-1].split(",")]

    rows: list[list[float]] = []
    labels: list[int] = []
    skipped: list[str] = []
    padded: list[str] = []

    def bad_row(message: str) -> None:
        if strict:
            raise DataFormatError(message)
        skipped.append(message)

    for line_number, line in enumerate(data_rows, start=1):
        cells = [cell.strip() for cell in line.split(",")]
        if len(cells) != len(attributes):
            # Lenient mode keeps short rows: the final cell is still the
            # class, the absent time-points become a NaN tail. Over-long
            # rows are ambiguous (which cell is the class?) and are
            # still skipped.
            if strict or len(cells) > len(attributes) or len(cells) < 2:
                bad_row(
                    f"{path}: data row {line_number} has {len(cells)} "
                    f"cells, expected {len(attributes)}"
                )
                continue
            padded.append(
                f"data row {line_number}: {len(cells) - 1} point(s) -> "
                f"{len(attributes) - 1}"
            )
            cells = (
                cells[:-1]
                + [""] * (len(attributes) - len(cells))
                + cells[-1:]
            )
        *point_cells, class_cell = cells
        if nominal_values is not None:
            if class_cell not in nominal_values:
                bad_row(f"{path}: unknown class value {class_cell!r}")
                continue
            label = nominal_values.index(class_cell)
        else:
            try:
                label = int(float(class_cell))
            except ValueError:
                bad_row(
                    f"{path}: data row {line_number} has non-numeric "
                    f"class {class_cell!r}"
                )
                continue
        try:
            values = [_parse_cell(cell) for cell in point_cells]
        except DataFormatError as error:
            bad_row(f"{path}: data row {line_number}: {error}")
            continue
        labels.append(label)
        rows.append(values)
    if not rows:
        raise DataFormatError(f"{path}: no valid data rows")
    _report_skipped(path, skipped)
    _report_padded(path, padded)
    return TimeSeriesDataset(
        np.asarray(rows, dtype=float),
        np.asarray(labels, dtype=int),
        name=name or os.path.splitext(os.path.basename(path))[0],
        frequency_seconds=frequency_seconds,
    )


def save_arff(
    dataset: TimeSeriesDataset, path: str | os.PathLike, variable: int = 0
) -> None:
    """Write one variable of ``dataset`` as an ARFF file with a nominal class."""
    values = dataset.values[:, variable, :]
    class_values = ",".join(str(int(c)) for c in dataset.classes)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"@relation {dataset.name}\n")
        for t in range(dataset.length):
            handle.write(f"@attribute t{t} numeric\n")
        handle.write(f"@attribute class {{{class_values}}}\n")
        handle.write("@data\n")
        for label, row in zip(dataset.labels, values):
            cells = ["?" if np.isnan(x) else repr(float(x)) for x in row]
            cells.append(str(int(label)))
            handle.write(",".join(cells) + "\n")
