"""Data containers, preprocessing, augmentation, splitting, and file I/O."""

from .augmentation import augment, jitter, scale, time_warp, window_slice
from .dataset import TimeSeriesDataset
from .io import (
    load_arff,
    load_csv,
    load_multivariate_csv,
    save_arff,
    save_csv,
)
from .preprocessing import (
    LabelEncoder,
    fill_missing,
    fill_missing_array,
    z_normalize,
    z_normalize_dataset,
)
from .splits import stratified_indices, stratified_k_fold, train_test_split

__all__ = [
    "TimeSeriesDataset",
    "augment",
    "jitter",
    "scale",
    "time_warp",
    "window_slice",
    "LabelEncoder",
    "fill_missing",
    "fill_missing_array",
    "z_normalize",
    "z_normalize_dataset",
    "stratified_indices",
    "stratified_k_fold",
    "train_test_split",
    "load_csv",
    "save_csv",
    "load_multivariate_csv",
    "load_arff",
    "save_arff",
]
