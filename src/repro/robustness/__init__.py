"""Degraded-data robustness suite: deterministic corruption and drift.

The paper evaluates only clean, fixed-length series; real deployments
see missing blocks, sensor dropout, irregular sampling, amplitude
drift, mislabelled training data, and mid-stream concept drift. This
package makes those conditions *first-class evaluated scenarios*:

- :mod:`repro.robustness.operators` — eight seeded, composable
  corruption operators with a severity dial (0 = bit-identical no-op,
  1-5 = increasingly hostile), deterministic per
  (dataset, seed, severity) via crc32-derived RNG streams.
- :mod:`repro.robustness.spec` — the ``op:severity[@where]`` spec
  grammar, parsed as strictly as the PR 2/PR 6 fault specs.
- :mod:`repro.robustness.dataset` — ``CorruptedDatasetVariant`` wraps
  any registered dataset so the grid runner schedules clean and
  corrupted cells side by side.
- :mod:`repro.robustness.grid` — degradation curves over severity and
  robustness-AUC per algorithm, checkpoint/resume-safe.
- :mod:`repro.robustness.stream` — push-time corruption for the
  serving layer (``--corrupt`` on ``serve-sim``/``serve-slo``), with
  provenance of which operator fired.

See ``docs/robustness.md`` for the operator catalog and the
degradation-curve reading guide.
"""

from .operators import (
    OPERATOR_NAMES,
    MAX_SEVERITY,
    apply_operator,
    corruption_rng,
    operator_catalog,
    severity_params,
)
from .spec import (
    WHERE_CHOICES,
    CorruptionSpec,
    parse_corruption_spec,
    parse_corruption_specs,
)
from .dataset import CorruptedDatasetVariant, corrupt_dataset, corrupted_registry
from .grid import RobustnessReport, run_robustness
from .stream import STREAM_OPERATOR_NAMES, StreamCorruptor

__all__ = [
    "OPERATOR_NAMES",
    "STREAM_OPERATOR_NAMES",
    "MAX_SEVERITY",
    "WHERE_CHOICES",
    "CorruptionSpec",
    "CorruptedDatasetVariant",
    "RobustnessReport",
    "StreamCorruptor",
    "apply_operator",
    "corrupt_dataset",
    "corrupted_registry",
    "corruption_rng",
    "operator_catalog",
    "parse_corruption_spec",
    "parse_corruption_specs",
    "run_robustness",
    "severity_params",
]
