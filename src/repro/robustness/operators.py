"""The corruption operator library: seeded, composable, severity-dialed.

Every operator is a pure function ``(values, labels, rng, severity,
window) -> (values, labels)`` over a dataset-shaped ``(N, V, L)`` float
array and its integer label vector. Three contracts hold for all of
them:

1. **Severity 0 is a bit-identical no-op.** The operator returns its
   inputs *unmodified and untouched by the RNG*, so a severity-0
   corrupted grid cell, serve session, or SLO replay is byte-identical
   to its clean counterpart.
2. **Determinism.** All randomness flows through the caller-provided
   ``numpy`` generator; :func:`corruption_rng` derives one from
   structured parts via crc32 (the ``hash()`` pitfall PR 2 fixed must
   not come back here), so the same (dataset, seed, spec) always
   produces the same corruption regardless of process or evaluation
   order.
3. **Composability.** Operators tolerate NaNs introduced by earlier
   operators in a pipeline; statistics they need (per-series std for
   noise scaling) are computed over the finite values only.

Severity maps to operator parameters through per-operator tables
(severity 1 = mild nuisance, 5 = hostile): see :data:`operator_catalog`
for the human-readable summary rendered by ``etsc-bench robustness
--list-ops`` and ``docs/robustness.md``.
"""

from __future__ import annotations

import zlib
from typing import Callable

import numpy as np

from ..exceptions import ConfigurationError

__all__ = [
    "OPERATOR_NAMES",
    "MAX_SEVERITY",
    "apply_operator",
    "corruption_rng",
    "operator_catalog",
    "severity_params",
]

#: Highest supported severity level (0 is always the identity).
MAX_SEVERITY = 5


def corruption_rng(*parts) -> np.random.Generator:
    """A generator seeded from structured parts via crc32.

    The key convention is ``(seed, dataset-or-stream, op, severity,
    where, layer)`` — every (dataset, seed, severity) combination gets
    its own independent stream, stable across processes.
    """
    key = ":".join(str(part) for part in parts).encode("utf-8")
    return np.random.default_rng(np.random.SeedSequence(zlib.crc32(key)))


def _window_bounds(length: int, window: tuple[float, float]) -> tuple[int, int]:
    """Integer [start, stop) time bounds of a fractional window.

    Guarantees a non-empty window of at least one point, so ``@head``
    on a 2-point series still has something to corrupt.
    """
    start = int(np.floor(window[0] * length))
    stop = int(np.ceil(window[1] * length))
    start = max(0, min(start, length - 1))
    stop = max(start + 1, min(stop, length))
    return start, stop


def _finite_std(series: np.ndarray) -> float:
    """Std of the finite values; 1.0 for empty/constant series so noise
    amplitudes stay well-defined on fully-NaN or flat inputs."""
    finite = series[np.isfinite(series)]
    if finite.size == 0:
        return 1.0
    std = float(finite.std())
    return std if std > 0 else 1.0


# ----------------------------------------------------------------------
# Severity tables: severity (1..5) -> the operator's strength parameter.

_SEVERITY_TABLES: dict[str, dict[str, tuple]] = {
    "missing_blocks": {"block_fraction": (0.05, 0.10, 0.20, 0.30, 0.45)},
    "point_dropout": {"dropout_probability": (0.02, 0.05, 0.10, 0.20, 0.35)},
    "irregular_resample": {"jitter": (0.05, 0.10, 0.20, 0.35, 0.50)},
    "additive_noise": {"sigma_factor": (0.05, 0.10, 0.20, 0.35, 0.50)},
    "magnitude_warp": {"amplitude": (0.05, 0.10, 0.20, 0.30, 0.50)},
    "truncate_varlen": {"min_keep_fraction": (0.90, 0.80, 0.65, 0.50, 0.35)},
    "label_noise": {"flip_fraction": (0.02, 0.05, 0.10, 0.20, 0.35)},
    "concept_drift": {
        "drift_tick_fraction": (0.90, 0.75, 0.60, 0.50, 0.40),
        "affected_fraction": (0.10, 0.20, 0.35, 0.50, 0.70),
    },
}


def severity_params(op: str, severity: int) -> dict[str, float]:
    """The parameter values operator ``op`` uses at ``severity`` (1..5)."""
    if op not in _SEVERITY_TABLES:
        raise ConfigurationError(
            f"unknown corruption operator {op!r}; known: "
            f"{', '.join(OPERATOR_NAMES)}"
        )
    if not 1 <= severity <= MAX_SEVERITY:
        raise ConfigurationError(
            f"severity must be in [1, {MAX_SEVERITY}] for parameter "
            f"lookup, got {severity}"
        )
    return {
        name: table[severity - 1]
        for name, table in _SEVERITY_TABLES[op].items()
    }


# ----------------------------------------------------------------------
# Operators. Each takes (values, labels, rng, severity, window) with
# values (N, V, L) and returns new (values, labels); severity >= 1 here
# (apply_operator short-circuits severity 0 before dispatch).


def _missing_blocks(values, labels, rng, severity, window):
    """One contiguous NaN block per (instance, variable) in the window."""
    fraction = severity_params("missing_blocks", severity)["block_fraction"]
    values = values.copy()
    n, v, length = values.shape
    start, stop = _window_bounds(length, window)
    span = stop - start
    block = max(1, int(round(fraction * length)))
    block = min(block, span)
    offsets = rng.integers(0, span - block + 1, size=(n, v))
    for i in range(n):
        for j in range(v):
            begin = start + int(offsets[i, j])
            values[i, j, begin : begin + block] = np.nan
    return values, labels


def _point_dropout(values, labels, rng, severity, window):
    """Independent Bernoulli NaN dropout of points in the window."""
    p = severity_params("point_dropout", severity)["dropout_probability"]
    values = values.copy()
    n, v, length = values.shape
    start, stop = _window_bounds(length, window)
    mask = rng.random(size=(n, v, stop - start)) < p
    region = values[:, :, start:stop]
    region[mask] = np.nan
    values[:, :, start:stop] = region
    return values, labels


def _irregular_resample(values, labels, rng, severity, window):
    """Jittered sampling instants, re-read by nearest neighbour.

    Models an irregularly sampled sensor resampled onto the nominal
    grid: each nominal instant ``t`` actually sampled at
    ``t + jitter``, so the delivered value is the original series read
    at a nearby (possibly repeated or skipped) index. Length is
    preserved; NaNs in the source propagate.
    """
    jitter = severity_params("irregular_resample", severity)["jitter"]
    values = values.copy()
    n, v, length = values.shape
    start, stop = _window_bounds(length, window)
    span = stop - start
    grid = np.arange(start, stop, dtype=float)
    offsets = rng.uniform(-jitter * span, jitter * span, size=(n, span))
    for i in range(n):
        indices = np.clip(
            np.rint(grid + offsets[i]).astype(int), start, stop - 1
        )
        values[i, :, start:stop] = values[i, :, indices].T
    return values, labels


def _additive_noise(values, labels, rng, severity, window):
    """Gaussian noise scaled to each (instance, variable)'s finite std."""
    factor = severity_params("additive_noise", severity)["sigma_factor"]
    values = values.copy()
    n, v, length = values.shape
    start, stop = _window_bounds(length, window)
    noise = rng.standard_normal(size=(n, v, stop - start))
    for i in range(n):
        for j in range(v):
            scale = factor * _finite_std(values[i, j])
            values[i, j, start:stop] += scale * noise[i, j]
    return values, labels


def _magnitude_warp(values, labels, rng, severity, window):
    """Smooth multiplicative amplitude drift (low-frequency sinusoid)."""
    amplitude = severity_params("magnitude_warp", severity)["amplitude"]
    values = values.copy()
    n, v, length = values.shape
    start, stop = _window_bounds(length, window)
    t = np.arange(start, stop, dtype=float) / max(length - 1, 1)
    cycles = rng.integers(1, 4, size=n)
    phases = rng.uniform(0.0, 2.0 * np.pi, size=n)
    for i in range(n):
        curve = 1.0 + amplitude * np.sin(
            2.0 * np.pi * cycles[i] * t + phases[i]
        )
        values[i, :, start:stop] *= curve
    return values, labels


def _truncate_varlen(values, labels, rng, severity, window):
    """Per-instance variable-length truncation: NaN tails.

    Each instance keeps a seeded uniform fraction of its points in
    ``[min_keep, 1]``; everything after the cut becomes NaN, producing
    the ragged-tail shape real variable-length archives have. The
    ``window`` selects where cuts may fall (default: anywhere).
    """
    min_keep = severity_params("truncate_varlen", severity)[
        "min_keep_fraction"
    ]
    values = values.copy()
    n, v, length = values.shape
    start, stop = _window_bounds(length, window)
    fractions = rng.uniform(min_keep, 1.0, size=n)
    for i in range(n):
        keep = max(2, int(round(fractions[i] * length)))
        keep = max(keep, start + 1)  # never cut before the window
        if keep < stop:
            values[i, :, keep:stop] = np.nan
    return values, labels


def _label_noise(values, labels, rng, severity, window):
    """Flip a seeded fraction of labels to a different class.

    A single-class dataset has nothing to flip to and passes through
    unchanged. Time windows do not apply — the spec grammar rejects
    ``label_noise@where`` for any ``where`` other than ``all``.
    """
    fraction = severity_params("label_noise", severity)["flip_fraction"]
    labels = np.asarray(labels).copy()
    classes = np.unique(labels)
    if classes.size < 2:
        return values, labels
    n = labels.shape[0]
    n_flips = max(1, int(round(fraction * n)))
    victims = rng.choice(n, size=min(n_flips, n), replace=False)
    for index in victims:
        others = classes[classes != labels[index]]
        labels[index] = others[rng.integers(0, others.size)]
    return values, labels


def _concept_drift(values, labels, rng, severity, window):
    """Swap the class-conditional generator at a deterministic tick.

    From the drift tick onward, an affected instance's values continue
    as a *donor* instance of a different class — the stream starts as
    one class and drifts into another mid-way, while its recorded label
    stays the original. Single-class datasets pass through unchanged.
    The tick is the same for every affected instance (a population-level
    distribution shift, not per-instance jitter); higher severities
    drift earlier and affect more instances.
    """
    params = severity_params("concept_drift", severity)
    values = values.copy()
    labels = np.asarray(labels)
    classes = np.unique(labels)
    n, v, length = values.shape
    if classes.size < 2:
        return values, labels
    start, stop = _window_bounds(length, window)
    tick = int(round(params["drift_tick_fraction"] * length))
    tick = max(start + 1, min(tick, stop - 1)) if stop - start > 1 else start
    n_affected = max(1, int(round(params["affected_fraction"] * n)))
    affected = rng.choice(n, size=min(n_affected, n), replace=False)
    for index in affected:
        donors = np.flatnonzero(labels != labels[index])
        donor = int(donors[rng.integers(0, donors.size)])
        values[index, :, tick:stop] = values[donor, :, tick:stop]
    return values, labels


_OPERATORS: dict[str, Callable] = {
    "missing_blocks": _missing_blocks,
    "point_dropout": _point_dropout,
    "irregular_resample": _irregular_resample,
    "additive_noise": _additive_noise,
    "magnitude_warp": _magnitude_warp,
    "truncate_varlen": _truncate_varlen,
    "label_noise": _label_noise,
    "concept_drift": _concept_drift,
}

#: Operator names in catalog order.
OPERATOR_NAMES = tuple(_OPERATORS)

#: One-line description per operator (for --list-ops and the docs).
_DESCRIPTIONS = {
    "missing_blocks": "one contiguous NaN gap per instance/variable",
    "point_dropout": "independent Bernoulli point loss (NaN)",
    "irregular_resample": "jittered sampling instants, nearest-neighbour read",
    "additive_noise": "Gaussian noise scaled to per-series std",
    "magnitude_warp": "smooth multiplicative amplitude drift",
    "truncate_varlen": "per-instance variable-length NaN tails",
    "label_noise": "flip a fraction of labels to another class",
    "concept_drift": "swap class-conditional generator at a fixed tick",
}


def operator_catalog() -> dict[str, dict]:
    """Name -> {description, params-by-severity} for docs and --list-ops."""
    catalog = {}
    for name in OPERATOR_NAMES:
        catalog[name] = {
            "description": _DESCRIPTIONS[name],
            "severity_params": {
                severity: severity_params(name, severity)
                for severity in range(1, MAX_SEVERITY + 1)
            },
        }
    return catalog


def apply_operator(
    op: str,
    values: np.ndarray,
    labels: np.ndarray,
    rng: np.random.Generator,
    severity: int,
    window: tuple[float, float] = (0.0, 1.0),
) -> tuple[np.ndarray, np.ndarray]:
    """Apply one operator at one severity to dataset-shaped arrays.

    Severity 0 returns ``(values, labels)`` untouched — the same
    objects, with the RNG never consulted — which is what makes the
    severity-0 no-op bit-identical end to end.
    """
    if op not in _OPERATORS:
        raise ConfigurationError(
            f"unknown corruption operator {op!r}; known: "
            f"{', '.join(OPERATOR_NAMES)}"
        )
    if not 0 <= severity <= MAX_SEVERITY:
        raise ConfigurationError(
            f"severity must be in [0, {MAX_SEVERITY}], got {severity}"
        )
    if severity == 0:
        return values, labels
    values = np.asarray(values, dtype=float)
    if values.ndim != 3:
        raise ConfigurationError(
            f"operator input values must be (N, V, L), got shape "
            f"{values.shape}"
        )
    return _OPERATORS[op](values, labels, rng, severity, window)
