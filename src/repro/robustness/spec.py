"""The ``op:severity[@where]`` corruption spec grammar.

Mirrors the fault-spec grammar of :func:`repro.serve.chaos.parse_fault_specs`
(PR 2/PR 6): a spec is a small, strict string the CLI, scenario configs,
and benchmarks all share, validated eagerly so a malformed spec fails
before anything trains. Examples::

    missing_blocks:3        # severity-3 contiguous NaN gaps, anywhere
    additive_noise:2@tail   # severity-2 noise on the last third only
    label_noise:0           # explicit no-op (bit-identical passthrough)

``where`` restricts the corrupted time region: ``head`` (first third),
``mid`` (middle third), ``tail`` (last third), ``all`` (default).
Operators without a time axis (``label_noise``) accept only ``all``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ConfigurationError
from .operators import MAX_SEVERITY, OPERATOR_NAMES

__all__ = [
    "WHERE_CHOICES",
    "CorruptionSpec",
    "parse_corruption_spec",
    "parse_corruption_specs",
]

#: Placement name -> fractional (start, stop) time window.
_WHERE_WINDOWS: dict[str, tuple[float, float]] = {
    "all": (0.0, 1.0),
    "head": (0.0, 1.0 / 3.0),
    "mid": (1.0 / 3.0, 2.0 / 3.0),
    "tail": (2.0 / 3.0, 1.0),
}

WHERE_CHOICES = tuple(_WHERE_WINDOWS)

#: Operators that have no time axis and therefore reject placement.
_TIMELESS_OPS = ("label_noise",)


@dataclass(frozen=True)
class CorruptionSpec:
    """One parsed ``op:severity[@where]`` corruption spec."""

    op: str
    severity: int
    where: str = "all"

    def __post_init__(self) -> None:
        if self.op not in OPERATOR_NAMES:
            raise ConfigurationError(
                f"unknown corruption operator {self.op!r}; known: "
                f"{', '.join(OPERATOR_NAMES)}"
            )
        if not 0 <= self.severity <= MAX_SEVERITY:
            raise ConfigurationError(
                f"corruption severity must be in [0, {MAX_SEVERITY}], "
                f"got {self.severity} in {str(self)!r}"
            )
        if self.where not in _WHERE_WINDOWS:
            raise ConfigurationError(
                f"unknown corruption placement {self.where!r}; expected "
                f"one of {', '.join(WHERE_CHOICES)}"
            )
        if self.op in _TIMELESS_OPS and self.where != "all":
            raise ConfigurationError(
                f"{self.op} has no time axis; placement must be 'all', "
                f"got {self.where!r}"
            )

    @property
    def window(self) -> tuple[float, float]:
        """The fractional (start, stop) time window of ``where``."""
        return _WHERE_WINDOWS[self.where]

    def __str__(self) -> str:
        base = f"{self.op}:{self.severity}"
        return base if self.where == "all" else f"{base}@{self.where}"


def parse_corruption_spec(spec: str) -> CorruptionSpec:
    """Parse one ``op:severity[@where]`` string, strictly."""
    text = spec.strip()
    where = "all"
    if "@" in text:
        text, _, where = text.partition("@")
        where = where.strip()
        if not where:
            raise ConfigurationError(
                f"bad corruption spec {spec!r}: empty placement after '@'"
            )
    parts = text.split(":")
    if len(parts) != 2 or not parts[0] or not parts[1]:
        raise ConfigurationError(
            f"bad corruption spec {spec!r}; expected op:severity[@where], "
            f"e.g. missing_blocks:3 or additive_noise:2@tail"
        )
    op = parts[0].strip()
    try:
        severity = int(parts[1])
    except ValueError:
        raise ConfigurationError(
            f"bad corruption severity {parts[1]!r} in {spec!r}; expected "
            f"an integer in [0, {MAX_SEVERITY}]"
        ) from None
    return CorruptionSpec(op=op, severity=severity, where=where)


def parse_corruption_specs(specs) -> tuple[CorruptionSpec, ...]:
    """Parse a list of spec strings into an ordered pipeline.

    Order matters (operators compose left to right); duplicate
    (op, where) pairs are rejected — the same operator twice in one
    pipeline is almost certainly a typo and would double-corrupt.
    """
    parsed = tuple(parse_corruption_spec(spec) for spec in specs)
    seen: set[tuple[str, str]] = set()
    for item in parsed:
        key = (item.op, item.where)
        if key in seen:
            raise ConfigurationError(
                f"duplicate corruption operator {item.op!r} "
                f"(placement {item.where!r}) in spec list"
            )
        seen.add(key)
    return parsed
