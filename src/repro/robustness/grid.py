"""Robustness grid: clean-vs-corrupted cells, degradation curves, AUC.

:func:`run_robustness` sweeps a set of corruption operators over
severity levels for every (algorithm, dataset) pair, reusing the full
:class:`~repro.core.runner.BenchmarkRunner` machinery — checkpointing,
retries, parallel workers, tracing — by materialising corrupted
variants as extra registry entries (:mod:`repro.robustness.dataset`).
The clean cell (severity 0) is evaluated once per base dataset and
shared by every operator's curve.

Checkpoint safety: the corruption spec, severity sweep, and corruption
seed are folded into the grid fingerprint, so resuming a corrupted grid
with a different spec fails fast with a
:class:`~repro.exceptions.CheckpointMismatchError` naming the
conflicting keys instead of silently mixing cells.

The report's headline numbers:

- **Degradation curve** — per (algorithm, operator, metric): the mean
  metric over base datasets at each severity, severity 0 being the
  clean cells.
- **Retention** — each severity's metric over the clean metric
  (1.0 = no degradation).
- **Robustness-AUC** — the trapezoidal area under the retention curve
  across the evaluated severities, normalised to [0, 1]-ish (1.0 =
  perfectly flat; values can exceed 1 when corruption accidentally
  helps). Computed for the quality metrics (``accuracy``,
  ``harmonic_mean``) — earliness is lower-is-better and reported as a
  raw curve only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from ..core.runner import BenchmarkRunner, RunReport
from ..exceptions import ConfigurationError
from .dataset import CorruptedDatasetVariant, corrupted_registry
from .spec import CorruptionSpec

__all__ = ["RobustnessReport", "run_robustness"]

#: Metrics the degradation curves cover.
CURVE_METRICS = ("accuracy", "f1", "earliness", "harmonic_mean")

#: Metrics a robustness-AUC is computed for (higher = better).
AUC_METRICS = ("accuracy", "harmonic_mean")

_RETENTION_EPSILON = 1e-12


def _round(value: float, digits: int = 9) -> float:
    return round(float(value), digits)


@dataclass
class RobustnessReport:
    """Degradation curves and robustness-AUC over a corrupted grid."""

    base_report: RunReport
    variants: dict[str, CorruptedDatasetVariant]
    algorithms: list[str]
    base_datasets: list[str]
    ops: list[str]  # "op" or "op@where" labels, curve keys
    severities: list[int]  # includes 0 (the clean cells)
    corruption_seed: int = 0
    environment: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def _cell_metric(
        self, algorithm: str, dataset_name: str, metric: str
    ) -> float | None:
        result = self.base_report.results.get((algorithm, dataset_name))
        return None if result is None else float(getattr(result, metric))

    def _variant_name(self, base: str, op_label: str, severity: int) -> str:
        op, _, where = op_label.partition("@")
        spec = CorruptionSpec(op=op, severity=severity, where=where or "all")
        return f"{base}#{spec}"

    def curve(
        self, algorithm: str, op_label: str, metric: str
    ) -> dict[int, float]:
        """Severity -> mean metric over the base datasets with results.

        Severities where *no* base dataset produced a result (every
        cell failed) are omitted rather than reported as zero.
        """
        if metric not in CURVE_METRICS:
            raise ConfigurationError(
                f"metric must be one of {CURVE_METRICS}, got {metric!r}"
            )
        points: dict[int, float] = {}
        for severity in self.severities:
            cells = []
            for base in self.base_datasets:
                name = (
                    base
                    if severity == 0
                    else self._variant_name(base, op_label, severity)
                )
                value = self._cell_metric(algorithm, name, metric)
                if value is not None:
                    cells.append(value)
            if cells:
                points[severity] = sum(cells) / len(cells)
        return points

    def retention_curve(
        self, algorithm: str, op_label: str, metric: str
    ) -> dict[int, float]:
        """Severity -> metric retention relative to the clean cells."""
        curve = self.curve(algorithm, op_label, metric)
        clean = curve.get(0)
        if clean is None:
            return {}
        retention: dict[int, float] = {}
        for severity, value in curve.items():
            if abs(clean) <= _RETENTION_EPSILON:
                # A zero clean score cannot be 'retained'; equal-zero
                # corrupted scores count as full retention.
                retention[severity] = (
                    1.0 if abs(value - clean) <= _RETENTION_EPSILON else 0.0
                )
            else:
                retention[severity] = value / clean
        return retention

    def robustness_auc(
        self, algorithm: str, op_label: str, metric: str = "accuracy"
    ) -> float | None:
        """Normalised trapezoidal area under the retention curve.

        1.0 means the metric is flat across severities (perfectly
        robust); 0.5 means it decays to nothing linearly. ``None`` when
        fewer than two severities produced results.
        """
        retention = self.retention_curve(algorithm, op_label, metric)
        if len(retention) < 2:
            return None
        points = sorted(retention.items())
        area = 0.0
        for (s0, r0), (s1, r1) in zip(points[:-1], points[1:]):
            area += 0.5 * (r0 + r1) * (s1 - s0)
        span = points[-1][0] - points[0][0]
        return area / span

    # ------------------------------------------------------------------
    def deterministic_dict(self) -> dict[str, Any]:
        """The reproducible core (JSON-safe, floats rounded)."""
        curves: dict[str, Any] = {}
        for op_label in self.ops:
            per_algo: dict[str, Any] = {}
            for algorithm in self.algorithms:
                metrics: dict[str, Any] = {}
                for metric in CURVE_METRICS:
                    points = self.curve(algorithm, op_label, metric)
                    metrics[metric] = {
                        str(severity): _round(value)
                        for severity, value in sorted(points.items())
                    }
                auc = {
                    metric: (
                        None
                        if (value := self.robustness_auc(
                            algorithm, op_label, metric
                        )) is None
                        else _round(value)
                    )
                    for metric in AUC_METRICS
                }
                per_algo[algorithm] = {"curves": metrics, "auc": auc}
            curves[op_label] = per_algo
        failures = {
            f"{algorithm}::{dataset}": reason
            for (algorithm, dataset), reason in sorted(
                self.base_report.failures.items()
            )
        }
        clean = {
            algorithm: {
                base: {
                    metric: (
                        None
                        if (v := self._cell_metric(algorithm, base, metric))
                        is None
                        else _round(v)
                    )
                    for metric in CURVE_METRICS
                }
                for base in self.base_datasets
            }
            for algorithm in self.algorithms
        }
        return {
            "grid": {
                "algorithms": list(self.algorithms),
                "datasets": list(self.base_datasets),
                "ops": list(self.ops),
                "severities": [int(s) for s in self.severities],
                "corruption_seed": int(self.corruption_seed),
            },
            "clean": clean,
            "robustness": curves,
            "failures": failures,
        }

    def as_dict(self) -> dict[str, Any]:
        out = self.deterministic_dict()
        out["environment"] = dict(self.environment)
        return out

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Human-readable degradation tables, one per operator."""
        lines = [
            f"robustness grid: {len(self.algorithms)} algorithm(s) x "
            f"{len(self.base_datasets)} dataset(s) x {len(self.ops)} "
            f"operator(s), severities {self.severities} "
            f"(corruption seed {self.corruption_seed})"
        ]
        for op_label in self.ops:
            lines += ["", f"{op_label} — mean accuracy by severity:"]
            header = f"{'algorithm':12s}" + "".join(
                f"{('s' + str(s)):>9s}" for s in self.severities
            )
            lines.append(header + f"{'AUC':>9s}")
            for algorithm in self.algorithms:
                curve = self.curve(algorithm, op_label, "accuracy")
                cells = "".join(
                    f"{curve[s]:>9.3f}" if s in curve else f"{'--':>9s}"
                    for s in self.severities
                )
                auc = self.robustness_auc(algorithm, op_label, "accuracy")
                auc_cell = f"{auc:>9.3f}" if auc is not None else f"{'--':>9s}"
                lines.append(f"{algorithm:12s}{cells}{auc_cell}")
        if self.base_report.failures:
            lines.append("")
            lines.append(
                f"failures: {len(self.base_report.failures)} cell(s)"
            )
            for (algorithm, dataset), reason in sorted(
                self.base_report.failures.items()
            ):
                lines.append(f"  {algorithm} on {dataset}: {reason}")
        return "\n".join(lines)


def run_robustness(
    algorithms,
    datasets,
    *,
    ops: Sequence[CorruptionSpec],
    severities: Sequence[int] = (1, 2, 3, 4, 5),
    algorithm_names: list[str] | None = None,
    dataset_names: list[str] | None = None,
    corruption_seed: int | None = None,
    fill: bool = True,
    n_folds: int = 5,
    seed: int = 0,
    time_budget_seconds: float = float("inf"),
    wide_threshold: int | None = None,
    large_threshold: int | None = None,
    progress=None,
    retry_policy=None,
    checkpoint_path=None,
    resume_from=None,
    workers: int = 1,
    fingerprint_extra: dict | None = None,
) -> RobustnessReport:
    """Run the clean-vs-corrupted grid and fold it into a report.

    ``ops`` is a sequence of parsed :class:`CorruptionSpec`; their
    placement is honoured, their severity field is superseded by the
    ``severities`` sweep. Severity 0 (the clean cells) is always
    evaluated — it anchors every retention curve and the severity-0
    no-op gate. ``corruption_seed`` defaults to ``seed``.
    """
    if not ops:
        raise ConfigurationError("run_robustness needs at least one operator")
    severities = sorted({int(s) for s in severities} | {0})
    if severities[-1] == 0:
        raise ConfigurationError(
            "severities must include at least one level >= 1 "
            "(severity 0 alone is just the clean grid)"
        )
    if corruption_seed is None:
        corruption_seed = seed
    algorithm_names = list(algorithm_names or algorithms.names())
    base_names = list(dataset_names or datasets.names())
    op_labels = [
        spec.op if spec.where == "all" else f"{spec.op}@{spec.where}"
        for spec in ops
    ]
    if len(set(op_labels)) != len(op_labels):
        raise ConfigurationError(
            f"duplicate operators in robustness sweep: {op_labels}"
        )
    registry, variants = corrupted_registry(
        datasets,
        base_names,
        ops,
        severities,
        corruption_seed,
        fill=fill,
    )
    # Satellite: the corruption identity is part of the grid fingerprint,
    # so --resume with a different spec/severity-sweep/seed fails fast.
    extra = dict(fingerprint_extra or {})
    extra["corruption_ops"] = list(op_labels)
    extra["corruption_severities"] = [int(s) for s in severities]
    extra["corruption_seed"] = int(corruption_seed)
    extra["corruption_fill"] = bool(fill)
    runner = BenchmarkRunner(
        algorithms,
        registry,
        n_folds=n_folds,
        time_budget_seconds=time_budget_seconds,
        wide_threshold=wide_threshold,
        large_threshold=large_threshold,
        seed=seed,
        progress=progress,
        retry_policy=retry_policy,
        checkpoint_path=checkpoint_path,
        resume_from=resume_from,
        workers=workers,
        fingerprint_extra=extra,
    )
    base_report = runner.run(algorithm_names, registry.names())
    return RobustnessReport(
        base_report=base_report,
        variants=variants,
        algorithms=algorithm_names,
        base_datasets=base_names,
        ops=op_labels,
        severities=severities,
        corruption_seed=corruption_seed,
    )
