"""Push-time corruption for the serving layer.

:class:`StreamCorruptor` applies the corruption operators *as the
points arrive*: the serving stack — input guard, fallback, breaker —
is measured against data faults the way PR 2's fault plans measure it
against timing faults. The guarded session consults the corruptor
between point coercion and the input guard, so the guard sees exactly
what a degraded sensor would deliver.

Stream analogues of the dataset operators (same severity tables):

- ``missing_blocks`` — a contiguous run of pushes arrives as NaN.
- ``point_dropout`` — individual pushes arrive as NaN.
- ``truncate_varlen`` — every push after a seeded cutoff arrives NaN
  (the sensor died early).
- ``additive_noise`` — per-push Gaussian noise, scaled by a reference
  std (the guard's train-time stats when available, else 1.0).
- ``magnitude_warp`` — a smooth multiplicative drift curve over the
  stream.
- ``irregular_resample`` — sample-and-hold: at jittered pushes the
  *previous* delivered point repeats (a stale reading), the stream
  analogue of irregular sampling.

``label_noise`` and ``concept_drift`` need class-conditional data the
stream does not carry; specs naming them are rejected here with a
pointer at the grid mode.

Determinism: the per-stream schedule is derived once per
(seed, stream name, op, severity, where) via crc32 — independent of
arrival interleaving across streams — and severity-0 specs are dropped
at construction so they cost nothing and change nothing (the
bit-identical no-op contract).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import ConfigurationError
from .operators import _window_bounds, corruption_rng, severity_params
from .spec import CorruptionSpec, parse_corruption_specs

__all__ = ["STREAM_OPERATOR_NAMES", "StreamCorruptor"]

#: Operators that have a push-time stream analogue.
STREAM_OPERATOR_NAMES = (
    "missing_blocks",
    "point_dropout",
    "irregular_resample",
    "additive_noise",
    "magnitude_warp",
    "truncate_varlen",
)


class _StreamSchedule:
    """The precomputed corruption plan of one stream.

    ``nan_pushes`` maps 1-based push indices to the op that blanks
    them; ``hold_pushes`` to the op that repeats the previous point;
    ``noise``/``warp`` are per-push additive/multiplicative terms.
    Later ops never override an earlier op's claim on a push, matching
    the left-to-right composition order of the dataset pipeline.
    """

    def __init__(self) -> None:
        self.nan_pushes: dict[int, str] = {}
        self.hold_pushes: dict[int, str] = {}
        self.noise: dict[int, tuple[str, np.ndarray]] = {}
        self.warp: dict[int, tuple[str, float]] = {}


class StreamCorruptor:
    """Deterministic push-time corruption over named streams.

    Parameters
    ----------
    specs:
        Parsed :class:`CorruptionSpec` pipeline (or raw spec strings).
        Severity-0 entries are dropped; stream-incompatible operators
        raise.
    seed:
        Corruption seed; combined with the stream name per crc32, so
        every stream gets independent, order-free randomness.
    noise_scale:
        Reference amplitude for ``additive_noise`` (typically the mean
        train-time channel std); defaults to 1.0.
    """

    def __init__(
        self,
        specs: Sequence[CorruptionSpec] | Sequence[str],
        seed: int = 0,
        noise_scale: float = 1.0,
    ) -> None:
        if specs and isinstance(specs[0], str):
            specs = parse_corruption_specs(specs)
        for spec in specs:
            if spec.op not in STREAM_OPERATOR_NAMES:
                raise ConfigurationError(
                    f"corruption operator {spec.op!r} has no push-time "
                    f"stream analogue (stream operators: "
                    f"{', '.join(STREAM_OPERATOR_NAMES)}); use "
                    f"'etsc-bench robustness' for grid-only operators"
                )
        self.specs = tuple(spec for spec in specs if spec.severity >= 1)
        self.seed = int(seed)
        self.noise_scale = float(noise_scale)
        self._schedules: dict[tuple[str, int, int], _StreamSchedule] = {}
        self._last_point: dict[str, np.ndarray] = {}
        #: (stream, push index, op) triples, in firing order — the
        #: provenance log tests and reports read back.
        self.fired: list[tuple[str, int, str]] = []

    @property
    def active(self) -> bool:
        """Whether any spec survives at severity >= 1."""
        return bool(self.specs)

    def describe(self) -> list[str]:
        """The active specs as canonical strings."""
        return [str(spec) for spec in self.specs]

    # ------------------------------------------------------------------
    def _schedule(
        self, stream: str, length: int, n_channels: int
    ) -> _StreamSchedule:
        key = (stream, length, n_channels)
        schedule = self._schedules.get(key)
        if schedule is None:
            schedule = self._build_schedule(stream, length, n_channels)
            self._schedules[key] = schedule
        return schedule

    def _build_schedule(
        self, stream: str, length: int, n_channels: int
    ) -> _StreamSchedule:
        schedule = _StreamSchedule()
        for spec in self.specs:
            rng = corruption_rng(
                self.seed, stream, spec.op, spec.severity, spec.where,
                "stream",
            )
            params = severity_params(spec.op, spec.severity)
            start, stop = _window_bounds(length, spec.window)
            span = stop - start
            if spec.op == "missing_blocks":
                block = min(
                    span,
                    max(1, int(round(params["block_fraction"] * length))),
                )
                begin = start + int(rng.integers(0, span - block + 1))
                for t in range(begin, begin + block):
                    schedule.nan_pushes.setdefault(t + 1, spec.op)
            elif spec.op == "point_dropout":
                drops = rng.random(span) < params["dropout_probability"]
                for offset in np.flatnonzero(drops):
                    schedule.nan_pushes.setdefault(
                        start + int(offset) + 1, spec.op
                    )
            elif spec.op == "truncate_varlen":
                fraction = float(
                    rng.uniform(params["min_keep_fraction"], 1.0)
                )
                keep = max(2, int(round(fraction * length)))
                keep = max(keep, start + 1)
                for t in range(keep, stop):
                    schedule.nan_pushes.setdefault(t + 1, spec.op)
            elif spec.op == "irregular_resample":
                # A stale read: with probability = the jitter fraction
                # the sampled instant lands before the nominal one and
                # the previous delivery repeats. (The dataset operator's
                # offset-rounding rule saturates near 50% for long
                # series, which would erase the severity gradient here.)
                stale = rng.random(span) < params["jitter"]
                for offset in np.flatnonzero(stale):
                    t = start + int(offset)
                    if t > 0:
                        schedule.hold_pushes.setdefault(t + 1, spec.op)
            elif spec.op == "additive_noise":
                scale = params["sigma_factor"] * self.noise_scale
                noise = rng.standard_normal((span, n_channels)) * scale
                for offset in range(span):
                    schedule.noise[start + offset + 1] = (
                        spec.op, noise[offset],
                    )
            elif spec.op == "magnitude_warp":
                amplitude = params["amplitude"]
                cycles = int(rng.integers(1, 4))
                phase = float(rng.uniform(0.0, 2.0 * np.pi))
                t_norm = np.arange(start, stop) / max(length - 1, 1)
                curve = 1.0 + amplitude * np.sin(
                    2.0 * np.pi * cycles * t_norm + phase
                )
                for offset in range(span):
                    schedule.warp[start + offset + 1] = (
                        spec.op, float(curve[offset]),
                    )
        return schedule

    # ------------------------------------------------------------------
    def apply(
        self,
        stream: str,
        index: int,
        point: np.ndarray,
        length: int,
    ) -> tuple[np.ndarray, list[str]]:
        """Corrupt one delivered point; returns (point, fired op names).

        ``index`` is the 1-based push index; ``length`` the stream's
        full horizon. With no active specs the input array is returned
        untouched (same object).
        """
        if not self.specs:
            return point, []
        point = np.asarray(point, dtype=float)
        schedule = self._schedule(stream, length, point.shape[0])
        fired: list[str] = []
        out = point
        nan_op = schedule.nan_pushes.get(index)
        hold_op = schedule.hold_pushes.get(index)
        if nan_op is not None:
            out = np.full_like(point, np.nan)
            fired.append(nan_op)
        elif hold_op is not None and stream in self._last_point:
            out = self._last_point[stream].copy()
            fired.append(hold_op)
        else:
            noise = schedule.noise.get(index)
            warp = schedule.warp.get(index)
            if warp is not None:
                out = out * warp[1]
                fired.append(warp[0])
            if noise is not None:
                out = out + noise[1]
                if noise[0] not in fired:
                    fired.append(noise[0])
        self._last_point[stream] = np.asarray(out, dtype=float)
        for op in fired:
            self.fired.append((stream, index, op))
        return out, fired
