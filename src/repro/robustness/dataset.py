"""Corrupted dataset variants for the evaluation grid.

:func:`corrupt_dataset` applies a corruption pipeline to one loaded
:class:`~repro.data.dataset.TimeSeriesDataset`; ``CorruptedDatasetVariant``
names one (base dataset, operator, severity, placement) grid cell; and
:func:`corrupted_registry` materialises a derived
:class:`~repro.core.registry.DatasetRegistry` in which clean and
corrupted variants sit side by side, so the unmodified
:class:`~repro.core.runner.BenchmarkRunner` — checkpointing, retries,
parallel workers and all — schedules them like any other dataset.

Variant naming: ``Base#op:severity[@where]`` (e.g.
``PowerCons#missing_blocks:3``). The ``#`` separator cannot appear in
registered dataset names, so :meth:`CorruptedDatasetVariant.parse_name`
recovers the (base, spec) pair from a report key unambiguously.

Determinism: the corruption RNG is derived per
``(corruption_seed, base dataset name, op, severity, where)`` via
crc32, so a variant's values are identical across processes, worker
counts, and evaluation order — the property the checkpoint/resume path
and the double-run determinism gate rely on.

NaN-producing operators (``missing_blocks``, ``point_dropout``,
``truncate_varlen``) are followed by the paper's Section 5.1 gap
filling (:func:`repro.data.preprocessing.fill_missing`) by default, so
fixed-length algorithms see what a production ingest pipeline would
feed them and the degradation curve measures *information loss*, not
NaN-crash artefacts. ``fill=False`` keeps the raw NaNs (the serving
layer's input guard is measured against those instead).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.registry import DatasetRegistry
from ..data.dataset import TimeSeriesDataset
from ..data.preprocessing import fill_missing
from ..exceptions import ConfigurationError
from .operators import apply_operator, corruption_rng
from .spec import CorruptionSpec, parse_corruption_spec

__all__ = [
    "CorruptedDatasetVariant",
    "corrupt_dataset",
    "corrupted_registry",
]

#: Separator between a base dataset name and its corruption spec.
VARIANT_SEPARATOR = "#"


def corrupt_dataset(
    dataset: TimeSeriesDataset,
    specs: Sequence[CorruptionSpec],
    corruption_seed: int = 0,
    *,
    fill: bool = True,
    name: str | None = None,
) -> TimeSeriesDataset:
    """Apply a corruption pipeline to a loaded dataset, deterministically.

    Operators compose left to right; each gets its own crc32-derived
    RNG stream keyed by (seed, dataset name, op, severity, where). A
    pipeline whose specs are all severity 0 returns ``dataset`` itself
    (the same object) — the bit-identical no-op contract.
    """
    values, labels = dataset.values, dataset.labels
    changed = False
    for spec in specs:
        if spec.severity == 0:
            continue
        rng = corruption_rng(
            corruption_seed, dataset.name, spec.op, spec.severity, spec.where
        )
        values, labels = apply_operator(
            spec.op, values, labels, rng, spec.severity, spec.window
        )
        changed = True
    if not changed:
        return dataset
    corrupted = TimeSeriesDataset(
        values,
        labels,
        name=name or dataset.name,
        frequency_seconds=dataset.frequency_seconds,
    )
    if fill and corrupted.has_missing():
        corrupted = fill_missing(corrupted)
    return corrupted


@dataclass(frozen=True)
class CorruptedDatasetVariant:
    """One (base dataset, corruption spec) cell of a robustness grid."""

    base: str
    spec: CorruptionSpec

    @property
    def name(self) -> str:
        """The registry/report name: ``Base#op:severity[@where]``."""
        return f"{self.base}{VARIANT_SEPARATOR}{self.spec}"

    @classmethod
    def parse_name(cls, name: str) -> "CorruptedDatasetVariant | None":
        """Recover a variant from its registry name; ``None`` if clean."""
        if VARIANT_SEPARATOR not in name:
            return None
        base, _, spec_text = name.partition(VARIANT_SEPARATOR)
        return cls(base=base, spec=parse_corruption_spec(spec_text))

    def load(
        self,
        base_registry: DatasetRegistry,
        corruption_seed: int = 0,
        *,
        fill: bool = True,
    ) -> TimeSeriesDataset:
        """Load the base dataset and corrupt it, under the variant name."""
        return corrupt_dataset(
            base_registry.load(self.base),
            [self.spec],
            corruption_seed,
            fill=fill,
            name=self.name,
        )


def corrupted_registry(
    base: DatasetRegistry,
    dataset_names: Sequence[str],
    ops: Sequence[CorruptionSpec],
    severities: Sequence[int],
    corruption_seed: int = 0,
    *,
    fill: bool = True,
) -> tuple[DatasetRegistry, dict[str, CorruptedDatasetVariant]]:
    """Build the derived registry a robustness grid runs over.

    For every base dataset: the clean entry (under its own name, the
    shared severity-0 cell) plus one variant per (op, severity >= 1).
    ``ops`` carries the operator and placement; each spec's own
    severity is ignored in favour of the ``severities`` sweep. Returns
    the registry and the variant-name -> variant mapping the report
    uses to fold cells back into degradation curves.
    """
    for name in dataset_names:
        if VARIANT_SEPARATOR in name:
            raise ConfigurationError(
                f"dataset name {name!r} contains the variant separator "
                f"{VARIANT_SEPARATOR!r}"
            )
        if name not in base:
            raise ConfigurationError(
                f"unknown dataset {name!r}; known: "
                f"{', '.join(sorted(base.names()))}"
            )
    registry = DatasetRegistry()
    variants: dict[str, CorruptedDatasetVariant] = {}
    positive = sorted({int(s) for s in severities if int(s) >= 1})
    for name in dataset_names:
        registry.register(name, lambda name=name: base.load(name))
        for op_spec in ops:
            for severity in positive:
                variant = CorruptedDatasetVariant(
                    base=name,
                    spec=CorruptionSpec(
                        op=op_spec.op, severity=severity, where=op_spec.where
                    ),
                )
                variants[variant.name] = variant
                registry.register(
                    variant.name,
                    lambda variant=variant: variant.load(
                        base, corruption_seed, fill=fill
                    ),
                )
    return registry, variants
