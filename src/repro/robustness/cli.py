"""``etsc-bench robustness``: the degraded-data evaluation grid.

Sweeps corruption operators over severity levels for the selected
algorithms and datasets, printing per-operator degradation tables
(mean accuracy by severity plus robustness-AUC) and optionally writing
the full JSON report — the same shape ``benchmarks/bench_robust.py``
commits as ``BENCH_ROBUST.json``.

Examples
--------
List the operator catalog::

    etsc-bench robustness --list-ops

A quick corrupted mini-grid::

    etsc-bench robustness --ops missing_blocks additive_noise \
        --severities 1 3 5 --algorithms ECTS TEASER \
        --datasets PowerCons --scale 0.08 --folds 2
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from ..core.registry import default_algorithms, default_datasets
from ..exceptions import CheckpointError, ConfigurationError, ReproError
from .grid import run_robustness
from .operators import MAX_SEVERITY, operator_catalog
from .spec import CorruptionSpec, parse_corruption_spec

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``robustness`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="etsc-bench robustness",
        description=(
            "Evaluate algorithms on deterministically corrupted datasets "
            "and report degradation curves over severity plus "
            "robustness-AUC (see docs/robustness.md)"
        ),
    )
    parser.add_argument(
        "--ops",
        nargs="+",
        default=["missing_blocks"],
        metavar="OP[@WHERE]",
        help=(
            "corruption operators to sweep, optionally placed "
            "(e.g. missing_blocks additive_noise@tail); see --list-ops"
        ),
    )
    parser.add_argument(
        "--severities",
        nargs="+",
        type=int,
        default=[1, 2, 3, 4, 5],
        metavar="S",
        help=(
            f"severity levels (1..{MAX_SEVERITY}) to evaluate; the clean "
            "severity-0 cells always run (default: 1 2 3 4 5)"
        ),
    )
    parser.add_argument(
        "--list-ops",
        action="store_true",
        help="print the operator catalog with severity parameters, then exit",
    )
    parser.add_argument(
        "--algorithms",
        nargs="*",
        default=None,
        metavar="NAME",
        help="algorithms to run (default: all registered)",
    )
    parser.add_argument(
        "--datasets",
        nargs="*",
        default=None,
        metavar="NAME",
        help="base datasets to corrupt (default: all registered)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.1,
        help="dataset size scale factor (1.0 = published sizes)",
    )
    parser.add_argument(
        "--folds", type=int, default=5, help="cross-validation folds"
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--corruption-seed",
        type=int,
        default=None,
        metavar="N",
        help="seed of the corruption RNG streams (default: --seed)",
    )
    parser.add_argument(
        "--no-fill",
        action="store_true",
        help=(
            "keep NaNs produced by the operators instead of applying the "
            "paper's Section 5.1 gap filling before evaluation"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="evaluate up to N grid cells in parallel worker processes",
    )
    parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help=(
            "append every cell outcome to a JSONL checkpoint at PATH; the "
            "fingerprint includes the corruption spec and seed, so a "
            "mismatched --resume fails fast"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume from the checkpoint at --checkpoint PATH",
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="write the full robustness report as JSON to PATH",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a JSONL span trace of the grid run",
    )
    parser.add_argument(
        "--log-level",
        metavar="LEVEL",
        default=None,
        help="enable repro logging at LEVEL (debug/info/warning/error)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="log per-cell progress lines (implies --log-level info)",
    )
    return parser


def _print_catalog(out) -> None:
    print("corruption operators (spec grammar: op:severity[@where]):", file=out)
    for name, entry in operator_catalog().items():
        print(f"  {name:20s} {entry['description']}", file=out)
        for severity, params in entry["severity_params"].items():
            rendered = ", ".join(
                f"{key}={value:g}" for key, value in params.items()
            )
            print(f"    s{severity}: {rendered}", file=out)
    print(
        "  placement: @head (first third), @mid, @tail, @all (default)",
        file=out,
    )


def _parse_ops(raw_ops: list[str]) -> list[CorruptionSpec]:
    """CLI op tokens (``op`` or ``op@where``) -> severity-1 placeholder
    specs; the sweep severities supersede the placeholder."""
    specs = []
    for token in raw_ops:
        op, _, where = token.partition("@")
        specs.append(
            CorruptionSpec(
                op=op.strip(), severity=1, where=where.strip() or "all"
            )
        )
    return specs


def main(argv: list[str] | None = None, out=None) -> int:
    """``robustness`` entry point; returns a process exit code."""
    out = out or sys.stdout
    arguments = build_parser().parse_args(argv)
    if arguments.log_level or arguments.progress:
        from ..obs.logging import configure_logging

        configure_logging(arguments.log_level or "INFO")
    if arguments.list_ops:
        _print_catalog(out)
        return 0
    if arguments.resume and not arguments.checkpoint:
        print(
            "error: --resume requires --checkpoint PATH (the file to "
            "resume from)",
            file=out,
        )
        return 2
    try:
        ops = _parse_ops(arguments.ops)
        for severity in arguments.severities:
            if not 0 <= severity <= MAX_SEVERITY:
                raise ConfigurationError(
                    f"severity must be in [0, {MAX_SEVERITY}], "
                    f"got {severity}"
                )
    except ConfigurationError as error:
        print(f"error: {error}", file=out)
        return 2
    algorithms = default_algorithms(fast=True)
    datasets = default_datasets(scale=arguments.scale, seed=arguments.seed)

    def run():
        return run_robustness(
            algorithms,
            datasets,
            ops=ops,
            severities=arguments.severities,
            algorithm_names=arguments.algorithms,
            dataset_names=arguments.datasets,
            corruption_seed=arguments.corruption_seed,
            fill=not arguments.no_fill,
            n_folds=arguments.folds,
            seed=arguments.seed,
            wide_threshold=max(2, int(1300 * arguments.scale)),
            large_threshold=max(2, int(1000 * arguments.scale)),
            progress=lambda line: print(line, file=out),
            checkpoint_path=arguments.checkpoint,
            resume_from=arguments.checkpoint if arguments.resume else None,
            workers=arguments.workers,
            fingerprint_extra={"scale": arguments.scale},
        )

    try:
        if arguments.trace:
            from ..obs.events import TraceWriter
            from ..obs.trace import Tracer, use_tracer

            with TraceWriter(arguments.trace) as writer:
                with use_tracer(Tracer(on_finish=writer.write_span)):
                    report = run()
            print(
                f"trace written to {arguments.trace} "
                f"({writer.n_spans} spans)",
                file=out,
            )
        else:
            report = run()
    except (ConfigurationError, CheckpointError) as error:
        print(f"error: {error}", file=out)
        return 2
    except ReproError as error:
        print(f"robustness grid failed: {error}", file=out)
        return 1
    print(report.render(), file=out)
    if arguments.output:
        Path(arguments.output).write_text(
            json.dumps(report.as_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"\nreport written to {arguments.output}", file=out)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    raise SystemExit(main())
