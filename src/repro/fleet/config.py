"""Fleet configuration: shards, admission bounds, shedding policy.

A :class:`FleetConfig` describes the multi-tenant front-end that sits
above the scenario: how many shard workers serve sessions, how many
streams each shard may hold in flight, how large the admission backlog
may grow, and what happens to a stream the backlog cannot hold. All of
it is validated eagerly — a malformed fleet fails before any training
or forking happens, mirroring the strict scenario parsing in
:mod:`repro.slo.scenario`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ConfigurationError

__all__ = [
    "SHED_REJECT_NEW",
    "SHED_OLDEST",
    "SHED_DEGRADE",
    "SHED_POLICIES",
    "FleetConfig",
]

#: Reject the stream that would overflow the admission queue (it is shed).
SHED_REJECT_NEW = "reject-new"
#: Evict the oldest waiting stream to make room (the evictee is shed).
SHED_OLDEST = "shed-oldest"
#: Answer the overflowing stream from the batched fallback instead.
SHED_DEGRADE = "degrade"

#: Load-shedding policies applied when the admission queue is full.
SHED_POLICIES = (SHED_REJECT_NEW, SHED_OLDEST, SHED_DEGRADE)


@dataclass(frozen=True)
class FleetConfig:
    """One multi-tenant serving fleet, declaratively.

    Parameters
    ----------
    n_shards:
        Shard workers serving sessions. Each shard is one simulated
        server with its own virtual clock; streams assigned to the same
        shard queue behind each other exactly as in the single-server
        SLO harness.
    max_active_per_shard:
        In-flight session cap per shard — the lever that bounds fleet
        memory regardless of how many streams the scenario requests.
    admission_capacity:
        Bound on the admission backlog (streams requested but not yet
        placed on a shard). Overflow triggers ``shed_policy``.
    shed_policy:
        One of :data:`SHED_POLICIES` — what happens to the stream the
        backlog cannot hold.
    tick_events:
        Events each shard advances per coordinator tick. Smaller ticks
        give finer-grained failover points; the value is part of the
        deterministic contract (a fault plan names tick indices).
    heartbeat_timeout_seconds:
        Real-time budget for a shard's tick reply. A shard that does
        not answer within it is declared hung, SIGKILLed, and failed
        over. Wall time only — detection *tick* stays deterministic.
    failover_limit:
        Times one stream may be re-admitted after losing its shard
        before it is degraded instead (guards against a poison stream
        taking down replacement after replacement).
    """

    n_shards: int = 2
    max_active_per_shard: int = 64
    admission_capacity: int = 256
    shed_policy: str = SHED_REJECT_NEW
    tick_events: int = 256
    heartbeat_timeout_seconds: float = 30.0
    failover_limit: int = 2

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ConfigurationError(
                f"n_shards must be >= 1, got {self.n_shards}"
            )
        if self.max_active_per_shard < 1:
            raise ConfigurationError(
                f"max_active_per_shard must be >= 1, "
                f"got {self.max_active_per_shard}"
            )
        if self.admission_capacity < 1:
            raise ConfigurationError(
                f"admission_capacity must be >= 1, "
                f"got {self.admission_capacity}"
            )
        if self.shed_policy not in SHED_POLICIES:
            raise ConfigurationError(
                f"unknown shed policy {self.shed_policy!r}; expected one "
                f"of {', '.join(SHED_POLICIES)}"
            )
        if self.tick_events < 1:
            raise ConfigurationError(
                f"tick_events must be >= 1, got {self.tick_events}"
            )
        if self.heartbeat_timeout_seconds <= 0:
            raise ConfigurationError(
                f"heartbeat_timeout_seconds must be positive, "
                f"got {self.heartbeat_timeout_seconds}"
            )
        if self.failover_limit < 0:
            raise ConfigurationError(
                f"failover_limit must be >= 0, got {self.failover_limit}"
            )

    def as_dict(self) -> dict:
        """Deterministic config summary embedded in the fleet report."""
        return {
            "n_shards": self.n_shards,
            "max_active_per_shard": self.max_active_per_shard,
            "admission_capacity": self.admission_capacity,
            "shed_policy": self.shed_policy,
            "tick_events": self.tick_events,
            "failover_limit": self.failover_limit,
        }
