"""Shard worker: one simulated server holding many guarded sessions.

A shard is the fleet's unit of execution *and* of failure. It owns a
:class:`~repro.slo.clock.VirtualClock`, a heap of pending arrival
events, and one :class:`~repro.serve.session.GuardedStreamingSession`
per in-flight stream — built exactly the way the single-server SLO
harness builds them, from the same per-stream seeds, so a one-shard
fleet replays a scenario stream-for-stream identically to
:func:`repro.slo.harness.run_scenario`.

The worker side of the coordinator protocol (see
:mod:`repro.core.pool`):

* ``open`` — admit stream descriptors; each is three small integers
  (``global_index``, ``spec_index``, ``stream_i``) from which the shard
  re-derives everything (arrivals, seeds, instance, name). The trained
  bundles arrive by fork inheritance, never through the pipe.
* ``tick`` — advance up to ``max_events`` arrival events in the global
  deterministic order ``(timestamp, global_index, point)`` and reply
  with the **completed** streams' outcomes. A stream's records leave the
  shard only together with its final decision, so a SIGKILL mid-tick
  loses no committed work: the coordinator replays the whole stream on
  a healthy shard.
* ``stop`` / ``hang`` — handled by the generic request/reply loop.

Outcomes are plain picklable payloads; per-stream counters come from a
per-session metrics registry so the parent can sum them in commit order
deterministically, no matter which shard (or replacement worker) ran
the stream.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..core.pool import request_reply_loop
from ..core.resilience import TIMEOUT
from ..obs.metrics import MetricsRegistry
from ..serve.breaker import CircuitBreaker
from ..serve.guard import InputGuard
from ..serve.session import GuardedStreamingSession
from ..slo.clock import VirtualClock
from ..slo.harness import SimulatedClassifier, derive_seed
from ..slo.scenario import Scenario

__all__ = [
    "StreamDescriptor",
    "ShardRuntime",
    "shard_main",
    "set_shard_state",
]

#: Fork-inherited worker state: set in the parent before spawning so the
#: trained bundles travel by copy-on-write (the runner's idiom).
_SHARD_STATE: dict = {}


def set_shard_state(scenario: Scenario, bundles: dict) -> None:
    """Park the scenario and trained bundles for fork inheritance."""
    _SHARD_STATE["scenario"] = scenario
    _SHARD_STATE["bundles"] = bundles


@dataclass(frozen=True)
class StreamDescriptor:
    """The three integers that fully determine one scenario stream."""

    global_index: int
    spec_index: int
    stream_i: int

    def as_dict(self) -> dict:
        return {
            "global_index": self.global_index,
            "spec_index": self.spec_index,
            "stream_i": self.stream_i,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "StreamDescriptor":
        return cls(
            global_index=int(raw["global_index"]),
            spec_index=int(raw["spec_index"]),
            stream_i=int(raw["stream_i"]),
        )


@dataclass
class _ShardStream:
    """One in-flight stream and its per-stream collection state."""

    descriptor: StreamDescriptor
    name: str
    session: GuardedStreamingSession
    breaker: CircuitBreaker | None
    values: np.ndarray
    true_label: int
    n_points: int
    remaining: int
    metrics: MetricsRegistry
    pending_arrival: float = 0.0
    responses: list = field(default_factory=list)
    misses: int = 0


class ShardRuntime:
    """The in-worker state machine behind one shard."""

    def __init__(self, scenario: Scenario, bundles: dict, index: int) -> None:
        self.scenario = scenario
        self.bundles = bundles
        self.index = index
        self.clock = VirtualClock()
        self.fault_plan = scenario.fault_plan()
        self._events: list[tuple[float, int, int]] = []  # heap
        self._streams: dict[int, _ShardStream] = {}
        self.first_arrival: float | None = None

    # ------------------------------------------------------------------
    @property
    def n_active(self) -> int:
        return len(self._streams)

    def handle(self, request: dict) -> dict:
        """Dispatch one coordinator request (the pool handler)."""
        command = request.get("cmd")
        if command == "open":
            descriptors = [
                StreamDescriptor.from_dict(raw)
                for raw in request.get("streams", [])
            ]
            for descriptor in descriptors:
                self.open_stream(descriptor)
            return {"cmd": "open", "ok": True, "opened": len(descriptors)}
        if command == "tick":
            # One round trip per tick: admissions ride along with the
            # advance request so a dispatch costs one reply, not two.
            opened = [
                StreamDescriptor.from_dict(raw)
                for raw in request.get("streams", [])
            ]
            for descriptor in opened:
                self.open_stream(descriptor)
            outcomes = self.run_events(request.get("max_events"))
            return {
                "cmd": "tick",
                "ok": True,
                "opened": len(opened),
                "outcomes": outcomes,
                "active": self.n_active,
                "events_left": len(self._events),
                "clock": self.clock.now(),
            }
        return {"cmd": command, "error": f"unknown command {command!r}"}

    # ------------------------------------------------------------------
    def open_stream(self, descriptor: StreamDescriptor) -> None:
        """Build the guarded session for one stream, harness-identically."""
        scenario = self.scenario
        spec = scenario.streams[descriptor.spec_index]
        bundle = self.bundles[(spec.algorithm, spec.dataset)]
        test = bundle.test
        instance = descriptor.stream_i % test.n_instances
        name = f"{spec.dataset}[{instance}]@{spec.algorithm}"
        length = test.values.shape[2]
        global_index = descriptor.global_index
        arrivals = scenario.arrival.generate(
            length,
            seed=derive_seed(scenario.seed, global_index, "arrival"),
            start=global_index * scenario.stagger_ms / 1000.0,
        )
        breaker = None
        if scenario.breaker is not None:
            breaker = CircuitBreaker(
                failure_threshold=scenario.breaker.threshold,
                recovery_seconds=scenario.breaker.recovery_ms / 1000.0,
                probe_successes=scenario.breaker.probe_successes,
                clock=self.clock.now,
            )
        serving_classifier = SimulatedClassifier(
            bundle.classifier,
            self.clock,
            scenario.service,
            np.random.default_rng(
                np.random.SeedSequence(
                    derive_seed(scenario.seed, global_index, "service")
                )
            ),
        )
        metrics = MetricsRegistry()
        stream = _ShardStream(
            descriptor=descriptor,
            name=name,
            session=None,  # filled below (observer needs the stream)
            breaker=breaker,
            values=test.values[instance],
            true_label=int(test.labels[instance]),
            n_points=len(arrivals),
            remaining=len(arrivals),
            metrics=metrics,
        )
        stream.session = GuardedStreamingSession(
            serving_classifier,
            length,
            check_every=scenario.check_every,
            guard=InputGuard(bundle.stats, policy=scenario.guard),
            fallback=bundle.fallback,
            deadline_seconds=scenario.deadline_seconds,
            breaker=breaker,
            fault_injector=self.fault_plan,
            stream_name=name,
            algorithm_name=spec.algorithm,
            metrics=metrics,
            clock=self.clock.now,
            consult_observer=self._make_observer(stream),
            preemptive_deadline=False,
        )
        self._streams[global_index] = stream
        for point, timestamp in enumerate(arrivals):
            heapq.heappush(
                self._events, (float(timestamp), global_index, point)
            )
        if self.first_arrival is None or arrivals[0] < self.first_arrival:
            self.first_arrival = float(arrivals[0])

    def _make_observer(self, stream: _ShardStream):
        deadline = self.scenario.deadline_seconds

        def observe(record) -> None:
            if (
                record.failure_kind == TIMEOUT
                and deadline is not None
                and record.elapsed_seconds < deadline
            ):
                # A timed-out consultation occupies the server for the
                # full deadline before being preempted; injected timeouts
                # raise instantly, so charge the remainder.
                self.clock.advance(deadline - record.elapsed_seconds)
            response = self.clock.now() - stream.pending_arrival
            missed = bool(
                record.deadline_missed
                or record.failure_kind == TIMEOUT
                or (deadline is not None and response > deadline + 1e-12)
            )
            stream.misses += missed
            stream.responses.append(response)

        return observe

    # ------------------------------------------------------------------
    def run_events(self, max_events: int | None = None) -> list[dict]:
        """Advance up to ``max_events`` arrival events; collect outcomes."""
        completed: list[dict] = []
        processed = 0
        while self._events and (max_events is None or processed < max_events):
            timestamp, global_index, point = heapq.heappop(self._events)
            stream = self._streams[global_index]
            self.clock.advance_to(timestamp)
            stream.pending_arrival = timestamp
            stream.session.push(stream.values[:, point])
            stream.remaining -= 1
            processed += 1
            if stream.remaining == 0:
                completed.append(self._finish(stream))
        return completed

    def _finish(self, stream: _ShardStream) -> dict:
        """Close one fully replayed stream into a picklable outcome."""
        session = stream.session
        decision = session.decision
        if decision is None and session.n_observed:
            decision = session.finalize()
        counters = {
            name: value
            for name, value in stream.metrics.snapshot().items()
            if isinstance(value, int)
        }
        recoveries = 0
        if stream.breaker is not None:
            recoveries = sum(
                1
                for _, to_state, _, _ in stream.breaker.transitions
                if to_state == "closed"
            )
        del self._streams[stream.descriptor.global_index]
        return {
            "descriptor": stream.descriptor.as_dict(),
            "name": stream.name,
            "true_label": stream.true_label,
            "decision": decision,
            "responses": stream.responses,
            "n_consults": len(stream.responses),
            "misses": stream.misses,
            "n_points": stream.n_points,
            "counters": counters,
            "breaker_recoveries": recoveries,
            "completion_clock": self.clock.now(),
        }


def shard_main(conn, index: int) -> None:
    """Worker entry point: serve the coordinator until told to stop."""
    runtime = ShardRuntime(
        _SHARD_STATE["scenario"], _SHARD_STATE["bundles"], index
    )
    request_reply_loop(conn, runtime.handle, worker=index)
