"""Bounded admission queue with explicit load-shedding outcomes.

The fleet front-end admits every requested stream through one bounded
queue before any shard sees it. When the queue is full, the configured
policy decides — explicitly, never silently — which stream pays:

* ``reject-new`` — the offered stream is turned away (shed);
* ``shed-oldest`` — the oldest *waiting* stream is evicted to make room
  (the evictee is shed, the newcomer admitted);
* ``degrade`` — the offered stream never reaches a shard but is not
  dropped either: the coordinator answers it from the batched fallback.

The queue itself only decides placement; what "shed" and "degrade" do
to a stream is the coordinator's business. Failover re-admissions enter
at the *front* (they already waited once) and, when even that is
impossible, are always degraded rather than shed — a stream that was
admitted is never silently lost.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

from .config import SHED_DEGRADE, SHED_OLDEST, SHED_POLICIES, SHED_REJECT_NEW
from ..exceptions import ConfigurationError

__all__ = ["AdmissionDecision", "AdmissionQueue"]

#: What ``offer`` did with the stream.
ADMITTED = "admitted"
SHED = "shed"
DEGRADED = "degraded"


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one :meth:`AdmissionQueue.offer`.

    ``outcome`` applies to the *offered* item; ``displaced`` carries the
    previously waiting item the ``shed-oldest`` policy evicted (always
    shed), ``None`` otherwise.
    """

    outcome: str
    displaced: Any = None


class AdmissionQueue:
    """FIFO backlog of streams waiting for a shard slot, bounded."""

    def __init__(self, capacity: int, policy: str) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"admission capacity must be >= 1, got {capacity}"
            )
        if policy not in SHED_POLICIES:
            raise ConfigurationError(
                f"unknown shed policy {policy!r}; expected one of "
                f"{', '.join(SHED_POLICIES)}"
            )
        self.capacity = capacity
        self.policy = policy
        self._queue: deque = deque()
        self.n_offered = 0
        self.n_admitted = 0
        self.n_shed = 0
        self.n_degraded = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def is_empty(self) -> bool:
        return not self._queue

    def offer(self, item: Any) -> AdmissionDecision:
        """Apply the shedding policy to one newly requested stream."""
        self.n_offered += 1
        if len(self._queue) < self.capacity:
            self._queue.append(item)
            self.n_admitted += 1
            return AdmissionDecision(ADMITTED)
        if self.policy == SHED_REJECT_NEW:
            self.n_shed += 1
            return AdmissionDecision(SHED)
        if self.policy == SHED_OLDEST:
            displaced = self._queue.popleft()
            self._queue.append(item)
            self.n_admitted += 1
            self.n_shed += 1
            return AdmissionDecision(ADMITTED, displaced=displaced)
        # SHED_DEGRADE: the stream is answered by the batched fallback.
        self.n_degraded += 1
        return AdmissionDecision(DEGRADED)

    def readmit(self, item: Any) -> AdmissionDecision:
        """Front-of-queue re-admission after a shard failover.

        Overflow here always degrades (never sheds): the stream was
        already admitted once, so losing its shard must not silently
        revoke that admission.
        """
        if len(self._queue) < self.capacity:
            self._queue.appendleft(item)
            return AdmissionDecision(ADMITTED)
        self.n_degraded += 1
        return AdmissionDecision(DEGRADED)

    def take(self, n: int) -> list[Any]:
        """Pop up to ``n`` items from the front, in admission order."""
        taken = []
        while self._queue and len(taken) < n:
            taken.append(self._queue.popleft())
        return taken
