"""Fleet-wide and per-shard reports for one multi-tenant replay.

Mirrors the single-server :class:`repro.slo.report.ScenarioReport`
contract: everything in :meth:`FleetReport.deterministic_dict` is a pure
function of (scenario, fleet config, fault plan) and compares byte for
byte across runs; wall time and peak RSS are quarantined in the
``environment`` section. On top of the scenario report's latency/SLO
sections, a fleet report accounts for every *requested* stream — the
accounting invariant

``requested == decided + no_decision + degraded + shed``

is checked at construction, so a lost stream is a loud failure of the
coordinator, never a quietly smaller denominator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..core.streaming import LatencySummary, StreamingDecision
from ..exceptions import ReproError
from ..slo.scenario import Scenario
from .config import FleetConfig

__all__ = ["ShardSummary", "FleetReport"]


def _round(value: float, digits: int = 9) -> float:
    """Stabilize floats for JSON round-trips and cross-run comparison."""
    return round(float(value), digits)


def _latency_dict(latency: LatencySummary | None) -> dict | None:
    if latency is None:
        return None
    return {
        key: (_round(value) if isinstance(value, float) else value)
        for key, value in latency.as_dict().items()
    }


@dataclass
class ShardSummary:
    """What one shard *slot* (worker + any replacements) served."""

    shard: int
    streams_completed: int = 0
    n_consults: int = 0
    misses: int = 0
    latency: LatencySummary = field(default_factory=LatencySummary.empty)
    makespan_seconds: float = 0.0
    generations: int = 1  #: workers that served this slot (1 = never died)
    deaths: int = 0  #: times the slot's worker was declared dead

    def as_dict(self) -> dict:
        return {
            "shard": self.shard,
            "streams_completed": self.streams_completed,
            "consults": self.n_consults,
            "deadline_misses": self.misses,
            "latency": _latency_dict(self.latency),
            "makespan_seconds": _round(self.makespan_seconds),
            "generations": self.generations,
            "deaths": self.deaths,
        }


@dataclass
class FleetReport:
    """Everything one fleet replay produced."""

    scenario: Scenario
    config: FleetConfig
    n_requested: int = 0
    n_admitted: int = 0
    n_decided: int = 0
    n_no_decision: int = 0
    n_degraded: int = 0
    n_shed: int = 0
    n_points: int = 0
    n_consults: int = 0
    ticks: int = 0
    decisions: list[StreamingDecision] = field(default_factory=list)
    true_labels: list[int] = field(default_factory=list)
    latency: LatencySummary | None = None
    iqr_seconds: float = 0.0
    makespan_seconds: float = 0.0
    deadline_misses: int = 0
    failovers: int = 0
    batched_consults: int = 0
    breaker_trips: int = 0
    breaker_recoveries: int = 0
    shards: list[ShardSummary] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)
    environment: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        accounted = (
            self.n_decided + self.n_no_decision + self.n_degraded + self.n_shed
        )
        if accounted != self.n_requested:
            raise ReproError(
                f"fleet accounting violated: {self.n_requested} stream(s) "
                f"requested but {accounted} accounted for "
                f"({self.n_decided} decided + {self.n_no_decision} "
                f"undecided + {self.n_degraded} degraded + "
                f"{self.n_shed} shed)"
            )

    # ------------------------------------------------------------------
    @property
    def n_answered(self) -> int:
        """Streams that got a label: shard-decided plus batch-degraded."""
        return len(self.decisions)

    @property
    def accuracy(self) -> float:
        if not self.decisions:
            return 0.0
        hits = sum(
            1
            for decision, label in zip(self.decisions, self.true_labels)
            if decision.label == label
        )
        return hits / len(self.decisions)

    @property
    def mean_decided_at(self) -> float:
        if not self.decisions:
            return 0.0
        return sum(d.decided_at for d in self.decisions) / len(self.decisions)

    @property
    def deadline_miss_rate(self) -> float:
        return self.deadline_misses / self.n_consults if self.n_consults else 0.0

    @property
    def shed_rate(self) -> float:
        """Fraction of requested streams turned away unanswered."""
        return self.n_shed / self.n_requested if self.n_requested else 0.0

    @property
    def degraded_rate(self) -> float:
        """Fraction of requested streams answered by the batched fallback."""
        return self.n_degraded / self.n_requested if self.n_requested else 0.0

    @property
    def throughput_per_second(self) -> float:
        if self.makespan_seconds <= 0:
            return 0.0
        return self.n_consults / self.makespan_seconds

    # ------------------------------------------------------------------
    def deterministic_dict(self) -> dict[str, Any]:
        """The reproducible core: identical across same-plan replays."""
        return {
            "scenario": {
                "name": self.scenario.name,
                "seed": self.scenario.seed,
                "clock": self.scenario.clock,
                "deadline_ms": self.scenario.deadline_ms,
                "n_streams": self.scenario.n_streams,
            },
            "fleet": {**self.config.as_dict(), "ticks": self.ticks},
            "streams": {
                "requested": self.n_requested,
                "admitted": self.n_admitted,
                "decided": self.n_decided,
                "no_decision": self.n_no_decision,
                "degraded": self.n_degraded,
                "shed": self.n_shed,
                "accuracy": _round(self.accuracy),
                "mean_decided_at": _round(self.mean_decided_at),
            },
            "load": {
                "points": self.n_points,
                "consults": self.n_consults,
                "makespan_seconds": _round(self.makespan_seconds),
                "throughput_per_second": _round(self.throughput_per_second),
            },
            "latency": _latency_dict(self.latency),
            "jitter": {
                "stddev_seconds": _round(
                    self.latency.jitter if self.latency else 0.0
                ),
                "iqr_seconds": _round(self.iqr_seconds),
            },
            "slo": {
                "deadline_misses": self.deadline_misses,
                "deadline_miss_rate": _round(self.deadline_miss_rate),
                "shed_rate": _round(self.shed_rate),
                "degraded_rate": _round(self.degraded_rate),
                "failovers": self.failovers,
                "batched_consults": self.batched_consults,
                "breaker_trips": self.breaker_trips,
                "breaker_recoveries": self.breaker_recoveries,
            },
            "shards": [summary.as_dict() for summary in self.shards],
            "counters": dict(sorted(self.counters.items())),
        }

    def as_dict(self) -> dict[str, Any]:
        """Deterministic core plus the per-run ``environment`` section."""
        out = self.deterministic_dict()
        out["environment"] = dict(self.environment)
        return out

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Human-readable fleet report."""
        scenario, config = self.scenario, self.config
        deadline = (
            f"deadline={scenario.deadline_ms:g}ms"
            if scenario.deadline_ms is not None
            else "no deadline"
        )
        lines = [
            f"fleet {scenario.name!r}: {self.n_requested} stream(s) over "
            f"{config.n_shards} shard(s), {deadline}, "
            f"policy={config.shed_policy}, "
            f"max_active={config.max_active_per_shard}/shard, "
            f"admission_capacity={config.admission_capacity}",
            "",
            f"streams        {self.n_decided} decided, "
            f"{self.n_degraded} degraded, {self.n_shed} shed, "
            f"{self.n_no_decision} undecided of {self.n_requested} "
            f"requested; accuracy {self.accuracy:.3f}, "
            f"mean decision at point {self.mean_decided_at:.1f}",
            f"load           {self.n_points} point(s), {self.n_consults} "
            f"consultation(s) over {self.makespan_seconds:.3f}s makespan "
            f"({self.throughput_per_second:.1f} consults/s), "
            f"{self.ticks} tick(s)",
        ]
        if self.latency is not None:
            lat = self.latency
            lines += [
                "response latency (queueing wait + service):",
                "  p50 | p95 | p99 | p99.9 | max | jitter(std) | IQR",
                f"  {lat.p50 * 1000:.2f}ms | {lat.p95 * 1000:.2f}ms "
                f"| {lat.p99 * 1000:.2f}ms | {lat.p999 * 1000:.2f}ms "
                f"| {lat.max * 1000:.2f}ms | {lat.jitter * 1000:.2f}ms "
                f"| {self.iqr_seconds * 1000:.2f}ms",
            ]
        lines += [
            f"slo            {self.deadline_misses} deadline miss(es) "
            f"({100.0 * self.deadline_miss_rate:.1f}% of consults), "
            f"shed rate {100.0 * self.shed_rate:.1f}%, "
            f"degraded rate {100.0 * self.degraded_rate:.1f}%",
            f"resilience     {self.failovers} shard failover(s), "
            f"{self.batched_consults} batched fallback consult(s), "
            f"{self.breaker_trips} breaker trip(s), "
            f"{self.breaker_recoveries} recovery(ies)",
        ]
        for summary in self.shards:
            lat = summary.latency
            lines.append(
                f"shard {summary.shard:<3d}      "
                f"{summary.streams_completed} stream(s), "
                f"{summary.n_consults} consult(s), "
                f"{summary.misses} miss(es), p99 {lat.p99 * 1000:.2f}ms, "
                f"makespan {summary.makespan_seconds:.3f}s, "
                f"{summary.generations} generation(s), "
                f"{summary.deaths} death(s)"
            )
        if self.environment:
            peak = self.environment.get("peak_rss_kb")
            wall = self.environment.get("wall_seconds")
            facts = []
            if peak is not None:
                facts.append(f"peak RSS {peak / 1024.0:.1f} MiB")
            if wall is not None:
                facts.append(f"replay wall time {wall:.2f}s")
            if facts:
                lines.append(f"environment    {', '.join(facts)}")
        return "\n".join(lines)
