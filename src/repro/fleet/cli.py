"""serve-fleet: drive SLO scenarios through the sharded serving fleet.

``etsc-bench serve-fleet`` loads a scenario (bundled name or file path),
replays it through :func:`repro.fleet.coordinator.run_fleet` with the
configured shard count, admission bounds, shedding policy, and planned
faults, prints the fleet report, and optionally writes the JSON payload
(the same shape ``benchmarks/bench_fleet.py`` commits as
``BENCH_FLEET.json``).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

from ..exceptions import ConfigurationError, ReproError
from ..slo.scenario import Scenario, bundled_scenarios, resolve_scenario
from .config import SHED_POLICIES, SHED_REJECT_NEW, FleetConfig
from .coordinator import run_fleet
from .faults import parse_fleet_fault_specs

__all__ = ["main", "build_parser", "replicate_scenario"]


def _shards_argument(text: str) -> int:
    """``--shards`` accepts a positive integer or the literal ``auto``.

    ``auto`` resolves through :func:`repro.core.pool.available_cores`
    (the scheduling-affinity mask, not ``os.cpu_count()``), so a 1-core
    container gets 1 shard instead of an oversubscribed fleet.
    """
    if text == "auto":
        from ..core.pool import available_cores

        return available_cores()
    try:
        return int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {text!r}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    """The ``serve-fleet`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="etsc-bench serve-fleet",
        description=(
            "Serve scenario workloads through a sharded multi-tenant "
            "fleet with admission control, load shedding, and shard "
            "failover (see docs/serving.md)"
        ),
    )
    parser.add_argument(
        "--scenario",
        action="append",
        default=[],
        metavar="NAME-OR-PATH",
        help=(
            "scenario to serve: a bundled name (see --list) or a "
            "YAML/JSON file path; repeatable (default: all bundled)"
        ),
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list bundled scenarios, then exit",
    )
    parser.add_argument(
        "--shards", type=_shards_argument, default=2, metavar="N",
        help=(
            "shard workers in the fleet (default 2), or 'auto' to match "
            "the cores this process may actually use (sched_getaffinity; "
            "clamps to 1 on a 1-core box)"
        ),
    )
    parser.add_argument(
        "--max-active", type=int, default=64, metavar="N",
        help="in-flight session cap per shard (default 64)",
    )
    parser.add_argument(
        "--admission-capacity", type=int, default=256, metavar="N",
        help="bound on the admission backlog (default 256)",
    )
    parser.add_argument(
        "--policy",
        choices=SHED_POLICIES,
        default=SHED_REJECT_NEW,
        help="load-shedding policy when the backlog is full",
    )
    parser.add_argument(
        "--tick-events", type=int, default=256, metavar="N",
        help=(
            "arrival events each shard advances per coordinator tick; "
            "part of the deterministic contract (fault plans name ticks)"
        ),
    )
    parser.add_argument(
        "--heartbeat-timeout", type=float, default=30.0, metavar="SECONDS",
        help="real-time budget for a shard's tick reply (default 30)",
    )
    parser.add_argument(
        "--failover-limit", type=int, default=2, metavar="N",
        help=(
            "re-admissions one stream gets after losing its shard before "
            "it is degraded instead (default 2)"
        ),
    )
    parser.add_argument(
        "--kill-shard",
        action="append",
        default=[],
        metavar="SHARD@TICK",
        help=(
            "SIGKILL a shard worker at a tick boundary, e.g. 1@3; "
            "repeatable — failover must recover every in-flight stream"
        ),
    )
    parser.add_argument(
        "--hang-shard",
        action="append",
        default=[],
        metavar="SHARD@TICK",
        help=(
            "hang a shard worker at a tick boundary so only the "
            "heartbeat timeout catches it; repeatable"
        ),
    )
    parser.add_argument(
        "--replicate", type=int, default=1, metavar="N",
        help=(
            "multiply every stream spec's count by N (scale a bundled "
            "scenario to thousands of streams)"
        ),
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="write the combined fleet reports as JSON to PATH",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help=(
            "write a JSONL span trace; fleet.* counters are recomputable "
            "from it via python -m repro.obs.summary"
        ),
    )
    parser.add_argument(
        "--log-level",
        metavar="LEVEL",
        default=None,
        help="enable repro logging at LEVEL (debug/info/warning/error)",
    )
    parser.add_argument(
        "--kernel-backend",
        metavar="NAME",
        default=None,
        help=(
            "kernel backend for the hot numerical ops (naive/numpy/"
            "numpy32; default: $REPRO_KERNEL_BACKEND or numpy); forked "
            "shard workers inherit the selection, and reports are "
            "byte-identical across conforming backends"
        ),
    )
    return parser


def replicate_scenario(scenario: Scenario, factor: int) -> Scenario:
    """Scale a scenario's stream mix by ``factor`` (validated copy)."""
    if factor < 1:
        raise ConfigurationError(
            f"--replicate must be >= 1, got {factor}"
        )
    if factor == 1:
        return scenario
    return dataclasses.replace(
        scenario,
        streams=tuple(
            dataclasses.replace(spec, count=spec.count * factor)
            for spec in scenario.streams
        ),
    )


def _fault_specs(arguments) -> list[str]:
    return [f"kill:{spec}" for spec in arguments.kill_shard] + [
        f"hang:{spec}" for spec in arguments.hang_shard
    ]


def _run_all(names: list[str], arguments, out) -> dict:
    config = FleetConfig(
        n_shards=arguments.shards,
        max_active_per_shard=arguments.max_active,
        admission_capacity=arguments.admission_capacity,
        shed_policy=arguments.policy,
        tick_events=arguments.tick_events,
        heartbeat_timeout_seconds=arguments.heartbeat_timeout,
        failover_limit=arguments.failover_limit,
    )
    reports = {}
    for name in names:
        scenario = replicate_scenario(
            resolve_scenario(name), arguments.replicate
        )
        # A fresh fault plan per scenario: plans record fired directives.
        fault_plan = parse_fleet_fault_specs(_fault_specs(arguments))
        report = run_fleet(scenario, config, fault_plan)
        print(report.render(), file=out)
        print("", file=out)
        reports[scenario.name] = report.as_dict()
    return reports


def main(argv: list[str] | None = None, out=None) -> int:
    """``serve-fleet`` entry point; returns a process exit code."""
    out = out or sys.stdout
    arguments = build_parser().parse_args(argv)
    if arguments.kernel_backend:
        from ..stats.backends import set_default_backend

        try:
            set_default_backend(arguments.kernel_backend)
        except ConfigurationError as error:
            print(f"error: {error}", file=out)
            return 2
    if arguments.log_level:
        from ..obs.logging import configure_logging

        configure_logging(arguments.log_level)
    bundled = bundled_scenarios()
    if arguments.list:
        print("bundled scenarios:", file=out)
        for name, path in bundled.items():
            print(f"  {name:12s} {path}", file=out)
        return 0
    names = arguments.scenario or sorted(bundled)
    if not names:
        print("error: no scenarios bundled and none given", file=out)
        return 2
    try:
        if arguments.trace:
            from ..obs.events import TraceWriter
            from ..obs.trace import Tracer, use_tracer

            with TraceWriter(arguments.trace) as writer:
                with use_tracer(Tracer(on_finish=writer.write_span)):
                    reports = _run_all(names, arguments, out)
            print(
                f"trace written to {arguments.trace} "
                f"({writer.n_spans} spans)",
                file=out,
            )
        else:
            reports = _run_all(names, arguments, out)
    except ConfigurationError as error:
        print(f"error: {error}", file=out)
        return 2
    except ReproError as error:
        print(f"serve-fleet failed: {error}", file=out)
        return 1
    if arguments.output:
        payload = {"fleets": reports}
        Path(arguments.output).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"reports written to {arguments.output}", file=out)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    raise SystemExit(main())
