"""Multi-tenant serving fleet: sharded workers above the guarded sessions.

The paper's framework evaluates early classifiers one stream at a time;
the serving layer (PR 4) hardened one stream, and the SLO harness
(PR 6) replayed declarative workloads through one simulated server.
This package scales that to a **fleet**: a front-end multiplexing
thousands of concurrent guarded streams across forked shard workers,
with the robustness concerns a real multi-tenant deployment has *above*
any single session's guard/deadline/breaker/fallback stack:

* bounded **admission** with explicit load-shedding policies
  (reject-new / shed-oldest / degrade-to-fallback);
* per-shard **health tracking** — a worker that is SIGKILLed, crashes,
  or hangs is detected (pipe EOF or heartbeat timeout) and its in-flight
  streams **fail over**: re-admitted in deterministic order or answered
  by the batched fallback, never silently dropped;
* **batched degradation** through the all-pairs prefix-distance kernels
  (:meth:`~repro.serve.fallback.FallbackPredictor.predict_prefix_batch`);
* deterministic **commitment**: shards execute, the parent commits in
  ``global_index`` order, so the fleet report is byte-identical across
  runs given the same scenario, config, and fault plan — even when the
  fault plan delivers real ``SIGKILL``\\ s mid-replay.

``etsc-bench serve-fleet`` drives SLO scenarios (:mod:`repro.slo`)
against the fleet and reports per-shard and fleet-wide latency
quantiles to p99.9, shed/degraded/failover rates, and ``fleet.*``
counters recomputable from a trace via
:func:`repro.obs.metrics.metrics_from_spans` (``docs/serving.md``).
"""

from .admission import AdmissionDecision, AdmissionQueue
from .config import (
    SHED_DEGRADE,
    SHED_OLDEST,
    SHED_POLICIES,
    SHED_REJECT_NEW,
    FleetConfig,
)
from .coordinator import run_fleet
from .faults import FleetFaultPlan, parse_fleet_fault_specs
from .report import FleetReport, ShardSummary
from .shard import ShardRuntime, StreamDescriptor

__all__ = [
    "AdmissionDecision",
    "AdmissionQueue",
    "FleetConfig",
    "SHED_POLICIES",
    "SHED_REJECT_NEW",
    "SHED_OLDEST",
    "SHED_DEGRADE",
    "run_fleet",
    "FleetFaultPlan",
    "parse_fleet_fault_specs",
    "FleetReport",
    "ShardSummary",
    "ShardRuntime",
    "StreamDescriptor",
]
