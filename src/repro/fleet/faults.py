"""Planned shard faults: real kills at deterministic tick boundaries.

The serve layer's chaos plan (:mod:`repro.serve.chaos`) injects
*in-process* failures — raised exceptions at push or consult time. A
fleet fault is a different animal: the whole shard worker dies. To keep
the final report deterministic while the failure stays real, a fleet
fault plan names **tick boundaries**: ``kill:1@3`` SIGKILLs shard 1's
worker process when the coordinator reaches tick 3, ``hang:0@2`` parks
shard 0's worker in a busy-wait so only the heartbeat timeout can catch
it. Both then route through the coordinator's ordinary failover path —
the same path an *unplanned* external SIGKILL takes, just at a
reproducible point in the replay.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..exceptions import ConfigurationError

__all__ = [
    "FAULT_KILL",
    "FAULT_HANG",
    "FLEET_FAULT_KINDS",
    "FleetFaultPlan",
    "parse_fleet_fault_specs",
]

FAULT_KILL = "kill"
FAULT_HANG = "hang"

#: Fault kinds a fleet plan can schedule.
FLEET_FAULT_KINDS = (FAULT_KILL, FAULT_HANG)

_SPEC = re.compile(r"^(?P<kind>[a-z-]+):(?P<shard>\d+)@(?P<tick>\d+)$")


@dataclass(frozen=True)
class FleetFaultPlan:
    """Scheduled ``(kind, shard, tick)`` directives for one fleet run."""

    directives: tuple[tuple[str, int, int], ...] = ()

    #: Shards already struck (a directive fires at most once even if the
    #: replacement worker reuses the shard slot).
    _fired: set = field(default_factory=set, compare=False, hash=False)

    @property
    def n_directives(self) -> int:
        return len(self.directives)

    def at_tick(self, tick: int) -> list[tuple[str, int]]:
        """``(kind, shard)`` directives due at ``tick``, in spec order."""
        due = []
        for index, (kind, shard, when) in enumerate(self.directives):
            if when == tick and index not in self._fired:
                self._fired.add(index)
                due.append((kind, shard))
        return due

    def validate_for(self, n_shards: int) -> None:
        """Reject directives naming shards the fleet does not have."""
        for kind, shard, tick in self.directives:
            if shard >= n_shards:
                raise ConfigurationError(
                    f"fault {kind}:{shard}@{tick} names shard {shard} but "
                    f"the fleet has only {n_shards} shard(s)"
                )


def parse_fleet_fault_specs(specs: list[str]) -> FleetFaultPlan:
    """Parse ``kind:SHARD@TICK`` specs into a :class:`FleetFaultPlan`.

    Examples: ``kill:1@3`` (SIGKILL shard 1 at tick 3), ``hang:0@2``
    (park shard 0 at tick 2 until the heartbeat timeout catches it).
    """
    directives: list[tuple[str, int, int]] = []
    for spec in specs:
        match = _SPEC.match(str(spec).strip())
        if match is None:
            raise ConfigurationError(
                f"malformed fleet fault spec {spec!r}; expected "
                f"kind:SHARD@TICK, e.g. kill:1@3"
            )
        kind = match.group("kind")
        if kind not in FLEET_FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fleet fault kind {kind!r} in {spec!r}; expected "
                f"one of {', '.join(FLEET_FAULT_KINDS)}"
            )
        directives.append(
            (kind, int(match.group("shard")), int(match.group("tick")))
        )
    return FleetFaultPlan(directives=tuple(directives))
