"""The fleet coordinator: admission, dispatch, failover, commitment.

``run_fleet`` multiplexes a scenario's streams across a pool of forked
shard workers and commits their outcomes deterministically, extending
the runner's execution/commitment split (PR 5) from one-shot grid cells
to long-lived serving sessions:

* **Execution** happens in shard workers. Each shard is one simulated
  server (its own virtual clock); streams assigned to it replay in the
  same canonical event order the single-server harness uses, so a
  one-shard fleet reproduces :func:`repro.slo.harness.run_scenario`
  stream for stream.
* **Commitment** happens here. A stream's records leave its shard only
  together with its final decision, so the parent can aggregate every
  total in ``global_index`` order regardless of which worker — or which
  *replacement* worker — ran the stream.

The robustness layering above the per-session defences (guard →
deadline → breaker → fallback) is:

1. **Admission** — every requested stream passes the bounded
   :class:`~repro.fleet.admission.AdmissionQueue`; overflow triggers the
   configured shedding policy (reject-new / shed-oldest / degrade).
2. **Dispatch** — waiting streams fill shard slots up to
   ``max_active_per_shard``; shards advance ``tick_events`` arrival
   events per coordinator tick, all shards in parallel.
3. **Failover** — a shard that dies (planned SIGKILL from the fault
   plan, an external kill, a crash, or a hang caught by the heartbeat
   timeout) has its in-flight streams re-admitted at the front of the
   queue in ``global_index`` order — or degraded, past the per-stream
   failover limit — and its slot restarted with a fresh worker. Nothing
   is ever silently dropped: the report's accounting invariant
   ``requested == decided + no_decision + degraded + shed`` is enforced.
4. **Batched degradation** — streams the fleet answers without a model
   (admission overflow under the ``degrade`` policy, failover-limit
   exhaustion) are grouped per (algorithm, dataset) bundle and answered
   through one :meth:`FallbackPredictor.predict_prefix_batch` call —
   the all-pairs prefix-distance kernels — per group per tick.

Planned faults make chaos reproducible: ``kill:1@3`` delivers a *real*
``SIGKILL`` to shard 1's worker at tick 3, so the failure mode is the
genuine article while the final report stays a pure function of
(scenario, config, fault plan). Pass a **fresh** fault plan per run —
plans record which directives already fired.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.pool import WorkerDied, fork_available, spawn_worker
from ..core.streaming import LatencySummary, StreamingDecision
from ..exceptions import ConfigurationError, ReproError
from ..obs.logging import get_logger
from ..obs.trace import get_tracer
from ..slo.harness import _environment, train_scenario_bundles
from ..slo.scenario import CLOCK_VIRTUAL, Scenario
from .admission import ADMITTED, DEGRADED, SHED, AdmissionQueue
from .config import FleetConfig
from .faults import FAULT_KILL, FleetFaultPlan
from .report import FleetReport, ShardSummary
from .shard import ShardRuntime, StreamDescriptor, set_shard_state, shard_main

__all__ = ["run_fleet"]

_logger = get_logger("fleet")

#: Stream outcome kinds, as committed by the coordinator.
OUTCOME_DECIDED = "decided"
OUTCOME_NO_DECISION = "no_decision"
OUTCOME_DEGRADED = "degraded"
OUTCOME_SHED = "shed"


class _ShardSlot:
    """One shard slot: the current worker plus slot-lifetime aggregates."""

    def __init__(self, index: int, use_fork: bool) -> None:
        self.index = index
        self.use_fork = use_fork
        self.handle = None
        self.runtime: ShardRuntime | None = None
        self._inbox: list[dict] = []
        self.assigned: dict[int, StreamDescriptor] = {}
        self.generations = 0
        self.deaths = 0
        self.dead = False
        self.streams_completed = 0
        self.n_consults = 0
        self.misses = 0
        self.responses: list[float] = []
        self.last_clock = 0.0

    # ------------------------------------------------------------------
    def start(self, scenario: Scenario, bundles: dict) -> None:
        self.generations += 1
        self.dead = False
        if self.use_fork:
            self.handle = spawn_worker(self.index, shard_main, name="shard")
        else:
            self.runtime = ShardRuntime(scenario, bundles, self.index)

    def send(self, message: dict) -> None:
        if self.use_fork:
            self.handle.send(message)
        else:
            self._inbox.append(self.runtime.handle(message))

    def recv(self, timeout: float) -> dict:
        if self.use_fork:
            return self.handle.recv(timeout)
        return self._inbox.pop(0)

    def kill(self, reason: str) -> None:
        """Real SIGKILL (fork mode); marks the slot dead either way."""
        self.dead = True
        if self.use_fork and self.handle is not None:
            self.handle.kill(reason)

    def hang(self) -> None:
        """Park the worker; only the heartbeat timeout can catch it."""
        if not self.use_fork:
            raise ConfigurationError(
                "hang faults need forked shard workers"
            )
        self.handle.send({"cmd": "hang"})

    def stop(self) -> None:
        if self.use_fork and self.handle is not None and not self.dead:
            self.handle.stop()

    def restart(self, scenario: Scenario, bundles: dict) -> None:
        """Replace a dead worker with a fresh one on the same slot."""
        if self.use_fork and self.handle is not None:
            self.handle.kill("restarting slot")  # idempotent if already dead
        self._inbox.clear()
        self.start(scenario, bundles)


@dataclass
class _StreamState:
    """Parent-side bookkeeping for one requested stream."""

    descriptor: StreamDescriptor
    admitted: bool = False
    failovers: int = 0
    outcome: str | None = None
    shard: int | None = None
    shed_reason: str | None = None
    result: dict | None = None
    batched: bool = False


def run_fleet(
    scenario: Scenario,
    config: FleetConfig | None = None,
    fault_plan: FleetFaultPlan | None = None,
    *,
    algorithms=None,
    datasets=None,
) -> FleetReport:
    """Serve ``scenario`` through a sharded fleet; return its report.

    ``algorithms``/``datasets`` default to the standard registries at
    the scenario's scale and seed, as in ``run_scenario``; tests inject
    tiny custom registries. The report is deterministic given the same
    (scenario, config, fault plan) — byte-identical on
    :meth:`FleetReport.deterministic_dict`.
    """
    wall_start = time.perf_counter()
    config = config if config is not None else FleetConfig()
    fault_plan = fault_plan if fault_plan is not None else FleetFaultPlan()
    fault_plan.validate_for(config.n_shards)
    if scenario.clock != CLOCK_VIRTUAL:
        raise ConfigurationError(
            "the fleet replays virtual-clock scenarios only (per-shard "
            "wall-clock timing is not comparable across forked workers)"
        )
    use_fork = fork_available()
    if not use_fork and fault_plan.n_directives:
        raise ConfigurationError(
            "fleet fault plans need forked shard workers, and the fork "
            "start method is unavailable on this platform"
        )

    # -- train once in the parent; workers inherit by copy-on-write ----
    bundles = train_scenario_bundles(scenario, algorithms, datasets)
    set_shard_state(scenario, bundles)

    # -- enumerate the requested streams deterministically --------------
    streams: dict[int, _StreamState] = {}
    global_index = 0
    for spec_index, spec in enumerate(scenario.streams):
        for i in range(spec.count):
            descriptor = StreamDescriptor(global_index, spec_index, i)
            streams[global_index] = _StreamState(descriptor)
            global_index += 1
    n_requested = len(streams)

    # -- admission: every stream passes the bounded queue ---------------
    queue = AdmissionQueue(config.admission_capacity, config.shed_policy)
    degrade_pending: list[StreamDescriptor] = []
    for g in range(n_requested):
        state = streams[g]
        decision = queue.offer(state.descriptor)
        if decision.displaced is not None:
            evicted = streams[decision.displaced.global_index]
            evicted.outcome = OUTCOME_SHED
            evicted.shed_reason = "evicted from admission queue (shed-oldest)"
        if decision.outcome == ADMITTED:
            state.admitted = True
        elif decision.outcome == SHED:
            state.outcome = OUTCOME_SHED
            state.shed_reason = "admission queue full (reject-new)"
        elif decision.outcome == DEGRADED:
            degrade_pending.append(state.descriptor)

    # -- spawn the shard fleet ------------------------------------------
    slots = [_ShardSlot(i, use_fork) for i in range(config.n_shards)]
    for slot in slots:
        slot.start(scenario, bundles)

    failovers = 0
    death_events: list[tuple[int, int]] = []  # (tick, shard)
    batched_consults = 0
    tick = 0
    total_events = sum(
        bundles[
            (
                scenario.streams[s.descriptor.spec_index].algorithm,
                scenario.streams[s.descriptor.spec_index].dataset,
            )
        ].test.values.shape[2]
        for s in streams.values()
    )
    # Generous runaway guard: every event re-run once per allowed
    # failover, plus slack for dispatch-only ticks.
    max_ticks = (
        (config.failover_limit + 2)
        * (total_events // config.tick_events + n_requested + 16)
        + 64
    )

    def commit_outcome(slot: _ShardSlot, outcome: dict) -> None:
        g = int(outcome["descriptor"]["global_index"])
        state = streams[g]
        slot.assigned.pop(g, None)
        state.outcome = (
            OUTCOME_DECIDED
            if outcome["decision"] is not None
            else OUTCOME_NO_DECISION
        )
        state.shard = slot.index
        state.result = outcome
        slot.streams_completed += 1
        slot.n_consults += outcome["n_consults"]
        slot.misses += outcome["misses"]
        slot.responses.extend(outcome["responses"])
        slot.last_clock = max(slot.last_clock, outcome["completion_clock"])

    def degrade_batch(pending: list[StreamDescriptor]) -> None:
        """Answer ``pending`` from the batched fallback, or shed them."""
        nonlocal batched_consults
        pending = sorted(pending, key=lambda d: d.global_index)
        groups: dict[tuple[str, str], list[StreamDescriptor]] = {}
        for descriptor in pending:
            spec = scenario.streams[descriptor.spec_index]
            groups.setdefault((spec.algorithm, spec.dataset), []).append(
                descriptor
            )
        for key in sorted(groups):
            bundle = bundles[key]
            members = groups[key]
            test = bundle.test
            length = test.values.shape[2]
            if bundle.fallback is None:
                for descriptor in members:
                    state = streams[descriptor.global_index]
                    state.outcome = OUTCOME_SHED
                    state.shed_reason = (
                        "degradation requested but the scenario has no "
                        "fallback"
                    )
                continue
            instances = [
                descriptor.stream_i % test.n_instances
                for descriptor in members
            ]
            prefixes = np.stack([test.values[i] for i in instances])
            predictions = bundle.fallback.predict_prefix_batch(
                prefixes, length
            )
            batched_consults += 1
            for descriptor, instance, prediction in zip(
                members, instances, predictions
            ):
                state = streams[descriptor.global_index]
                state.outcome = OUTCOME_DEGRADED
                state.batched = True
                state.result = {
                    "descriptor": descriptor.as_dict(),
                    "name": f"{key[1]}[{instance}]@{key[0]}",
                    "true_label": int(test.labels[instance]),
                    "decision": StreamingDecision(
                        label=prediction.label,
                        decided_at=prediction.prefix_length,
                        confidence=prediction.confidence,
                        degraded=True,
                        source=prediction.source,
                    ),
                    "responses": [],
                    "n_consults": 0,
                    "misses": 0,
                    "n_points": 0,
                    "counters": {},
                    "breaker_recoveries": 0,
                    "completion_clock": 0.0,
                }

    # -- the tick loop ---------------------------------------------------
    try:
        while True:
            # 1. Planned faults fire at this deterministic tick boundary.
            for kind, shard_index in fault_plan.at_tick(tick):
                slot = slots[shard_index]
                if kind == FAULT_KILL:
                    _logger.warning(
                        "fault plan: SIGKILL shard %d at tick %d",
                        shard_index, tick,
                    )
                    slot.kill(f"fault plan kill at tick {tick}")
                else:
                    _logger.warning(
                        "fault plan: hanging shard %d at tick %d",
                        shard_index, tick,
                    )
                    try:
                        slot.hang()
                    except WorkerDied:
                        slot.dead = True

            # 2. Dispatch phase: fill slots, send tick requests.
            ticked: list[_ShardSlot] = []
            for slot in slots:
                if slot.dead:
                    continue
                free = config.max_active_per_shard - len(slot.assigned)
                batch = queue.take(free) if free > 0 else []
                for descriptor in batch:
                    slot.assigned[descriptor.global_index] = descriptor
                try:
                    slot.send(
                        {
                            "cmd": "tick",
                            "streams": [d.as_dict() for d in batch],
                            "max_events": config.tick_events,
                        }
                    )
                except WorkerDied:
                    slot.dead = True
                    continue
                ticked.append(slot)

            # 3. Collect phase, in shard index order (deterministic).
            for slot in ticked:
                try:
                    reply = slot.recv(config.heartbeat_timeout_seconds)
                except WorkerDied:
                    slot.dead = True
                    continue
                if reply.get("error"):
                    raise ReproError(
                        f"shard {slot.index} failed: {reply['error']}"
                    )
                slot.last_clock = max(slot.last_clock, reply.get("clock", 0.0))
                for outcome in reply.get("outcomes", ()):
                    commit_outcome(slot, outcome)

            # 4. Failover: re-admit or degrade the dead shards' streams.
            for slot in slots:
                if not slot.dead:
                    continue
                slot.deaths += 1
                failovers += 1
                death_events.append((tick, slot.index))
                victims = sorted(slot.assigned)
                _logger.warning(
                    "shard %d died with %d stream(s) in flight; failing "
                    "over", slot.index, len(victims),
                )
                # Front-of-queue re-admission preserves global order:
                # insert in reverse so the lowest index ends up first.
                for g in reversed(victims):
                    descriptor = slot.assigned.pop(g)
                    state = streams[g]
                    state.failovers += 1
                    if state.failovers > config.failover_limit:
                        degrade_pending.append(descriptor)
                        continue
                    decision = queue.readmit(descriptor)
                    if decision.outcome == DEGRADED:
                        degrade_pending.append(descriptor)
                slot.restart(scenario, bundles)

            # 5. Batched degradation for everything marked this tick.
            if degrade_pending:
                degrade_batch(degrade_pending)
                degrade_pending = []

            tick += 1
            if queue.is_empty and all(not slot.assigned for slot in slots):
                break
            if tick > max_ticks:
                raise ReproError(
                    f"fleet did not converge within {max_ticks} ticks "
                    f"(queue={len(queue)}, in-flight="
                    f"{sum(len(s.assigned) for s in slots)})"
                )
    finally:
        for slot in slots:
            try:
                slot.stop()
            except WorkerDied:  # pragma: no cover - racing shutdown
                pass

    # -- commitment: aggregate in global_index order ---------------------
    tracer = get_tracer()
    decisions: list[StreamingDecision] = []
    true_labels: list[int] = []
    responses: list[float] = []
    n_decided = n_no_decision = n_degraded = n_shed = 0
    n_points = misses = recoveries = 0
    counters: dict[str, int] = {}
    for g in range(n_requested):
        state = streams[g]
        if state.outcome is None:  # pragma: no cover - loop invariant
            raise ReproError(f"stream {g} fell through the fleet unaccounted")
        if state.outcome == OUTCOME_SHED:
            n_shed += 1
        elif state.outcome == OUTCOME_DEGRADED:
            n_degraded += 1
        elif state.outcome == OUTCOME_NO_DECISION:
            n_no_decision += 1
        else:
            n_decided += 1
        result = state.result
        if result is not None:
            if result["decision"] is not None:
                decisions.append(result["decision"])
                true_labels.append(result["true_label"])
            responses.extend(result["responses"])
            n_points += result["n_points"]
            misses += result["misses"]
            recoveries += result["breaker_recoveries"]
            for name, value in result["counters"].items():
                counters[name] = counters.get(name, 0) + value
        with tracer.span(
            "fleet_stream",
            stream=g,
            stream_name=result["name"] if result else None,
        ) as span:
            span.set_attribute("fleet.outcome", state.outcome)
            span.set_attribute("fleet.admitted", state.admitted)
            span.set_attribute("fleet.failovers", state.failovers)
            span.set_attribute("fleet.batched", state.batched)
            if state.shard is not None:
                span.set_attribute("fleet.shard", state.shard)
    for _ in range(batched_consults):
        with tracer.span("fleet_batch"):
            pass
    for death_tick, shard_index in death_events:
        with tracer.span(
            "fleet_failover", shard=shard_index, tick=death_tick
        ):
            pass

    counters.update(
        {
            "fleet.requested": n_requested,
            "fleet.admitted": queue.n_admitted,
            "fleet.decided": n_decided,
            "fleet.no_decision": n_no_decision,
            "fleet.degraded": n_degraded,
            "fleet.shed": n_shed,
            "fleet.failovers": failovers,
            "fleet.stream_failovers": sum(
                state.failovers for state in streams.values()
            ),
            "fleet.batched_consults": batched_consults,
        }
    )

    deadline = scenario.deadline_seconds
    latency = None
    iqr = 0.0
    if responses:
        sample = np.asarray(responses, dtype=float)
        latency = LatencySummary.from_latencies(sample, budget_seconds=deadline)
        iqr = float(np.quantile(sample, 0.75) - np.quantile(sample, 0.25))
    shard_summaries = [
        ShardSummary(
            shard=slot.index,
            streams_completed=slot.streams_completed,
            n_consults=slot.n_consults,
            misses=slot.misses,
            latency=LatencySummary.from_latencies(
                slot.responses, budget_seconds=deadline
            ),
            makespan_seconds=slot.last_clock,
            generations=slot.generations,
            deaths=slot.deaths,
        )
        for slot in slots
    ]
    return FleetReport(
        scenario=scenario,
        config=config,
        n_requested=n_requested,
        n_admitted=queue.n_admitted,
        n_decided=n_decided,
        n_no_decision=n_no_decision,
        n_degraded=n_degraded,
        n_shed=n_shed,
        n_points=n_points,
        n_consults=len(responses),
        ticks=tick,
        decisions=decisions,
        true_labels=true_labels,
        latency=latency,
        iqr_seconds=iqr,
        makespan_seconds=max(
            (slot.last_clock for slot in slots), default=0.0
        ),
        deadline_misses=misses,
        failovers=failovers,
        batched_consults=batched_consults,
        breaker_trips=counters.get("serve.breaker_trips", 0),
        breaker_recoveries=recoveries,
        shards=shard_summaries,
        counters=counters,
        environment=_environment(time.perf_counter() - wall_start),
    )
