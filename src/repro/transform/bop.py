"""Bag-of-patterns feature construction over SFA words.

WEASEL's feature vector for a series is the histogram of its SFA words
(unigrams) and of pairs of adjacent non-overlapping words (bigrams), pooled
over several window lengths. :class:`BagOfPatterns` builds the count matrix
for one window length; :func:`stack_bags` concatenates several.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DataError, NotFittedError
from .sfa import SFATransformer
from .windows import extract_windows

__all__ = ["BagOfPatterns", "stack_bags"]


class BagOfPatterns:
    """Word/bigram count features for one window length.

    The transformer learns an SFA discretisation on the training windows and
    a vocabulary mapping observed (window-length-tagged) words to feature
    columns. Unseen words at transform time are dropped, mirroring the usual
    bag-of-words behaviour.

    Parameters
    ----------
    window:
        Sliding-window width.
    word_length, alphabet_size, binning:
        Forwarded to :class:`~repro.transform.sfa.SFATransformer`.
    use_bigrams:
        Also count pairs of words one window-width apart.
    """

    def __init__(
        self,
        window: int,
        word_length: int = 4,
        alphabet_size: int = 4,
        binning: str = "information-gain",
        use_bigrams: bool = True,
    ) -> None:
        if window < 1:
            raise DataError(f"window must be >= 1, got {window}")
        self.window = window
        self.use_bigrams = use_bigrams
        self._sfa = SFATransformer(
            word_length=word_length,
            alphabet_size=alphabet_size,
            binning=binning,
        )
        self.vocabulary_: dict[int, int] | None = None

    # ------------------------------------------------------------------
    def _series_tokens(self, words: np.ndarray, owners: np.ndarray, n_series: int) -> list[np.ndarray]:
        """Split the flat word array back into per-series word sequences."""
        tokens: list[np.ndarray] = []
        for series_index in range(n_series):
            tokens.append(words[owners == series_index])
        return tokens

    def _emit_tokens(self, word_sequence: np.ndarray) -> np.ndarray:
        """Unigram (and optionally bigram) token codes for one series."""
        base = self._sfa.vocabulary_size
        unigrams = word_sequence
        if not self.use_bigrams or word_sequence.size <= self.window:
            return unigrams
        # Bigrams pair each word with the word one window-width earlier,
        # offset into a disjoint code range.
        left = word_sequence[: -self.window]
        right = word_sequence[self.window :]
        bigrams = base + left * base + right
        return np.concatenate([unigrams, bigrams])

    # ------------------------------------------------------------------
    def fit(self, series_matrix: np.ndarray, labels: np.ndarray) -> "BagOfPatterns":
        """Learn SFA bins and the token vocabulary from training series."""
        series_matrix = np.asarray(series_matrix, dtype=float)
        windows, owners = extract_windows(series_matrix, self.window)
        window_labels = np.asarray(labels)[owners]
        words = self._sfa.fit_transform_words(windows, window_labels)
        vocabulary: dict[int, int] = {}
        for sequence in self._series_tokens(words, owners, series_matrix.shape[0]):
            for token in self._emit_tokens(sequence):
                token = int(token)
                if token not in vocabulary:
                    vocabulary[token] = len(vocabulary)
        self.vocabulary_ = vocabulary
        return self

    def transform(self, series_matrix: np.ndarray) -> np.ndarray:
        """Count matrix of shape ``(n_series, len(vocabulary_))``."""
        if self.vocabulary_ is None:
            raise NotFittedError("BagOfPatterns used before fit")
        series_matrix = np.asarray(series_matrix, dtype=float)
        if series_matrix.shape[1] < self.window:
            # Series shorter than the window contribute no tokens at all.
            return np.zeros((series_matrix.shape[0], len(self.vocabulary_)))
        windows, owners = extract_windows(series_matrix, self.window)
        words = self._sfa.transform_words(windows)
        counts = np.zeros(
            (series_matrix.shape[0], len(self.vocabulary_)), dtype=float
        )
        for series_index, sequence in enumerate(
            self._series_tokens(words, owners, series_matrix.shape[0])
        ):
            for token in self._emit_tokens(sequence):
                column = self.vocabulary_.get(int(token))
                if column is not None:
                    counts[series_index, column] += 1.0
        return counts

    def fit_transform(self, series_matrix: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Fit on the series then return their count matrix."""
        return self.fit(series_matrix, labels).transform(series_matrix)

    @property
    def n_features(self) -> int:
        """Vocabulary size after fit."""
        if self.vocabulary_ is None:
            raise NotFittedError("BagOfPatterns used before fit")
        return len(self.vocabulary_)


def stack_bags(
    bags: list[BagOfPatterns], series_matrix: np.ndarray
) -> np.ndarray:
    """Concatenate the count matrices of several fitted bags column-wise."""
    if not bags:
        raise DataError("stack_bags needs at least one bag")
    return np.concatenate([bag.transform(series_matrix) for bag in bags], axis=1)
