"""Window and prefix utilities shared by the symbolic transforms.

WEASEL slides windows of several lengths over each series; ECEC and TEASER
chop training series into ``N`` (respectively ``S``) overlapping prefixes
whose lengths step from ``ceil(L / N)`` to ``L``. Both families of slicing
live here.
"""

from __future__ import annotations

import math

import numpy as np

from ..exceptions import DataError
from ..stats.distance import sliding_window_view

__all__ = ["extract_windows", "prefix_lengths", "window_lengths"]


def extract_windows(
    series_matrix: np.ndarray, window: int
) -> tuple[np.ndarray, np.ndarray]:
    """Slide a window over every row of ``series_matrix``.

    Parameters
    ----------
    series_matrix:
        Array of shape ``(n_series, length)``.
    window:
        Window width, at most ``length``.

    Returns
    -------
    windows:
        Array of shape ``(n_series * n_positions, window)`` with all windows
        of all series stacked, position-major within each series.
    owners:
        Row index into ``series_matrix`` for each window.
    """
    series_matrix = np.asarray(series_matrix, dtype=float)
    if series_matrix.ndim != 2:
        raise DataError(
            f"expected a 2-D series matrix, got shape {series_matrix.shape}"
        )
    n_series, length = series_matrix.shape
    if not 1 <= window <= length:
        raise DataError(f"window must be in [1, {length}], got {window}")
    stacked = [sliding_window_view(row, window) for row in series_matrix]
    n_positions = length - window + 1
    owners = np.repeat(np.arange(n_series), n_positions)
    return np.concatenate(stacked, axis=0), owners


def prefix_lengths(length: int, n_prefixes: int) -> list[int]:
    """The ECEC/TEASER prefix ladder: ``ceil(L/N), 2*ceil(L/N), ..., L``.

    The last entry is always the full length; duplicates collapse, so short
    series may yield fewer than ``n_prefixes`` distinct lengths.
    """
    if length < 1:
        raise DataError(f"length must be >= 1, got {length}")
    if n_prefixes < 1:
        raise DataError(f"n_prefixes must be >= 1, got {n_prefixes}")
    step = math.ceil(length / n_prefixes)
    ladder = list(range(step, length + 1, step))
    if not ladder or ladder[-1] != length:
        ladder.append(length)
    return sorted(set(ladder))


def window_lengths(length: int, minimum: int = 4, n_sizes: int = 6) -> list[int]:
    """WEASEL's set of window widths for a series of the given length.

    Geometrically spaced between ``minimum`` and the series length, clipped
    and deduplicated. Short series fall back to the lengths that fit.
    """
    if length < 2:
        return [max(1, length)]
    minimum = min(minimum, length)
    maximum = max(minimum, length)
    if n_sizes == 1 or minimum == maximum:
        return [minimum]
    ratios = np.linspace(0.0, 1.0, n_sizes)
    sizes = np.unique(
        np.round(minimum * (maximum / minimum) ** ratios).astype(int)
    )
    return [int(size) for size in sizes if 1 <= size <= length]
