"""Symbolic and windowing transforms (SFA, bag-of-patterns, prefixes)."""

from .bop import BagOfPatterns, stack_bags
from .sfa import SFATransformer, fourier_coefficients
from .windows import extract_windows, prefix_lengths, window_lengths

__all__ = [
    "BagOfPatterns",
    "stack_bags",
    "SFATransformer",
    "fourier_coefficients",
    "extract_windows",
    "prefix_lengths",
    "window_lengths",
]
