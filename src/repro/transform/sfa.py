"""Symbolic Fourier Approximation (SFA) with information-gain binning.

WEASEL turns each sliding window into a short *word* over a small alphabet:

1. the window is approximated by its first Fourier coefficients
   (:func:`fourier_coefficients`);
2. each retained coefficient is discretised into one symbol using per-
   coefficient bin boundaries learned on the training windows — either
   equi-depth quantiles or, as in WEASEL, boundaries chosen to maximise
   information gain against the class labels (:class:`SFATransformer`).

Words are encoded as integers in base ``alphabet_size`` so downstream code
can hash and count them cheaply.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DataError, NotFittedError
from ..stats.feature_selection import information_gain

__all__ = ["fourier_coefficients", "SFATransformer"]


def fourier_coefficients(
    windows: np.ndarray, n_coefficients: int, drop_mean: bool = True
) -> np.ndarray:
    """Truncated real-valued DFT features of each window row.

    Interleaves real and imaginary parts of the lowest-frequency DFT bins
    into ``n_coefficients`` columns. With ``drop_mean`` the DC bin (window
    mean) is skipped, making words invariant to vertical offset — WEASEL's
    default behaviour.
    """
    windows = np.atleast_2d(np.asarray(windows, dtype=float))
    if n_coefficients < 1:
        raise DataError(
            f"n_coefficients must be >= 1, got {n_coefficients}"
        )
    spectrum = np.fft.rfft(windows, axis=1)
    if drop_mean:
        spectrum = spectrum[:, 1:]
    if spectrum.shape[1] == 0:
        # Window of length 1 with DC dropped: no information left.
        return np.zeros((windows.shape[0], n_coefficients))
    interleaved = np.empty((windows.shape[0], 2 * spectrum.shape[1]))
    interleaved[:, 0::2] = spectrum.real
    interleaved[:, 1::2] = spectrum.imag
    if interleaved.shape[1] >= n_coefficients:
        return interleaved[:, :n_coefficients]
    padded = np.zeros((windows.shape[0], n_coefficients))
    padded[:, : interleaved.shape[1]] = interleaved
    return padded


def _equi_depth_boundaries(column: np.ndarray, n_bins: int) -> np.ndarray:
    quantiles = np.linspace(0.0, 1.0, n_bins + 1)[1:-1]
    return np.quantile(column, quantiles)


def _information_gain_boundaries(
    column: np.ndarray, labels: np.ndarray, n_bins: int
) -> np.ndarray:
    """Greedy recursive IG splits, as in WEASEL's binning.

    Repeatedly splits the interval containing the highest-gain candidate
    until ``n_bins - 1`` boundaries are placed; candidates are the midpoints
    of a value-sorted subsample.
    """
    order = np.argsort(column, kind="stable")
    sorted_values = column[order]
    # Candidate thresholds: midpoints between distinct consecutive values.
    distinct = sorted_values[1:] > sorted_values[:-1]
    candidates = 0.5 * (sorted_values[1:] + sorted_values[:-1])[distinct]
    if candidates.size == 0:
        return _equi_depth_boundaries(column, n_bins)
    if candidates.size > 64:
        # Subsample candidates evenly to bound the O(candidates * n) cost.
        candidates = candidates[
            np.linspace(0, candidates.size - 1, 64).astype(int)
        ]
    boundaries: list[float] = []
    for _ in range(n_bins - 1):
        best_gain = -np.inf
        best_candidate = None
        for candidate in candidates:
            if any(abs(candidate - b) < 1e-12 for b in boundaries):
                continue
            gain = information_gain(column, labels, candidate)
            if gain > best_gain:
                best_gain = gain
                best_candidate = float(candidate)
        if best_candidate is None:
            break
        boundaries.append(best_candidate)
    while len(boundaries) < n_bins - 1:
        # Fill any remaining slots with equi-depth cuts.
        filler = _equi_depth_boundaries(column, n_bins)
        for value in filler:
            if len(boundaries) >= n_bins - 1:
                break
            if all(abs(value - b) > 1e-12 for b in boundaries):
                boundaries.append(float(value))
        break
    return np.sort(np.asarray(boundaries))


class SFATransformer:
    """Learn per-coefficient bins and map windows to integer words.

    Parameters
    ----------
    word_length:
        Number of Fourier coefficients retained (symbols per word).
    alphabet_size:
        Number of bins per coefficient.
    binning:
        ``"information-gain"`` (WEASEL) or ``"equi-depth"``.
    drop_mean:
        Skip the DC coefficient (offset invariance).
    """

    def __init__(
        self,
        word_length: int = 4,
        alphabet_size: int = 4,
        binning: str = "information-gain",
        drop_mean: bool = True,
    ) -> None:
        if word_length < 1:
            raise DataError(f"word_length must be >= 1, got {word_length}")
        if alphabet_size < 2:
            raise DataError(
                f"alphabet_size must be >= 2, got {alphabet_size}"
            )
        if binning not in ("information-gain", "equi-depth"):
            raise DataError(f"unknown binning {binning!r}")
        self.word_length = word_length
        self.alphabet_size = alphabet_size
        self.binning = binning
        self.drop_mean = drop_mean
        self.boundaries_: np.ndarray | None = None  # (word_length, bins-1)

    def fit(
        self, windows: np.ndarray, labels: np.ndarray | None = None
    ) -> "SFATransformer":
        """Learn the discretisation boundaries from training windows.

        ``labels`` (one class per window) are required for information-gain
        binning and ignored for equi-depth.
        """
        coefficients = fourier_coefficients(
            windows, self.word_length, self.drop_mean
        )
        use_ig = self.binning == "information-gain" and labels is not None
        if self.binning == "information-gain" and labels is None:
            raise DataError("information-gain binning requires labels")
        boundaries = np.empty((self.word_length, self.alphabet_size - 1))
        for position in range(self.word_length):
            column = coefficients[:, position]
            if use_ig:
                assert labels is not None
                bins = _information_gain_boundaries(
                    column, np.asarray(labels), self.alphabet_size
                )
            else:
                bins = _equi_depth_boundaries(column, self.alphabet_size)
            if bins.size < self.alphabet_size - 1:
                padded = np.full(self.alphabet_size - 1, np.inf)
                padded[: bins.size] = bins
                bins = padded
            boundaries[position] = bins
        self.boundaries_ = boundaries
        return self

    def transform_symbols(self, windows: np.ndarray) -> np.ndarray:
        """Map windows to symbol matrices of shape ``(n, word_length)``."""
        if self.boundaries_ is None:
            raise NotFittedError("SFATransformer used before fit")
        coefficients = fourier_coefficients(
            windows, self.word_length, self.drop_mean
        )
        symbols = np.empty(coefficients.shape, dtype=np.int64)
        for position in range(self.word_length):
            symbols[:, position] = np.searchsorted(
                self.boundaries_[position], coefficients[:, position]
            )
        return symbols

    def transform_words(self, windows: np.ndarray) -> np.ndarray:
        """Map windows to integer word codes in base ``alphabet_size``."""
        symbols = self.transform_symbols(windows)
        weights = self.alphabet_size ** np.arange(self.word_length, dtype=np.int64)
        return symbols @ weights

    def fit_transform_words(
        self, windows: np.ndarray, labels: np.ndarray | None = None
    ) -> np.ndarray:
        """Fit the bins then encode the same windows as words."""
        return self.fit(windows, labels).transform_words(windows)

    @property
    def vocabulary_size(self) -> int:
        """Number of representable words, ``alphabet_size ** word_length``."""
        return int(self.alphabet_size**self.word_length)
