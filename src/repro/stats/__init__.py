"""From-scratch statistical/ML substrates used by the ETSC algorithms."""

from .backends import (
    available_backends,
    get_backend,
    register_backend,
    set_default_backend,
    use_backend,
)
from .boosting import GradientBoostingClassifier
from .dtw import DTWClassifier, dtw_distance, dtw_distance_matrix
from .distance import (
    best_match_distances,
    euclidean,
    min_subseries_distance,
    pairwise_squared_euclidean,
    sliding_window_view,
    squared_euclidean,
)
from .feature_selection import SelectKBest, chi2_scores, information_gain
from .hierarchical import AgglomerativeClustering, Merge, linkage_merge_order
from .kmeans import KMeans
from .linear import LogisticRegression, softmax
from .metrics import (
    accuracy,
    confusion_matrix,
    earliness,
    f1_score,
    harmonic_mean,
    precision_recall_f1,
)
from .nearest import KNeighborsClassifier, nearest_neighbor_indices
from .scaling import StandardScaler
from .svm import OneClassSVM, rbf_kernel
from .tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = [
    "available_backends",
    "get_backend",
    "register_backend",
    "set_default_backend",
    "use_backend",
    "GradientBoostingClassifier",
    "DTWClassifier",
    "dtw_distance",
    "dtw_distance_matrix",
    "euclidean",
    "squared_euclidean",
    "pairwise_squared_euclidean",
    "min_subseries_distance",
    "best_match_distances",
    "sliding_window_view",
    "SelectKBest",
    "chi2_scores",
    "information_gain",
    "AgglomerativeClustering",
    "Merge",
    "linkage_merge_order",
    "KMeans",
    "LogisticRegression",
    "softmax",
    "accuracy",
    "confusion_matrix",
    "earliness",
    "f1_score",
    "harmonic_mean",
    "precision_recall_f1",
    "KNeighborsClassifier",
    "nearest_neighbor_indices",
    "StandardScaler",
    "OneClassSVM",
    "rbf_kernel",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
]
