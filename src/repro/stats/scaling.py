"""Feature scaling for the tabular substrates.

The linear models train best on standardised features; :class:`StandardScaler`
learns per-column mean/std on the training matrix and applies the same affine
transform at prediction time (constant columns pass through unchanged).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DataError, NotFittedError

__all__ = ["StandardScaler"]


class StandardScaler:
    """Column-wise standardisation to zero mean and unit variance."""

    def __init__(self, epsilon: float = 1e-12) -> None:
        self.epsilon = epsilon
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, matrix: np.ndarray) -> "StandardScaler":
        """Learn per-column mean and standard deviation."""
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise DataError(f"expected a 2-D matrix, got shape {matrix.shape}")
        self.mean_ = matrix.mean(axis=0)
        std = matrix.std(axis=0)
        self.scale_ = np.where(std < self.epsilon, 1.0, std)
        return self

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        """Apply the learned standardisation."""
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler used before fit")
        matrix = np.asarray(matrix, dtype=float)
        return (matrix - self.mean_) / self.scale_

    def fit_transform(self, matrix: np.ndarray) -> np.ndarray:
        """Fit on ``matrix`` then transform it."""
        return self.fit(matrix).transform(matrix)
