"""Pluggable kernel backend registry.

Every hot numerical op — DTW, window/shapelet matching, prefix-distance
accumulation, the Lloyd k-means step — dispatches through this registry,
so one switch swaps the numerical substrate of the whole framework:

* ``naive`` — pure-python reference loops (the conformance oracle);
* ``numpy`` — the vectorised float64 kernels (default);
* ``numpy32`` — the same kernels at float32 with a tighter DTW memory
  budget.

Selection, in priority order:

1. an explicit ``backend=`` argument at a call site or
   :class:`~repro.stats.distance.PrefixDistanceCache` constructor;
2. the innermost active :func:`use_backend` context;
3. :func:`set_default_backend` (what the ``--kernel-backend`` CLI flag
   calls before a run starts — forked grid/fleet workers inherit it);
4. the ``REPRO_KERNEL_BACKEND`` environment variable;
5. the built-in default, ``numpy``.

Registering a new backend is enough to put it under differential test:
``tests/stats/test_backend_conformance.py`` parametrises over
:func:`available_backends` and checks every op against the ``naive``
reference at the backend's *declared* :class:`~.base.OpTolerance` — see
``docs/performance.md`` for the how-to.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from ...exceptions import ConfigurationError
from .base import (
    EXACT,
    OPS,
    KernelBackend,
    OpTolerance,
    assert_conformant,
    input_scale,
)
from .naive import NaiveBackend
from .numpy32 import Numpy32Backend
from .numpy_backend import NumpyBackend

__all__ = [
    "ENV_VAR",
    "DEFAULT_BACKEND",
    "OPS",
    "EXACT",
    "OpTolerance",
    "KernelBackend",
    "assert_conformant",
    "input_scale",
    "register_backend",
    "unregister_backend",
    "available_backends",
    "get_backend",
    "active_backend_name",
    "set_default_backend",
    "use_backend",
    "tolerance_for",
]

#: Environment variable consulted when no explicit selection was made.
ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Fallback when nothing selects a backend.
DEFAULT_BACKEND = "numpy"

_REGISTRY: dict[str, KernelBackend] = {}
_default_name: str | None = None
_override_stack: list[str] = []


def register_backend(backend: KernelBackend, replace: bool = False) -> None:
    """Register a backend instance under its ``name``.

    Registration is all a new backend needs to be picked up by the
    conformance suite. ``replace=False`` refuses to shadow an existing
    name so test doubles cannot silently hijack production kernels.
    """
    if not isinstance(backend, KernelBackend):
        raise ConfigurationError(
            f"register_backend expects a KernelBackend, got {backend!r}"
        )
    backend.validate()
    if backend.name in _REGISTRY and not replace:
        raise ConfigurationError(
            f"kernel backend {backend.name!r} is already registered "
            f"(pass replace=True to override)"
        )
    _REGISTRY[backend.name] = backend


def unregister_backend(name: str) -> None:
    """Remove a registered backend (test cleanup; built-ins refuse)."""
    if name in (NaiveBackend.name, NumpyBackend.name, Numpy32Backend.name):
        raise ConfigurationError(f"cannot unregister built-in backend {name!r}")
    _REGISTRY.pop(name, None)


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def _resolve(name: str) -> KernelBackend:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown kernel backend {name!r}; "
            f"registered: {', '.join(available_backends())}"
        ) from None


def get_backend(
    backend: "str | KernelBackend | None" = None,
) -> KernelBackend:
    """Resolve a backend selection to an instance.

    ``None`` resolves the *active* backend: the innermost
    :func:`use_backend` context, else the :func:`set_default_backend`
    choice, else ``$REPRO_KERNEL_BACKEND``, else ``numpy``.
    """
    if isinstance(backend, KernelBackend):
        return backend
    if backend is not None:
        return _resolve(backend)
    if _override_stack:
        return _resolve(_override_stack[-1])
    if _default_name is not None:
        return _resolve(_default_name)
    return _resolve(os.environ.get(ENV_VAR) or DEFAULT_BACKEND)


def active_backend_name() -> str:
    """Name of the backend :func:`get_backend` would currently return."""
    return get_backend().name


def set_default_backend(name: "str | None") -> None:
    """Pin the process-wide default (``None`` restores env/built-in).

    This is what the ``--kernel-backend`` CLI flag calls before a run;
    forked grid and fleet workers inherit the setting.
    """
    if name is not None:
        _resolve(name)  # fail fast on unknown names
    global _default_name
    _default_name = name


@contextmanager
def use_backend(backend: "str | KernelBackend"):
    """Scoped backend override (nestable); yields the instance."""
    instance = get_backend(backend)
    _override_stack.append(instance.name)
    try:
        yield instance
    finally:
        _override_stack.pop()


def tolerance_for(
    backend: "str | KernelBackend", op: str
) -> OpTolerance:
    """The declared conformance tolerance of ``backend``'s ``op`` vs the
    naive reference — the single policy tests and benchmarks assert
    through."""
    instance = get_backend(backend)
    if op not in OPS:
        raise ConfigurationError(f"unknown kernel op {op!r}; known: {OPS}")
    return instance.tolerances[op]


register_backend(NaiveBackend())
register_backend(NumpyBackend())
register_backend(Numpy32Backend())
