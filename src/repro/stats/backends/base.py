"""Kernel backend contract and the cross-backend tolerance policy.

A :class:`KernelBackend` bundles one implementation of every *hot op* the
distance-based algorithms funnel through — DTW (pairwise and all-pairs),
sliding-window/shapelet matching, incremental prefix-distance updates,
and the Lloyd k-means step. Call sites never pick an implementation
directly: they dispatch through :func:`repro.stats.backends.get_backend`,
so swapping the whole numerical substrate is one environment variable
(``REPRO_KERNEL_BACKEND``) or CLI flag.

Every backend also *declares its numerical contract*: for each op, an
:class:`OpTolerance` describing how far its results may drift from the
pure-python ``naive`` reference. The conformance suite
(``tests/stats/test_backend_conformance.py``) and the performance bench
(``benchmarks/bench_perf.py``) both assert through this single policy,
so the definition of "equivalent" cannot drift between tests and
benchmarks. The policy distinguishes two classes of op:

* **Exact ops** (``OpTolerance.exact``): the vectorised code performs the
  same IEEE-754 operations in the same per-element order as the
  reference loop (DTW's per-cell recurrence, the prefix cache's
  sequential accumulation), so results must be *bit-identical*.
* **Reordered-reduction ops**: the fast path sums in an
  implementation-defined order (SIMD-unrolled ``einsum``, BLAS GEMM for
  the k-means indicator product, the expanded ``|a|^2 - 2ab + |b|^2``
  pairwise form), so only tolerance-bounded agreement is possible. The
  bounds are tight and *scale-aware*: absolute error of the expanded
  pairwise form grows with the squared input magnitude, so its ``atol``
  is scaled by ``max|x|**2`` (``scale_power=2``) rather than silently
  loosened for everything.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

__all__ = [
    "OPS",
    "EXACT",
    "OpTolerance",
    "KernelBackend",
    "assert_conformant",
    "input_scale",
]

#: The hot ops every backend must implement (and declare a tolerance for).
OPS = (
    "dtw",
    "dtw_matrix",
    "sliding_window",
    "shapelet_match",
    "prefix_step",
    "kmeans_update",
    "pairwise_sqeuclidean",
)


@dataclass(frozen=True)
class OpTolerance:
    """Declared agreement bound of one op against the naive reference.

    ``rtol == atol == 0`` means *bit-identical* (NaNs included). Otherwise
    the effective absolute tolerance is
    ``atol * max(1, max|finite input|) ** scale_power`` — ``scale_power=1``
    for quantities linear in the inputs (distances, centroids),
    ``scale_power=2`` for squared quantities whose cancellation error
    grows with the squared magnitude (expanded-form pairwise distances).
    """

    rtol: float = 0.0
    atol: float = 0.0
    scale_power: int = 0
    note: str = ""

    @property
    def exact(self) -> bool:
        """Whether this op must agree bit-for-bit with the reference."""
        return self.rtol == 0.0 and self.atol == 0.0


#: Shared "bit-identical" tolerance (same per-element operation order).
EXACT = OpTolerance(note="same IEEE-754 operations in the same order")


def input_scale(inputs) -> float:
    """Largest finite input magnitude (>= 1), for scale-aware tolerances."""
    scale = 1.0
    for array in inputs:
        array = np.asarray(array, dtype=float)
        if array.size == 0:
            continue
        finite = array[np.isfinite(array)]
        if finite.size:
            scale = max(scale, float(np.abs(finite).max()))
    return scale


def assert_conformant(
    actual,
    reference,
    tolerance: OpTolerance,
    inputs=(),
    label: str = "",
) -> None:
    """Assert ``actual`` agrees with ``reference`` under ``tolerance``.

    Exact tolerances require bit-identical values (NaN positions
    included); bounded tolerances use ``allclose`` with the scale-aware
    absolute bound derived from ``inputs``. Both tests and benchmarks
    route equivalence checks through this single function so the policy
    cannot drift between them.
    """
    actual = np.asarray(actual, dtype=float)
    reference = np.asarray(reference, dtype=float)
    if tolerance.exact:
        np.testing.assert_array_equal(actual, reference, err_msg=label)
        return
    atol = tolerance.atol * input_scale(inputs) ** tolerance.scale_power
    np.testing.assert_allclose(
        actual,
        reference,
        rtol=tolerance.rtol,
        atol=atol,
        equal_nan=True,
        err_msg=label,
    )


class KernelBackend(ABC):
    """One implementation of the hot numerical kernels.

    Subclasses set ``name``, ``dtype`` (the working precision), and
    ``tolerances`` (op name -> :class:`OpTolerance` vs the naive
    float64 reference — the registry refuses backends whose policy does
    not cover every op in :data:`OPS`).

    All ops receive float64-validated inputs from the public wrappers in
    :mod:`repro.stats.dtw` / :mod:`repro.stats.distance`; backends cast
    to their working precision via :meth:`prepare`.
    """

    name: str = ""
    dtype = np.float64
    tolerances: dict = {}

    def prepare(self, array: np.ndarray) -> np.ndarray:
        """Cast an array to the backend's working precision (no-op copy
        avoidance when the dtype already matches)."""
        return np.asarray(array, dtype=self.dtype)

    # -- DTW ------------------------------------------------------------
    @abstractmethod
    def dtw(
        self,
        first: np.ndarray,
        second: np.ndarray,
        window: int | None = None,
        max_sq_dist: float | None = None,
    ) -> float:
        """Squared DTW distance of two 1-D series (``inf`` once the
        early-abandon bound ``max_sq_dist`` is provably exceeded)."""

    @abstractmethod
    def dtw_matrix(
        self,
        rows: np.ndarray,
        others: np.ndarray,
        window: int | None,
        symmetric: bool,
    ) -> np.ndarray:
        """All-pairs DTW *distances* (square-rooted) between row series."""

    # -- window matching ------------------------------------------------
    @abstractmethod
    def sliding_window(
        self, pattern: np.ndarray, matrix: np.ndarray
    ) -> np.ndarray:
        """Euclidean distance of ``pattern`` to every aligned window of
        every row: ``(N, L - w + 1)``."""

    def shapelet_match(
        self, pattern: np.ndarray, matrix: np.ndarray
    ) -> np.ndarray:
        """EDSC best-matching distance per row (min over windows)."""
        return self.sliding_window(pattern, matrix).min(axis=1)

    # -- prefix distances -----------------------------------------------
    @abstractmethod
    def prefix_step(
        self, sq_distances: np.ndarray, values: np.ndarray, column: np.ndarray
    ) -> None:
        """Advance running squared prefix distances by one time-point,
        in place.

        ``sq_distances`` is ``(Q, N)``; ``values`` is ``(Q,)`` univariate
        or ``(Q, V)`` multivariate; ``column`` is the references' values
        at the current time-point, ``(N,)`` or ``(N, V)``. Accumulation
        is per ``(query, reference)`` pair, variables in index order —
        the order the conformance policy pins as exact.
        """

    # -- clustering -----------------------------------------------------
    @abstractmethod
    def kmeans_update(
        self, rows: np.ndarray, centroids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """One Lloyd step: ``(new_centroids, assignment)`` with empty
        clusters re-seeded at the point farthest from its centroid."""

    @abstractmethod
    def pairwise_sqeuclidean(
        self, rows: np.ndarray, others: np.ndarray
    ) -> np.ndarray:
        """All-pairs squared Euclidean distances between row vectors."""

    # --------------------------------------------------------------------
    def validate(self) -> None:
        """Check the backend declares a name and a full tolerance map."""
        if not self.name:
            raise ValueError(f"{type(self).__name__} has no name")
        missing = [op for op in OPS if op not in self.tolerances]
        if missing:
            raise ValueError(
                f"backend {self.name!r} declares no tolerance for "
                f"op(s): {', '.join(missing)}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<KernelBackend {self.name!r} dtype={np.dtype(self.dtype).name}>"
