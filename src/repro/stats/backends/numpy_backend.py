"""The vectorised numpy kernel backend (the default).

This is the code PR 5 landed — batched anti-diagonal DTW, stride-tricks
window matching, incremental prefix accumulation, the indicator-GEMM
Lloyd step — relocated behind the :class:`~.base.KernelBackend` contract
and parametrised by dtype so the ``numpy32`` backend can reuse the same
kernels at float32 with a tighter memory budget.

Tolerance policy vs the pure-python ``naive`` reference:

* ``dtw`` / ``dtw_matrix`` / ``prefix_step`` are **exact**: every cell of
  the DTW recurrence and every prefix accumulation performs the same
  scalar operations in the same order as the reference loops, so results
  are bit-identical (NaN propagation included).
* ``sliding_window`` / ``shapelet_match`` reduce via ``einsum``, whose
  SIMD accumulation order is implementation-defined; sums of squares are
  perfectly conditioned, so agreement is bounded at ``rtol=1e-12``.
* ``pairwise_sqeuclidean`` uses the expanded ``|a|^2 - 2ab + |b|^2`` form
  (BLAS GEMM): cancellation error is *absolute* in the squared input
  magnitude, hence the quadratically scaled ``atol``.
* ``kmeans_update`` sums members through a GEMM; centroid agreement is
  bounded at ``rtol=1e-9`` with a linearly scaled ``atol``.
"""

from __future__ import annotations

import numpy as np

from .base import EXACT, KernelBackend, OpTolerance

__all__ = ["NumpyBackend", "_band_limits", "_dtw_batch"]

#: Cap on the cost-tensor footprint of one batched DP block (bytes).
_BLOCK_BUDGET_BYTES = 32_000_000


def _band_limits(
    d: int, n: int, m: int, window: int | None
) -> tuple[int, int]:
    """Valid ``i`` range of anti-diagonal ``d`` (cells ``D[i, d - i]``).

    Grid indices are 1-based (``D`` is the ``(n+1, m+1)`` DP table);
    ``window`` is the Sakoe-Chiba half-width constraint ``|i - j| <= w``.
    """
    lo = max(1, d - m)
    hi = min(n, d - 1)
    if window is not None:
        # |2i - d| <= window
        lo = max(lo, -((window - d) // 2))
        hi = min(hi, (d + window) // 2)
    return lo, hi


def _dtw_batch(
    firsts: np.ndarray,
    seconds: np.ndarray,
    window: int | None,
    max_sq_dist: float | None = None,
    dtype=np.float64,
) -> np.ndarray:
    """Squared DTW distances for a batch of equal-shape series pairs.

    ``firsts``/``seconds`` are ``(P, n)`` / ``(P, m)``; the anti-diagonal
    recurrence runs on a ``(P, n + 1)`` frontier so all ``P`` dynamic
    programs advance in lockstep. ``max_sq_dist`` enables early abandon:
    once *every* cell on the two most recent frontier diagonals exceeds it
    (two, because diagonal path steps skip alternate anti-diagonals), no
    path can finish below the bound and the whole batch returns ``inf``.
    """
    p, n = firsts.shape
    m = seconds.shape[1]
    cost = (firsts[:, :, None] - seconds[:, None, :]) ** 2  # (P, n, m)
    # Anti-diagonals of ``cost`` are the diagonals of the column-reversed
    # tensor — ``np.diagonal`` views them without fancy indexing.
    flipped = cost[:, :, ::-1]
    prev2 = np.full((p, n + 1), np.inf, dtype=dtype)
    prev2[:, 0] = 0.0  # diagonal d=0 holds only D[0, 0]
    # diagonal d=1: all boundary cells
    prev = np.full((p, n + 1), np.inf, dtype=dtype)
    for d in range(2, n + m + 1):
        lo, hi = _band_limits(d, n, m, window)
        current = np.full((p, n + 1), np.inf, dtype=dtype)
        if lo <= hi:
            # cost anti-diagonal d-2 starts at row index max(1, d-m) - 1.
            base = max(1, d - m)
            diag = flipped.diagonal(m - 1 - (d - 2), axis1=1, axis2=2)
            costs = diag[:, lo - base : hi - base + 1]
            current[:, lo : hi + 1] = costs + np.minimum(
                np.minimum(
                    prev[:, lo : hi + 1],       # insertion  D[i-1, j]...
                    prev[:, lo - 1 : hi],       # deletion
                ),
                prev2[:, lo - 1 : hi],          # match      D[i-1, j-1]
            )
        prev2, prev = prev, current
        if max_sq_dist is not None:
            frontier = min(prev.min(), prev2.min())
            if frontier > max_sq_dist:
                return np.full(p, np.inf, dtype=dtype)
    return prev[:, n]


class NumpyBackend(KernelBackend):
    """Vectorised float64 kernels — the production default."""

    name = "numpy"
    dtype = np.float64
    block_budget_bytes = _BLOCK_BUDGET_BYTES
    tolerances = {
        "dtw": EXACT,
        "dtw_matrix": EXACT,
        "prefix_step": EXACT,
        "sliding_window": OpTolerance(
            rtol=1e-12, atol=1e-12, scale_power=1,
            note="einsum reduction order vs sequential sum of squares",
        ),
        "shapelet_match": OpTolerance(
            rtol=1e-12, atol=1e-12, scale_power=1,
            note="min over sliding_window values",
        ),
        "pairwise_sqeuclidean": OpTolerance(
            rtol=1e-9, atol=1e-12, scale_power=2,
            note="expanded |a|^2-2ab+|b|^2 form; cancellation error is "
            "absolute in the squared magnitude",
        ),
        "kmeans_update": OpTolerance(
            rtol=1e-9, atol=1e-12, scale_power=1,
            note="indicator-GEMM member sums vs per-cluster means",
        ),
    }

    # -- DTW ------------------------------------------------------------
    def dtw(self, first, second, window=None, max_sq_dist=None):
        first = self.prepare(first)
        second = self.prepare(second)
        return float(
            _dtw_batch(
                first[None, :], second[None, :], window, max_sq_dist,
                dtype=self.dtype,
            )[0]
        )

    def dtw_matrix(self, rows, others, window, symmetric):
        rows = self.prepare(rows)
        others = rows if symmetric else self.prepare(others)
        n_rows, n = rows.shape
        n_others, m = others.shape
        if symmetric:
            pair_i, pair_j = np.triu_indices(n_rows, k=1)
        else:
            grid_i, grid_j = np.meshgrid(
                np.arange(n_rows), np.arange(n_others), indexing="ij"
            )
            pair_i, pair_j = grid_i.ravel(), grid_j.ravel()
        distances = np.zeros((n_rows, n_others), dtype=self.dtype)
        itemsize = np.dtype(self.dtype).itemsize
        block = max(1, self.block_budget_bytes // max(1, n * m * itemsize))
        for start in range(0, pair_i.size, block):
            i_block = pair_i[start : start + block]
            j_block = pair_j[start : start + block]
            squared = _dtw_batch(
                rows[i_block], others[j_block], window, dtype=self.dtype
            )
            distances[i_block, j_block] = np.sqrt(squared)
        if symmetric:
            distances[pair_j, pair_i] = distances[pair_i, pair_j]
        return distances

    # -- window matching ------------------------------------------------
    def sliding_window(self, pattern, matrix):
        pattern = self.prepare(pattern)
        matrix = self.prepare(matrix)
        windows = np.lib.stride_tricks.sliding_window_view(
            matrix, pattern.size, axis=1
        )  # (N, L - w + 1, w), a view — no copy
        differences = windows - pattern[None, None, :]
        return np.sqrt(np.einsum("nij,nij->ni", differences, differences))

    # -- prefix distances -----------------------------------------------
    def prefix_step(self, sq_distances, values, column):
        if values.ndim == 2:
            # Variables accumulate in index order, one vectorised add per
            # variable, so the per-(query, reference) accumulation matches
            # the reference loop exactly.
            for v in range(values.shape[1]):
                sq_distances += (
                    values[:, v, None] - column[None, :, v]
                ) ** 2
        else:
            sq_distances += (values[:, None] - column[None, :]) ** 2

    # -- clustering -----------------------------------------------------
    def pairwise_sqeuclidean(self, rows, others):
        rows = self.prepare(rows)
        others = self.prepare(others)
        row_norms = np.einsum("ij,ij->i", rows, rows)
        other_norms = np.einsum("ij,ij->i", others, others)
        distances = (
            row_norms[:, None] - 2.0 * rows @ others.T + other_norms[None, :]
        )
        return np.maximum(distances, 0.0)

    def kmeans_update(self, rows, centroids):
        rows = self.prepare(rows)
        centroids = self.prepare(centroids)
        distances = self.pairwise_sqeuclidean(rows, centroids)
        assignment = distances.argmin(axis=1)
        # Vectorised centroid update: a (k, n) membership indicator turns
        # the per-cluster sums into one matrix product instead of a
        # per-centroid Python loop.
        indicator = (
            assignment[None, :] == np.arange(len(centroids))[:, None]
        )
        counts = indicator.sum(axis=1)
        sums = indicator.astype(self.dtype) @ rows
        new_centroids = sums / np.maximum(counts, 1)[:, None]
        empty = counts == 0
        if empty.any():
            # Re-seed empty clusters at the farthest point.
            new_centroids[empty] = rows[distances.min(axis=1).argmax()]
        return new_centroids, assignment
