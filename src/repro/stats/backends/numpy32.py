"""Float32 variant of the vectorised backend.

Same kernels as :class:`~.numpy_backend.NumpyBackend`, run at float32
working precision with a quarter of the DTW block memory budget: the
batched DP's cost tensor is the dominant allocation, so halving the
element size *and* halving the byte budget keeps peak memory roughly 4x
below the float64 path — the trade serving fleets want when reference
sets grow.

Conformance contract: all ops are tolerance-bounded against the float64
naive reference. The documented bounds cover two float32 effects —
~``eps32`` relative error per cast/operation compounded over the longest
reduction (a few hundred accumulations in the conformance corpus), and
cancellation when a distance is tiny relative to the operand magnitude,
which is why every squared-quantity op carries a quadratically scaled
``atol`` rather than a loosened ``rtol``.
"""

from __future__ import annotations

import numpy as np

from .base import OpTolerance
from .numpy_backend import NumpyBackend

__all__ = ["Numpy32Backend"]

_SQUARED = OpTolerance(
    rtol=1e-3, atol=1e-5, scale_power=2,
    note="float32 accumulation of squared quantities",
)
_LINEAR = OpTolerance(
    rtol=1e-3, atol=1e-5, scale_power=1,
    note="float32 accumulation of linear quantities",
)


class Numpy32Backend(NumpyBackend):
    """Vectorised kernels at float32 with a tighter memory budget."""

    name = "numpy32"
    dtype = np.float32
    block_budget_bytes = NumpyBackend.block_budget_bytes // 4
    tolerances = {
        "dtw": _SQUARED,            # squared DTW accumulates squared costs
        "dtw_matrix": _LINEAR,      # square-rooted distances
        "sliding_window": _LINEAR,
        "shapelet_match": _LINEAR,
        "prefix_step": _SQUARED,
        "pairwise_sqeuclidean": _SQUARED,
        "kmeans_update": _LINEAR,
    }
