"""The pure-python reference backend.

Extracted from the in-file baselines of ``benchmarks/bench_perf.py``:
scalar loops with no vectorised reductions, so every accumulation order
is explicit and auditable. This backend *is* the conformance reference —
every other backend's :class:`~.base.OpTolerance` is declared against
it — which is why correctness here is prioritised over speed (orders of
magnitude slower than ``numpy``; select it only for differential testing
or debugging suspected kernel bugs).

NaN semantics deliberately mirror numpy's so exact-op comparisons hold on
the NaN corpus: ``min``/``minimum`` propagate NaN, and ``argmin``/
``argmax`` stick to the first NaN encountered (numpy treats NaN as the
extreme value in arg-reductions).
"""

from __future__ import annotations

import math

import numpy as np

from .base import EXACT, KernelBackend

__all__ = ["NaiveBackend"]


def _fmin(a: float, b: float) -> float:
    """``np.minimum`` semantics: NaN in, NaN out."""
    if math.isnan(a) or math.isnan(b):
        return math.nan
    return a if a < b else b


def _argmin_numpy(values) -> int:
    """First strict minimum, with numpy's first-NaN-wins arg-reduction."""
    best, index = values[0], 0
    for j in range(1, len(values)):
        value = values[j]
        if not math.isnan(best) and (math.isnan(value) or value < best):
            best, index = value, j
    return index


def _argmax_numpy(values) -> int:
    """First strict maximum, with numpy's first-NaN-wins arg-reduction."""
    best, index = values[0], 0
    for j in range(1, len(values)):
        value = values[j]
        if not math.isnan(best) and (math.isnan(value) or value > best):
            best, index = value, j
    return index


class NaiveBackend(KernelBackend):
    """Scalar pure-python kernels — the conformance reference."""

    name = "naive"
    dtype = np.float64
    tolerances = {op: EXACT for op in (
        "dtw",
        "dtw_matrix",
        "sliding_window",
        "shapelet_match",
        "prefix_step",
        "kmeans_update",
        "pairwise_sqeuclidean",
    )}

    # -- DTW ------------------------------------------------------------
    def dtw(self, first, second, window=None, max_sq_dist=None):
        # The same anti-diagonal sweep as the batched kernel, cell by
        # cell in python floats: identical per-cell arithmetic *and*
        # identical early-abandon decisions.
        from .numpy_backend import _band_limits

        first = [float(x) for x in np.asarray(first, dtype=float)]
        second = [float(x) for x in np.asarray(second, dtype=float)]
        n, m = len(first), len(second)
        inf = math.inf
        prev2 = [inf] * (n + 1)
        prev2[0] = 0.0
        prev = [inf] * (n + 1)
        for d in range(2, n + m + 1):
            lo, hi = _band_limits(d, n, m, window)
            current = [inf] * (n + 1)
            for i in range(lo, hi + 1):
                difference = first[i - 1] - second[d - i - 1]
                current[i] = difference * difference + _fmin(
                    _fmin(prev[i], prev[i - 1]), prev2[i - 1]
                )
            prev2, prev = prev, current
            if max_sq_dist is not None:
                frontier = inf
                saw_nan = False
                for value in prev:
                    saw_nan = saw_nan or math.isnan(value)
                    frontier = min(frontier, value) if not math.isnan(value) else frontier
                for value in prev2:
                    saw_nan = saw_nan or math.isnan(value)
                    frontier = min(frontier, value) if not math.isnan(value) else frontier
                if saw_nan:
                    frontier = math.nan  # np.min propagates NaN
                if frontier > max_sq_dist:
                    return math.inf
        return prev[n]

    def dtw_matrix(self, rows, others, window, symmetric):
        rows = np.asarray(rows, dtype=float)
        others = rows if symmetric else np.asarray(others, dtype=float)
        distances = np.zeros((rows.shape[0], others.shape[0]))
        for i in range(rows.shape[0]):
            start = i + 1 if symmetric else 0
            for j in range(start, others.shape[0]):
                distance = math.sqrt(self.dtw(rows[i], others[j], window))
                distances[i, j] = distance
                if symmetric:
                    distances[j, i] = distance
        return distances

    # -- window matching ------------------------------------------------
    def sliding_window(self, pattern, matrix):
        pattern = [float(x) for x in np.asarray(pattern, dtype=float)]
        matrix = np.asarray(matrix, dtype=float)
        width = len(pattern)
        n_offsets = matrix.shape[1] - width + 1
        out = np.empty((matrix.shape[0], n_offsets))
        for i in range(matrix.shape[0]):
            row = [float(x) for x in matrix[i]]
            for s in range(n_offsets):
                total = 0.0
                for k in range(width):
                    difference = row[s + k] - pattern[k]
                    total += difference * difference
                out[i, s] = math.sqrt(total)
        return out

    def shapelet_match(self, pattern, matrix):
        table = self.sliding_window(pattern, matrix)
        out = np.empty(table.shape[0])
        for i in range(table.shape[0]):
            best = float(table[i, 0])
            for s in range(1, table.shape[1]):
                best = _fmin(best, float(table[i, s]))
            out[i] = best
        return out

    # -- prefix distances -----------------------------------------------
    def prefix_step(self, sq_distances, values, column):
        n_queries, n_references = sq_distances.shape
        if values.ndim == 2:
            n_variables = values.shape[1]
            for q in range(n_queries):
                for n in range(n_references):
                    accumulator = float(sq_distances[q, n])
                    for v in range(n_variables):
                        difference = float(values[q, v]) - float(column[n, v])
                        accumulator += difference * difference
                    sq_distances[q, n] = accumulator
        else:
            for q in range(n_queries):
                value = float(values[q])
                for n in range(n_references):
                    difference = value - float(column[n])
                    sq_distances[q, n] = (
                        float(sq_distances[q, n]) + difference * difference
                    )

    # -- clustering -----------------------------------------------------
    def pairwise_sqeuclidean(self, rows, others):
        rows = np.asarray(rows, dtype=float)
        others = np.asarray(others, dtype=float)
        out = np.empty((rows.shape[0], others.shape[0]))
        row_lists = rows.tolist()
        other_lists = others.tolist()
        for i, row in enumerate(row_lists):
            for j, other in enumerate(other_lists):
                total = 0.0
                for a, b in zip(row, other):
                    difference = a - b
                    total += difference * difference
                out[i, j] = total
        return out

    def kmeans_update(self, rows, centroids):
        rows = np.asarray(rows, dtype=float)
        centroids = np.asarray(centroids, dtype=float)
        n_rows, n_features = rows.shape
        k = centroids.shape[0]
        distances = self.pairwise_sqeuclidean(rows, centroids)
        distance_lists = distances.tolist()
        assignment = np.empty(n_rows, dtype=np.intp)
        nearest = [0.0] * n_rows
        for i in range(n_rows):
            index = _argmin_numpy(distance_lists[i])
            assignment[i] = index
            nearest[i] = min(
                distance_lists[i]
            ) if not any(map(math.isnan, distance_lists[i])) else math.nan
        sums = [[0.0] * n_features for _ in range(k)]
        counts = [0] * k
        row_lists = rows.tolist()
        for i in range(n_rows):  # members accumulate in row order
            cluster = int(assignment[i])
            counts[cluster] += 1
            target = sums[cluster]
            row = row_lists[i]
            for f in range(n_features):
                target[f] += row[f]
        new_centroids = np.empty((k, n_features))
        farthest = _argmax_numpy(nearest)
        for cluster in range(k):
            if counts[cluster]:
                for f in range(n_features):
                    new_centroids[cluster, f] = (
                        sums[cluster][f] / counts[cluster]
                    )
            else:
                # Re-seed empty clusters at the farthest point.
                new_centroids[cluster] = rows[farthest]
        return new_centroids, assignment
