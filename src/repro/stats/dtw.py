"""Dynamic Time Warping and the classic 1-NN-DTW classifier.

The bake-off literature the paper builds on treats 1-NN with DTW as *the*
historical baseline for time-series classification. It is provided here as
a framework extension: :func:`dtw_distance` implements the standard dynamic
program with an optional Sakoe-Chiba band, and :class:`DTWClassifier` wraps
k-NN-DTW in the :class:`~repro.core.base.FullTSClassifier` interface so it
can serve as yet another STRUT backend.

The dynamic program is evaluated anti-diagonal by anti-diagonal: every
cell on diagonal ``i + j = d`` depends only on diagonals ``d - 1`` and
``d - 2``, so a whole diagonal is one numpy slice update and the inner
``for j`` loop disappears. The same sweep vectorises across *pairs* —
:func:`dtw_distance_matrix` runs the recurrence for a block of row/column
pairs simultaneously on a 2-D frontier, which is where the bulk of the
1-NN-DTW speedup comes from.

Both public functions validate their inputs here and dispatch the DP to
the active kernel backend (see :mod:`repro.stats.backends`): ``numpy``
runs the batched sweep above, ``naive`` the scalar reference recurrence
(bit-identical by conformance contract), ``numpy32`` the same sweep at
float32 with a tighter memory budget.
"""

from __future__ import annotations

import numpy as np

from ..core.base import FullTSClassifier
from ..data.dataset import TimeSeriesDataset
from ..exceptions import DataError, NotFittedError
from .backends import KernelBackend, get_backend

# Backward-compatible aliases: the batched kernel now lives with the
# numpy backend implementation.
from .backends.numpy_backend import _band_limits, _dtw_batch  # noqa: F401

__all__ = ["dtw_distance", "dtw_distance_matrix", "DTWClassifier"]


def dtw_distance(
    first: np.ndarray,
    second: np.ndarray,
    window: int | None = None,
    max_dist: float | None = None,
    backend: "str | KernelBackend | None" = None,
) -> float:
    """DTW distance between two 1-D series.

    ``window`` is the Sakoe-Chiba band half-width in time-points (``None``
    = unconstrained). The returned value is the square root of the summed
    squared pointwise costs along the optimal warping path; for equal-length
    series it never exceeds the Euclidean distance (warping can only lower
    the alignment cost) and it is zero exactly for identical series.

    ``max_dist`` is an optional early-abandon bound (e.g. the best
    neighbour distance known so far in a 1-NN scan): as soon as every
    partial path already exceeds it, the computation stops and ``inf`` is
    returned — the exact distance is never needed once it cannot win.

    ``backend`` overrides the active kernel backend for this call.
    """
    first = np.asarray(first, dtype=float)
    second = np.asarray(second, dtype=float)
    if first.ndim != 1 or second.ndim != 1:
        raise DataError("dtw_distance expects 1-D series")
    n, m = len(first), len(second)
    if n == 0 or m == 0:
        raise DataError("dtw_distance needs non-empty series")
    if window is not None:
        if window < 0:
            raise DataError(f"window must be >= 0, got {window}")
        # The band must be wide enough to connect (0, 0) to (n-1, m-1).
        window = max(window, abs(n - m))
    if max_dist is not None and max_dist < 0:
        raise DataError(f"max_dist must be >= 0, got {max_dist}")
    max_sq = None if max_dist is None else float(max_dist) ** 2
    squared = get_backend(backend).dtw(first, second, window, max_sq)
    return float(np.sqrt(squared))


def dtw_distance_matrix(
    rows: np.ndarray,
    others: np.ndarray | None = None,
    window: int | None = None,
    backend: "str | KernelBackend | None" = None,
) -> np.ndarray:
    """All-pairs DTW distances between the rows of two matrices.

    All pairs share one ``(n, m)`` grid shape, so the vectorised backends
    advance every pair at once on a ``(pairs, n + 1)`` frontier, with
    pair blocks sized to the backend's cost-tensor memory budget.
    ``backend`` overrides the active kernel backend for this call.
    """
    rows = np.asarray(rows, dtype=float)
    others = rows if others is None else np.asarray(others, dtype=float)
    if rows.ndim != 2 or others.ndim != 2:
        raise DataError("dtw_distance_matrix expects 2-D matrices")
    symmetric = others is rows
    n, m = rows.shape[1], others.shape[1]
    if n == 0 or m == 0:
        raise DataError("dtw_distance needs non-empty series")
    if window is not None:
        if window < 0:
            raise DataError(f"window must be >= 0, got {window}")
        window = max(window, abs(n - m))
    return get_backend(backend).dtw_matrix(rows, others, window, symmetric)


class DTWClassifier(FullTSClassifier):
    """k-NN classification under DTW distance (default: 1-NN-DTW).

    Multivariate series use the "independent DTW" convention: per-variable
    DTW distances are summed.

    Parameters
    ----------
    n_neighbors:
        Neighbourhood size (1 reproduces the classic baseline).
    window:
        Sakoe-Chiba band half-width; ``None`` is unconstrained, small
        values are dramatically faster and often more accurate.
    """

    def __init__(self, n_neighbors: int = 1, window: int | None = None) -> None:
        if n_neighbors < 1:
            raise DataError(f"n_neighbors must be >= 1, got {n_neighbors}")
        self.n_neighbors = n_neighbors
        self.window = window
        self._train_values: np.ndarray | None = None
        self._train_labels: np.ndarray | None = None

    def clone(self) -> "DTWClassifier":
        """Unfitted copy with identical hyperparameters."""
        return DTWClassifier(n_neighbors=self.n_neighbors, window=self.window)

    @property
    def classes_(self) -> np.ndarray:
        """Distinct class labels seen during training."""
        if self._train_labels is None:
            raise NotFittedError("DTWClassifier used before train")
        return np.unique(self._train_labels)

    def train(self, dataset: TimeSeriesDataset) -> "DTWClassifier":
        """Memorise the training series."""
        if dataset.n_instances < self.n_neighbors:
            raise DataError(
                f"need at least {self.n_neighbors} training instances"
            )
        self._train_values = dataset.values.copy()
        self._train_labels = dataset.labels.copy()
        return self

    def _distances(self, dataset: TimeSeriesDataset) -> np.ndarray:
        assert self._train_values is not None
        if dataset.n_variables != self._train_values.shape[1]:
            raise DataError(
                f"trained on {self._train_values.shape[1]} variables, "
                f"got {dataset.n_variables}"
            )
        total = np.zeros((dataset.n_instances, self._train_values.shape[0]))
        for variable in range(dataset.n_variables):
            total += dtw_distance_matrix(
                dataset.values[:, variable, :],
                self._train_values[:, variable, :],
                self.window,
            )
        return total

    def predict(self, dataset: TimeSeriesDataset) -> np.ndarray:
        """Majority label among the k DTW-nearest training series."""
        if self._train_labels is None:
            raise NotFittedError("DTWClassifier used before train")
        distances = self._distances(dataset)
        order = np.argsort(distances, axis=1, kind="stable")[
            :, : self.n_neighbors
        ]
        neighbor_labels = self._train_labels[order]
        predictions = np.empty(dataset.n_instances, dtype=int)
        for i, votes in enumerate(neighbor_labels):
            values, counts = np.unique(votes, return_counts=True)
            predictions[i] = int(values[counts.argmax()])
        return predictions
