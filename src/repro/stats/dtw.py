"""Dynamic Time Warping and the classic 1-NN-DTW classifier.

The bake-off literature the paper builds on treats 1-NN with DTW as *the*
historical baseline for time-series classification. It is provided here as
a framework extension: :func:`dtw_distance` implements the standard dynamic
program with an optional Sakoe-Chiba band, and :class:`DTWClassifier` wraps
k-NN-DTW in the :class:`~repro.core.base.FullTSClassifier` interface so it
can serve as yet another STRUT backend.

The dynamic program is evaluated anti-diagonal by anti-diagonal: every
cell on diagonal ``i + j = d`` depends only on diagonals ``d - 1`` and
``d - 2``, so a whole diagonal is one numpy slice update and the inner
``for j`` loop disappears. The same sweep vectorises across *pairs* —
:func:`dtw_distance_matrix` runs the recurrence for a block of row/column
pairs simultaneously on a 2-D frontier, which is where the bulk of the
1-NN-DTW speedup comes from.
"""

from __future__ import annotations

import numpy as np

from ..core.base import FullTSClassifier
from ..data.dataset import TimeSeriesDataset
from ..exceptions import DataError, NotFittedError

__all__ = ["dtw_distance", "dtw_distance_matrix", "DTWClassifier"]

#: Cap on the cost-tensor footprint of one batched DP block (floats).
_BLOCK_BUDGET = 4_000_000


def _band_limits(
    d: int, n: int, m: int, window: int | None
) -> tuple[int, int]:
    """Valid ``i`` range of anti-diagonal ``d`` (cells ``D[i, d - i]``).

    Grid indices are 1-based (``D`` is the ``(n+1, m+1)`` DP table);
    ``window`` is the Sakoe-Chiba half-width constraint ``|i - j| <= w``.
    """
    lo = max(1, d - m)
    hi = min(n, d - 1)
    if window is not None:
        # |2i - d| <= window
        lo = max(lo, -((window - d) // 2))
        hi = min(hi, (d + window) // 2)
    return lo, hi


def _dtw_batch(
    firsts: np.ndarray,
    seconds: np.ndarray,
    window: int | None,
    max_sq_dist: float | None = None,
) -> np.ndarray:
    """Squared DTW distances for a batch of equal-shape series pairs.

    ``firsts``/``seconds`` are ``(P, n)`` / ``(P, m)``; the anti-diagonal
    recurrence runs on a ``(P, n + 1)`` frontier so all ``P`` dynamic
    programs advance in lockstep. ``max_sq_dist`` enables early abandon:
    once *every* cell on the two most recent frontier diagonals exceeds it
    (two, because diagonal path steps skip alternate anti-diagonals), no
    path can finish below the bound and the whole batch returns ``inf``.
    """
    p, n = firsts.shape
    m = seconds.shape[1]
    cost = (firsts[:, :, None] - seconds[:, None, :]) ** 2  # (P, n, m)
    # Anti-diagonals of ``cost`` are the diagonals of the column-reversed
    # tensor — ``np.diagonal`` views them without fancy indexing.
    flipped = cost[:, :, ::-1]
    prev2 = np.full((p, n + 1), np.inf)
    prev2[:, 0] = 0.0  # diagonal d=0 holds only D[0, 0]
    prev = np.full((p, n + 1), np.inf)  # diagonal d=1: all boundary cells
    for d in range(2, n + m + 1):
        lo, hi = _band_limits(d, n, m, window)
        current = np.full((p, n + 1), np.inf)
        if lo <= hi:
            # cost anti-diagonal d-2 starts at row index max(1, d-m) - 1.
            base = max(1, d - m)
            diag = flipped.diagonal(m - 1 - (d - 2), axis1=1, axis2=2)
            costs = diag[:, lo - base : hi - base + 1]
            current[:, lo : hi + 1] = costs + np.minimum(
                np.minimum(
                    prev[:, lo : hi + 1],       # insertion  D[i-1, j]...
                    prev[:, lo - 1 : hi],       # deletion
                ),
                prev2[:, lo - 1 : hi],          # match      D[i-1, j-1]
            )
        prev2, prev = prev, current
        if max_sq_dist is not None:
            frontier = min(prev.min(), prev2.min())
            if frontier > max_sq_dist:
                return np.full(p, np.inf)
    return prev[:, n]


def dtw_distance(
    first: np.ndarray,
    second: np.ndarray,
    window: int | None = None,
    max_dist: float | None = None,
) -> float:
    """DTW distance between two 1-D series.

    ``window`` is the Sakoe-Chiba band half-width in time-points (``None``
    = unconstrained). The returned value is the square root of the summed
    squared pointwise costs along the optimal warping path; for equal-length
    series it never exceeds the Euclidean distance (warping can only lower
    the alignment cost) and it is zero exactly for identical series.

    ``max_dist`` is an optional early-abandon bound (e.g. the best
    neighbour distance known so far in a 1-NN scan): as soon as every
    partial path already exceeds it, the computation stops and ``inf`` is
    returned — the exact distance is never needed once it cannot win.
    """
    first = np.asarray(first, dtype=float)
    second = np.asarray(second, dtype=float)
    if first.ndim != 1 or second.ndim != 1:
        raise DataError("dtw_distance expects 1-D series")
    n, m = len(first), len(second)
    if n == 0 or m == 0:
        raise DataError("dtw_distance needs non-empty series")
    if window is not None:
        if window < 0:
            raise DataError(f"window must be >= 0, got {window}")
        # The band must be wide enough to connect (0, 0) to (n-1, m-1).
        window = max(window, abs(n - m))
    if max_dist is not None and max_dist < 0:
        raise DataError(f"max_dist must be >= 0, got {max_dist}")
    max_sq = None if max_dist is None else float(max_dist) ** 2
    squared = _dtw_batch(first[None, :], second[None, :], window, max_sq)[0]
    return float(np.sqrt(squared))


def dtw_distance_matrix(
    rows: np.ndarray,
    others: np.ndarray | None = None,
    window: int | None = None,
) -> np.ndarray:
    """All-pairs DTW distances between the rows of two matrices.

    All pairs share one ``(n, m)`` grid shape, so the anti-diagonal
    recurrence advances every pair at once on a ``(pairs, n + 1)``
    frontier; pair blocks are sized to bound the cost tensor's memory.
    """
    rows = np.asarray(rows, dtype=float)
    others = rows if others is None else np.asarray(others, dtype=float)
    if rows.ndim != 2 or others.ndim != 2:
        raise DataError("dtw_distance_matrix expects 2-D matrices")
    symmetric = others is rows
    n_rows, n = rows.shape
    n_others, m = others.shape
    if n == 0 or m == 0:
        raise DataError("dtw_distance needs non-empty series")
    if window is not None:
        if window < 0:
            raise DataError(f"window must be >= 0, got {window}")
        window = max(window, abs(n - m))
    if symmetric:
        upper = np.triu_indices(n_rows, k=1)
        pair_i, pair_j = upper
    else:
        grid_i, grid_j = np.meshgrid(
            np.arange(n_rows), np.arange(n_others), indexing="ij"
        )
        pair_i, pair_j = grid_i.ravel(), grid_j.ravel()
    distances = np.zeros((n_rows, n_others))
    block = max(1, _BLOCK_BUDGET // max(1, n * m))
    for start in range(0, pair_i.size, block):
        i_block = pair_i[start : start + block]
        j_block = pair_j[start : start + block]
        squared = _dtw_batch(rows[i_block], others[j_block], window)
        distances[i_block, j_block] = np.sqrt(squared)
    if symmetric:
        distances[pair_j, pair_i] = distances[pair_i, pair_j]
    return distances


class DTWClassifier(FullTSClassifier):
    """k-NN classification under DTW distance (default: 1-NN-DTW).

    Multivariate series use the "independent DTW" convention: per-variable
    DTW distances are summed.

    Parameters
    ----------
    n_neighbors:
        Neighbourhood size (1 reproduces the classic baseline).
    window:
        Sakoe-Chiba band half-width; ``None`` is unconstrained, small
        values are dramatically faster and often more accurate.
    """

    def __init__(self, n_neighbors: int = 1, window: int | None = None) -> None:
        if n_neighbors < 1:
            raise DataError(f"n_neighbors must be >= 1, got {n_neighbors}")
        self.n_neighbors = n_neighbors
        self.window = window
        self._train_values: np.ndarray | None = None
        self._train_labels: np.ndarray | None = None

    def clone(self) -> "DTWClassifier":
        """Unfitted copy with identical hyperparameters."""
        return DTWClassifier(n_neighbors=self.n_neighbors, window=self.window)

    @property
    def classes_(self) -> np.ndarray:
        """Distinct class labels seen during training."""
        if self._train_labels is None:
            raise NotFittedError("DTWClassifier used before train")
        return np.unique(self._train_labels)

    def train(self, dataset: TimeSeriesDataset) -> "DTWClassifier":
        """Memorise the training series."""
        if dataset.n_instances < self.n_neighbors:
            raise DataError(
                f"need at least {self.n_neighbors} training instances"
            )
        self._train_values = dataset.values.copy()
        self._train_labels = dataset.labels.copy()
        return self

    def _distances(self, dataset: TimeSeriesDataset) -> np.ndarray:
        assert self._train_values is not None
        if dataset.n_variables != self._train_values.shape[1]:
            raise DataError(
                f"trained on {self._train_values.shape[1]} variables, "
                f"got {dataset.n_variables}"
            )
        total = np.zeros((dataset.n_instances, self._train_values.shape[0]))
        for variable in range(dataset.n_variables):
            total += dtw_distance_matrix(
                dataset.values[:, variable, :],
                self._train_values[:, variable, :],
                self.window,
            )
        return total

    def predict(self, dataset: TimeSeriesDataset) -> np.ndarray:
        """Majority label among the k DTW-nearest training series."""
        if self._train_labels is None:
            raise NotFittedError("DTWClassifier used before train")
        distances = self._distances(dataset)
        order = np.argsort(distances, axis=1, kind="stable")[
            :, : self.n_neighbors
        ]
        neighbor_labels = self._train_labels[order]
        predictions = np.empty(dataset.n_instances, dtype=int)
        for i, votes in enumerate(neighbor_labels):
            values, counts = np.unique(votes, return_counts=True)
            predictions[i] = int(values[counts.argmax()])
        return predictions
