"""Gradient-boosted decision trees for classification.

ECONOMY-K trains a base classifier per time-point; the paper suggests
XGBoost. This module is the from-scratch stand-in: multinomial gradient
boosting with shallow CART regression trees fitted to softmax residuals —
the same additive-logit model family, without the second-order and sparsity
engineering of the original library.
"""

from __future__ import annotations

import numpy as np

from ..data.preprocessing import LabelEncoder
from ..exceptions import DataError, NotFittedError
from .linear import softmax
from .tree import DecisionTreeRegressor

__all__ = ["GradientBoostingClassifier"]


class GradientBoostingClassifier:
    """Multinomial gradient boosting over shallow regression trees.

    Each boosting round fits one tree per class to the negative gradient of
    the multinomial cross-entropy (``one_hot - softmax(logits)``) and adds a
    shrunken copy of its predictions to the running logits.

    Parameters
    ----------
    n_estimators:
        Number of boosting rounds.
    learning_rate:
        Shrinkage applied to every tree's contribution.
    max_depth:
        Depth of the regression trees.
    min_samples_leaf:
        Minimum samples per tree leaf.
    subsample:
        Row-sampling fraction per round (stochastic gradient boosting);
        1.0 disables sampling.
    seed:
        Seed for the subsampling generator.
    """

    def __init__(
        self,
        n_estimators: int = 30,
        learning_rate: float = 0.2,
        max_depth: int = 3,
        min_samples_leaf: int = 2,
        subsample: float = 1.0,
        seed: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise DataError(f"n_estimators must be >= 1, got {n_estimators}")
        if not 0.0 < learning_rate <= 1.0:
            raise DataError(
                f"learning_rate must be in (0, 1], got {learning_rate}"
            )
        if not 0.0 < subsample <= 1.0:
            raise DataError(f"subsample must be in (0, 1], got {subsample}")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.seed = seed
        self._encoder = LabelEncoder()
        self._stages: list[list[DecisionTreeRegressor]] = []
        self._base_logits: np.ndarray | None = None

    @property
    def classes_(self) -> np.ndarray:
        """Distinct class labels seen during fit."""
        if self._encoder.classes_ is None:
            raise NotFittedError("GradientBoostingClassifier used before fit")
        return self._encoder.classes_

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "GradientBoostingClassifier":
        """Fit the boosted ensemble on ``(features, labels)``."""
        features = np.asarray(features, dtype=float)
        if features.ndim != 2:
            raise DataError(
                f"expected a 2-D feature matrix, got shape {features.shape}"
            )
        encoded = self._encoder.fit_transform(labels)
        n_samples = features.shape[0]
        n_classes = len(self._encoder.classes_)
        one_hot = np.zeros((n_samples, n_classes))
        one_hot[np.arange(n_samples), encoded] = 1.0

        # Base score: class log-priors, the optimal constant model.
        priors = np.clip(one_hot.mean(axis=0), 1e-12, None)
        self._base_logits = np.log(priors)
        logits = np.tile(self._base_logits, (n_samples, 1))

        rng = np.random.default_rng(self.seed)
        self._stages = []
        if n_classes < 2:
            return self
        for _ in range(self.n_estimators):
            residuals = one_hot - softmax(logits)
            if self.subsample < 1.0:
                chosen = rng.random(n_samples) < self.subsample
                if not chosen.any():
                    chosen[rng.integers(n_samples)] = True
            else:
                chosen = np.ones(n_samples, dtype=bool)
            stage: list[DecisionTreeRegressor] = []
            for class_index in range(n_classes):
                tree = DecisionTreeRegressor(
                    max_depth=self.max_depth,
                    min_samples_leaf=self.min_samples_leaf,
                )
                tree.fit(features[chosen], residuals[chosen, class_index])
                logits[:, class_index] += self.learning_rate * tree.predict(
                    features
                )
                stage.append(tree)
            self._stages.append(stage)
        return self

    def _logits(self, features: np.ndarray) -> np.ndarray:
        if self._base_logits is None:
            raise NotFittedError("GradientBoostingClassifier used before fit")
        features = np.atleast_2d(np.asarray(features, dtype=float))
        logits = np.tile(self._base_logits, (features.shape[0], 1))
        for stage in self._stages:
            for class_index, tree in enumerate(stage):
                logits[:, class_index] += self.learning_rate * tree.predict(
                    features
                )
        return logits

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Per-class probabilities (columns follow ``classes_``)."""
        logits = self._logits(features)
        if logits.shape[1] == 1:
            return np.ones_like(logits)
        return softmax(logits)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Most probable class label per row."""
        probabilities = self.predict_proba(features)
        return self._encoder.inverse_transform(probabilities.argmax(axis=1))
