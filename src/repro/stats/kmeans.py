"""Lloyd's k-means with k-means++ initialisation.

ECONOMY-K clusters the full-length training series into ``k`` groups and
then reasons about per-cluster classifier reliability; this module provides
that clustering substrate, plus soft membership probabilities derived from
distances (the paper's "cluster membership probability").

The hot inner step — assignment distances plus the centroid update —
dispatches to the active kernel backend's ``kmeans_update`` op (see
:mod:`repro.stats.backends`); convergence and restart logic stay here.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConvergenceError, DataError, NotFittedError
from .backends import get_backend
from .distance import pairwise_squared_euclidean

__all__ = ["KMeans"]


class KMeans:
    """k-means clustering of row vectors.

    Parameters
    ----------
    n_clusters:
        Number of clusters ``k``.
    n_init:
        Independent k-means++ restarts; the run with the lowest inertia wins.
    max_iter:
        Lloyd iterations per restart.
    tol:
        Relative centroid-movement threshold for early convergence.
    seed:
        Seed for the internal random generator.
    """

    def __init__(
        self,
        n_clusters: int,
        n_init: int = 4,
        max_iter: int = 100,
        tol: float = 1e-6,
        seed: int = 0,
    ) -> None:
        if n_clusters < 1:
            raise DataError(f"n_clusters must be >= 1, got {n_clusters}")
        self.n_clusters = n_clusters
        self.n_init = n_init
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed
        self.centroids_: np.ndarray | None = None
        self.inertia_: float | None = None

    # ------------------------------------------------------------------
    def _init_centroids(self, rows: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """k-means++ seeding: spread initial centroids by squared distance."""
        n = rows.shape[0]
        centroids = np.empty((self.n_clusters, rows.shape[1]))
        centroids[0] = rows[rng.integers(n)]
        closest = pairwise_squared_euclidean(rows, centroids[:1]).ravel()
        for i in range(1, self.n_clusters):
            total = closest.sum()
            if total <= 0:
                # All points coincide with chosen centroids; pick uniformly.
                centroids[i] = rows[rng.integers(n)]
            else:
                probabilities = closest / total
                centroids[i] = rows[rng.choice(n, p=probabilities)]
            distances = pairwise_squared_euclidean(
                rows, centroids[i : i + 1]
            ).ravel()
            closest = np.minimum(closest, distances)
        return centroids

    def _lloyd(
        self, rows: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, float]:
        centroids = self._init_centroids(rows, rng)
        backend = get_backend()
        for _ in range(self.max_iter):
            new_centroids, _ = backend.kmeans_update(rows, centroids)
            new_centroids = np.asarray(new_centroids, dtype=float)
            movement = np.sqrt(((new_centroids - centroids) ** 2).sum())
            centroids = new_centroids
            if movement <= self.tol * max(1.0, np.abs(centroids).max()):
                break
        distances = pairwise_squared_euclidean(rows, centroids)
        inertia = float(distances.min(axis=1).sum())
        return centroids, inertia

    # ------------------------------------------------------------------
    def fit(self, rows: np.ndarray) -> "KMeans":
        """Cluster the rows, keeping the best of ``n_init`` restarts."""
        rows = np.asarray(rows, dtype=float)
        if rows.ndim != 2:
            raise DataError(f"expected a 2-D matrix, got shape {rows.shape}")
        if rows.shape[0] < self.n_clusters:
            raise ConvergenceError(
                f"cannot form {self.n_clusters} clusters from "
                f"{rows.shape[0]} points"
            )
        rng = np.random.default_rng(self.seed)
        best: tuple[np.ndarray, float] | None = None
        for _ in range(self.n_init):
            centroids, inertia = self._lloyd(rows, rng)
            if best is None or inertia < best[1]:
                best = (centroids, inertia)
        assert best is not None
        self.centroids_, self.inertia_ = best
        return self

    def _require_fitted(self) -> np.ndarray:
        if self.centroids_ is None:
            raise NotFittedError("KMeans used before fit")
        return self.centroids_

    def predict(self, rows: np.ndarray) -> np.ndarray:
        """Hard cluster assignment for each row."""
        centroids = self._require_fitted()
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        return pairwise_squared_euclidean(rows, centroids).argmin(axis=1)

    def membership_probabilities(self, rows: np.ndarray) -> np.ndarray:
        """Soft membership per cluster from inverse-distance weighting.

        Row ``i`` gets probability proportional to ``1 / (d_ik + eps)`` over
        clusters ``k`` — the membership notion ECONOMY-K uses to weight
        per-cluster expected costs.
        """
        centroids = self._require_fitted()
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        distances = np.sqrt(pairwise_squared_euclidean(rows, centroids))
        weights = 1.0 / (distances + 1e-9)
        return weights / weights.sum(axis=1, keepdims=True)

    def fit_predict(self, rows: np.ndarray) -> np.ndarray:
        """Fit on ``rows`` and return their hard assignments."""
        return self.fit(rows).predict(rows)
