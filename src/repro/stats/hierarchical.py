"""Agglomerative hierarchical clustering.

ECTS merges time-series bottom-up (single/complete/average linkage over
Euclidean distance on full-length series) and propagates Minimum Prediction
Lengths through the merge tree. This module provides the generic clustering:
it records the full merge history so callers can replay merges one at a time,
which is exactly what ECTS needs.

The distance matrix comes from the kernel-backend-dispatched
:func:`~repro.stats.distance.pairwise_squared_euclidean`, so backend
selection (``REPRO_KERNEL_BACKEND`` / ``--kernel-backend``) reaches this
module without any code here changing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import DataError
from .distance import pairwise_squared_euclidean

__all__ = ["Merge", "AgglomerativeClustering", "linkage_merge_order"]

_LINKAGES = ("single", "complete", "average")


@dataclass(frozen=True)
class Merge:
    """One agglomeration step: clusters ``left`` and ``right`` fuse into a
    new cluster ``merged`` at the given linkage ``distance``.

    Cluster ids follow scipy's convention: leaves are ``0..n-1`` and the
    ``i``-th merge creates id ``n + i``.
    """

    left: int
    right: int
    merged: int
    distance: float


def linkage_merge_order(
    rows: np.ndarray, linkage: str = "complete"
) -> list[Merge]:
    """Compute the agglomerative merge sequence for row vectors.

    Implements the Lance-Williams update for the three classic linkages on a
    dense distance matrix. A per-row nearest-neighbour cache
    (``nearest_dist[i]`` / ``nearest_slot[i]``) replaces the historical
    full-matrix argmin scan at every merge: only rows whose cached
    neighbour was touched by a merge are rescanned, taking the typical
    merge step from O(n^2) to O(n) (O(n^3) worst case remains, as the
    paper notes for ECTS itself). Tie-breaking reproduces the flat
    row-major argmin of the full-matrix scan exactly, so dendrograms are
    unchanged.
    """
    if linkage not in _LINKAGES:
        raise DataError(f"linkage must be one of {_LINKAGES}, got {linkage!r}")
    rows = np.asarray(rows, dtype=float)
    if rows.ndim != 2:
        raise DataError(f"expected a 2-D matrix, got shape {rows.shape}")
    n = rows.shape[0]
    if n < 2:
        return []
    distances = np.sqrt(pairwise_squared_euclidean(rows))
    np.fill_diagonal(distances, np.inf)

    # Row-minimum cache. argmin picks the first (lowest-column) minimum
    # per row, and the global argmin over nearest_dist picks the first
    # (lowest) row — together identical to np.argmin over the flat matrix.
    nearest_dist = distances.min(axis=1)
    nearest_slot = distances.argmin(axis=1)

    active = {i: i for i in range(n)}  # slot -> current cluster id
    sizes = {i: 1 for i in range(n)}  # slot -> cluster size
    merges: list[Merge] = []
    next_id = n
    for _ in range(n - 1):
        slot_a = int(nearest_dist.argmin())
        slot_b = int(nearest_slot[slot_a])
        if slot_a > slot_b:
            slot_a, slot_b = slot_b, slot_a
        best = float(distances[slot_a, slot_b])
        merges.append(
            Merge(active[slot_a], active[slot_b], next_id, best)
        )
        # Lance-Williams: fold slot_b into slot_a, deactivate slot_b.
        size_a, size_b = sizes[slot_a], sizes[slot_b]
        row_a, row_b = distances[slot_a].copy(), distances[slot_b].copy()
        if linkage == "single":
            updated = np.minimum(row_a, row_b)
        elif linkage == "complete":
            updated = np.maximum(row_a, row_b)
        else:  # average
            updated = (size_a * row_a + size_b * row_b) / (size_a + size_b)
        distances[slot_a, :] = updated
        distances[:, slot_a] = updated
        distances[slot_a, slot_a] = np.inf
        distances[slot_b, :] = np.inf
        distances[:, slot_b] = np.inf
        active[slot_a] = next_id
        sizes[slot_a] = size_a + size_b
        del active[slot_b], sizes[slot_b]
        next_id += 1

        # Maintain the row-minimum cache.
        nearest_dist[slot_b] = np.inf  # deactivated row never wins again
        nearest_dist[slot_a] = distances[slot_a].min()
        nearest_slot[slot_a] = distances[slot_a].argmin()
        for slot in active:
            if slot == slot_a:
                continue
            cached = nearest_slot[slot]
            if cached == slot_a or cached == slot_b:
                # The cached neighbour's distance changed (or vanished):
                # rescan the row. Inactive columns hold inf, so the scan
                # matches what the full-matrix argmin would have seen.
                nearest_dist[slot] = distances[slot].min()
                nearest_slot[slot] = distances[slot].argmin()
            elif updated[slot] < nearest_dist[slot] or (
                updated[slot] == nearest_dist[slot] and slot_a < cached
            ):
                # Column slot_a improved on (or first-occurrence-ties)
                # the cached minimum.
                nearest_dist[slot] = updated[slot]
                nearest_slot[slot] = slot_a
    return merges


class AgglomerativeClustering:
    """Cut the agglomerative merge tree at a fixed number of clusters."""

    def __init__(self, n_clusters: int, linkage: str = "complete") -> None:
        if n_clusters < 1:
            raise DataError(f"n_clusters must be >= 1, got {n_clusters}")
        self.n_clusters = n_clusters
        self.linkage = linkage
        self.labels_: np.ndarray | None = None
        self.merges_: list[Merge] | None = None

    def fit(self, rows: np.ndarray) -> "AgglomerativeClustering":
        """Cluster ``rows`` and store flat labels in ``labels_``."""
        rows = np.asarray(rows, dtype=float)
        n = rows.shape[0]
        if self.n_clusters > n:
            raise DataError(
                f"cannot form {self.n_clusters} clusters from {n} points"
            )
        self.merges_ = linkage_merge_order(rows, self.linkage)
        # Replay merges with union-find until n_clusters components remain.
        parent = list(range(n))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        leaf_of_cluster = {i: i for i in range(n)}
        components = n
        for merge in self.merges_:
            if components <= self.n_clusters:
                break
            root_left = find(leaf_of_cluster[merge.left])
            root_right = find(leaf_of_cluster[merge.right])
            parent[root_right] = root_left
            leaf_of_cluster[merge.merged] = root_left
            components -= 1
        roots = {find(i) for i in range(n)}
        relabel = {root: index for index, root in enumerate(sorted(roots))}
        self.labels_ = np.asarray([relabel[find(i)] for i in range(n)])
        return self

    def fit_predict(self, rows: np.ndarray) -> np.ndarray:
        """Fit on ``rows`` and return their flat cluster labels."""
        self.fit(rows)
        assert self.labels_ is not None
        return self.labels_
