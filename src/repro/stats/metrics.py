"""Evaluation metrics defined in Section 2.2 of the paper.

* :func:`accuracy` — fraction of correct predictions.
* :func:`f1_score` — macro-averaged per-class F1 (the paper's definition
  sums per-class F1 and divides by ``|C|``).
* :func:`earliness` — mean fraction ``l / L`` of observed time-points at
  prediction time; lower is better.
* :func:`harmonic_mean` — harmonic mean of accuracy and ``1 - earliness``.
* :func:`confusion_matrix` — the table everything else derives from.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DataError

__all__ = [
    "confusion_matrix",
    "accuracy",
    "f1_score",
    "earliness",
    "harmonic_mean",
    "precision_recall_f1",
]


def _validate_pair(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape or y_true.ndim != 1:
        raise DataError(
            f"y_true and y_pred must be 1-D and equal-length, got "
            f"{y_true.shape} and {y_pred.shape}"
        )
    if y_true.size == 0:
        raise DataError("metrics need at least one prediction")
    return y_true, y_pred


def confusion_matrix(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    classes: np.ndarray | None = None,
) -> np.ndarray:
    """Return the ``K x K`` confusion matrix ``M[i, j]``.

    ``M[i, j]`` counts instances of true class ``classes[i]`` predicted as
    ``classes[j]``. When ``classes`` is omitted it is the sorted union of the
    labels appearing in either vector.
    """
    y_true, y_pred = _validate_pair(y_true, y_pred)
    if classes is None:
        classes = np.unique(np.concatenate([y_true, y_pred]))
    classes = np.asarray(classes)
    index = {int(label): i for i, label in enumerate(classes)}
    matrix = np.zeros((len(classes), len(classes)), dtype=int)
    for true, pred in zip(y_true, y_pred):
        matrix[index[int(true)], index[int(pred)]] += 1
    return matrix


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of predictions equal to the true label."""
    y_true, y_pred = _validate_pair(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def precision_recall_f1(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    classes: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-class precision, recall, and F1 arrays (zero where undefined)."""
    matrix = confusion_matrix(y_true, y_pred, classes)
    true_positive = np.diag(matrix).astype(float)
    predicted = matrix.sum(axis=0).astype(float)
    actual = matrix.sum(axis=1).astype(float)
    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(predicted > 0, true_positive / predicted, 0.0)
        recall = np.where(actual > 0, true_positive / actual, 0.0)
        denominator = precision + recall
        f1 = np.where(
            denominator > 0, 2.0 * precision * recall / denominator, 0.0
        )
    return precision, recall, f1


def f1_score(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    classes: np.ndarray | None = None,
) -> float:
    """Macro-averaged F1-score as defined in Section 2.2.

    Averages per-class ``TP / (TP + (FP + FN) / 2)`` over the distinct class
    labels; classes absent from ``y_true`` and ``y_pred`` contribute zero.
    """
    _, _, per_class = precision_recall_f1(y_true, y_pred, classes)
    return float(per_class.mean())


def earliness(prefix_lengths: np.ndarray, full_length: int | np.ndarray) -> float:
    """Mean observed-prefix fraction ``l / L`` over a batch of predictions.

    ``full_length`` may be a scalar (equal-length dataset) or a per-instance
    vector. The maximum value 1.0 means every prediction needed the whole
    series; lower is better.
    """
    prefix_lengths = np.asarray(prefix_lengths, dtype=float)
    full_length = np.asarray(full_length, dtype=float)
    if np.any(prefix_lengths < 1) or np.any(prefix_lengths > full_length):
        raise DataError("prefix lengths must lie in [1, full_length]")
    return float(np.mean(prefix_lengths / full_length))


def harmonic_mean(accuracy_value: float, earliness_value: float) -> float:
    """Harmonic mean of accuracy and ``1 - earliness`` (Section 2.2).

    Zero when either the accuracy is zero or the full series was needed
    (earliness 1.0); otherwise the usual ``2ab / (a + b)``.
    """
    if not 0.0 <= accuracy_value <= 1.0:
        raise DataError(f"accuracy must be in [0, 1], got {accuracy_value}")
    if not 0.0 <= earliness_value <= 1.0:
        raise DataError(f"earliness must be in [0, 1], got {earliness_value}")
    timeliness = 1.0 - earliness_value
    if accuracy_value + timeliness == 0.0:
        return 0.0
    value = 2.0 * accuracy_value * timeliness / (accuracy_value + timeliness)
    if value == 0.0 and accuracy_value > 0.0 and timeliness > 0.0:
        # The 2·a·t numerator can underflow to zero for subnormal
        # accuracy even though the true harmonic mean is bounded below
        # by min(a, t) > 0; clamp so zero remains "degenerate only".
        value = min(accuracy_value, timeliness)
    return value
