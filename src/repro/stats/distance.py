"""Distance functions shared by the distance-based algorithms.

ECTS matches prefixes by Euclidean distance; EDSC aligns shapelets against
every subseries of a candidate series and takes the minimum distance. Both
primitives live here as validating wrappers that dispatch the heavy
kernels — pairwise distances, window matching, incremental prefix
accumulation — to the active kernel backend (see
:mod:`repro.stats.backends`), so the algorithm modules stay readable and
every implementation stays swappable and conformance-tested.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DataError
from .backends import KernelBackend, get_backend

__all__ = [
    "euclidean",
    "squared_euclidean",
    "pairwise_squared_euclidean",
    "min_subseries_distance",
    "best_match_distances",
    "sliding_window_view",
    "sliding_window_distances",
    "PrefixDistanceCache",
]


def euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance between two equal-length vectors."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise DataError(f"shape mismatch: {a.shape} vs {b.shape}")
    return float(np.sqrt(np.sum((a - b) ** 2)))


def squared_euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """Squared Euclidean distance (cheaper when only ordering matters)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise DataError(f"shape mismatch: {a.shape} vs {b.shape}")
    return float(np.sum((a - b) ** 2))


def pairwise_squared_euclidean(
    rows: np.ndarray,
    others: np.ndarray | None = None,
    backend: "str | KernelBackend | None" = None,
) -> np.ndarray:
    """All-pairs squared Euclidean distances between row vectors.

    Returns an ``(n, m)`` matrix for ``rows`` of shape ``(n, d)`` and
    ``others`` of shape ``(m, d)`` (``others`` defaults to ``rows``).
    ``backend`` overrides the active kernel backend for this call; the
    vectorised backends use the expanded ``|a|^2 - 2ab + |b|^2`` form and
    clip tiny negative values caused by floating-point cancellation.
    """
    rows = np.asarray(rows, dtype=float)
    if rows.ndim != 2:
        raise DataError(f"rows must be 2-D, got shape {rows.shape}")
    others = rows if others is None else np.asarray(others, dtype=float)
    if others.ndim != 2 or others.shape[1] != rows.shape[1]:
        raise DataError(
            f"others must be 2-D with {rows.shape[1]} columns, "
            f"got shape {others.shape}"
        )
    return get_backend(backend).pairwise_sqeuclidean(rows, others)


def sliding_window_view(series: np.ndarray, window: int) -> np.ndarray:
    """Return the ``(L - window + 1, window)`` matrix of all subseries."""
    series = np.asarray(series, dtype=float)
    if series.ndim != 1:
        raise DataError(f"series must be 1-D, got shape {series.shape}")
    if not 1 <= window <= series.size:
        raise DataError(
            f"window must be in [1, {series.size}], got {window}"
        )
    return np.lib.stride_tricks.sliding_window_view(series, window)


def _validate_pattern_matrix(
    pattern: np.ndarray, matrix: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    pattern = np.asarray(pattern, dtype=float)
    matrix = np.asarray(matrix, dtype=float)
    if pattern.ndim != 1:
        raise DataError(f"pattern must be 1-D, got shape {pattern.shape}")
    if matrix.ndim != 2:
        raise DataError(f"matrix must be 2-D, got shape {matrix.shape}")
    if not 1 <= pattern.size <= matrix.shape[1]:
        raise DataError(
            f"pattern width must be in [1, {matrix.shape[1]}], "
            f"got {pattern.size}"
        )
    return pattern, matrix


def sliding_window_distances(
    pattern: np.ndarray,
    matrix: np.ndarray,
    backend: "str | KernelBackend | None" = None,
) -> np.ndarray:
    """Euclidean distance from ``pattern`` to every aligned window of
    every row.

    For ``matrix`` of shape ``(N, L)`` and a pattern of width ``w``,
    returns the ``(N, L - w + 1)`` matrix of alignment distances — the
    whole EDSC matching table at once instead of a per-row Python loop.
    ``backend`` overrides the active kernel backend for this call.
    """
    pattern, matrix = _validate_pattern_matrix(pattern, matrix)
    return get_backend(backend).sliding_window(pattern, matrix)


def best_match_distances(
    pattern: np.ndarray,
    matrix: np.ndarray,
    backend: "str | KernelBackend | None" = None,
) -> np.ndarray:
    """EDSC best-matching distance from ``pattern`` to every row.

    The minimum over the row's :func:`sliding_window_distances` — one
    value per row, ``(N,)``. Backends may fuse the window table and the
    min-reduction; ``backend`` overrides the active kernel backend.
    """
    pattern, matrix = _validate_pattern_matrix(pattern, matrix)
    return get_backend(backend).shapelet_match(pattern, matrix)


def min_subseries_distance(
    series: np.ndarray,
    pattern: np.ndarray,
    backend: "str | KernelBackend | None" = None,
) -> float:
    """Minimum Euclidean distance from ``pattern`` to any aligned subseries.

    This is EDSC's "best matching distance": the pattern slides across the
    series and the smallest alignment distance is returned. The series must
    be at least as long as the pattern.
    """
    series = np.asarray(series, dtype=float)
    if series.ndim != 1:
        raise DataError(f"series must be 1-D, got shape {series.shape}")
    return float(best_match_distances(pattern, series[None, :], backend)[0])


class PrefixDistanceCache:
    """Incrementally maintained squared prefix distances to reference series.

    The distance-based algorithms (ECTS, the prefix-1-NN serving fallback,
    ECONOMY-K's per-checkpoint memberships) all need, at every truncation
    length ``t``, the squared Euclidean distance between a growing query
    prefix and the same-length prefixes of ``N`` reference series.
    Recomputing from scratch costs ``O(N * t)`` per consultation —
    ``O(N * L^2)`` over a stream. This cache advances the running sums one
    time-point at a time for ``O(N)`` per step, and its arithmetic
    (sequential accumulation of ``(q_t - r_t)^2``) matches the incremental
    loops the algorithms historically used, so results are bit-identical.

    Parameters
    ----------
    references:
        ``(N, L)`` univariate or ``(N, V, L)`` multivariate reference
        series.
    n_queries:
        Number of query streams advanced in lockstep (ECTS training
        advances all ``N`` training series against each other at once).
    backend:
        Kernel backend for the accumulation step (name, instance, or
        ``None`` for the active backend). Resolved once at construction;
        references and the running sums live in the backend's working
        precision.

    ``advance`` consumes the queries' values at the next time-point and
    returns the updated ``(n_queries, N)`` squared-distance matrix —
    ``(N,)`` for the default single query. NaNs propagate: once a NaN
    enters a running sum it stays NaN, matching ``squared_euclidean`` on a
    NaN-padded prefix.
    """

    def __init__(
        self,
        references: np.ndarray,
        n_queries: int = 1,
        backend: "str | KernelBackend | None" = None,
    ) -> None:
        references = np.asarray(references, dtype=float)
        if references.ndim not in (2, 3):
            raise DataError(
                f"references must be (N, L) or (N, V, L), "
                f"got shape {references.shape}"
            )
        if n_queries < 1:
            raise DataError(f"n_queries must be >= 1, got {n_queries}")
        self._backend = get_backend(backend)
        self._references = self._backend.prepare(references)
        self._multivariate = references.ndim == 3
        self._n_queries = n_queries
        self._sq_distances = np.zeros(
            (n_queries, references.shape[0]), dtype=self._backend.dtype
        )
        self._t = 0

    @property
    def length(self) -> int:
        """Number of time-points consumed so far."""
        return self._t

    @property
    def n_references(self) -> int:
        return self._references.shape[0]

    @property
    def max_length(self) -> int:
        """Reference series length — the furthest the cache can advance."""
        return self._references.shape[-1]

    @property
    def squared_distances(self) -> np.ndarray:
        """Current ``(n_queries, N)`` squared prefix distances (a view)."""
        return self._sq_distances

    def reset(self) -> None:
        """Rewind to length 0 (e.g. when a new stream starts)."""
        self._sq_distances = np.zeros_like(self._sq_distances)
        self._t = 0

    def advance(self, values: np.ndarray | float) -> np.ndarray:
        """Consume the queries' values at time ``self.length``.

        ``values`` is a scalar (single univariate query), ``(n_queries,)``
        (univariate queries), ``(V,)`` (single multivariate query), or
        ``(n_queries, V)``. Returns the updated squared distances,
        ``(N,)`` when ``n_queries == 1`` else ``(n_queries, N)``.
        """
        if self._t >= self.max_length:
            raise DataError(
                f"cache already consumed all {self.max_length} time-points"
            )
        values = self._backend.prepare(values)
        if self._multivariate:
            column = self._references[:, :, self._t]  # (N, V)
            values = values.reshape(self._n_queries, -1)
            if values.shape[1] != self._references.shape[1]:
                raise DataError(
                    f"expected {self._references.shape[1]} variables, "
                    f"got {values.shape[1]}"
                )
        else:
            column = self._references[:, self._t]  # (N,)
            values = values.reshape(self._n_queries)
        self._backend.prefix_step(self._sq_distances, values, column)
        self._t += 1
        if self._n_queries == 1:
            return self._sq_distances[0]
        return self._sq_distances

    def advance_chunk(self, chunk: np.ndarray) -> np.ndarray:
        """Consume several time-points at once.

        For the default single-query cache ``chunk`` is ``(k,)``
        univariate or ``(V, k)`` multivariate — the newly observed
        points of the stream, in time order. Multi-query caches (the
        all-pairs mode the serving fleet batches simultaneous consults
        through) take ``(n_queries, k)`` univariate or
        ``(n_queries, V, k)`` multivariate chunks: every query stream
        advances through the same ``k`` time-steps in lockstep. A
        single-query cache also accepts the explicit multi-query form
        with a leading 1 axis, so batched callers can pass
        ``(n_queries, ...)`` uniformly down to ``n_queries == 1``.

        Points are accumulated sequentially, one time-step at a time, so
        the result is bit-identical to ``k`` ``advance`` calls — and a
        multi-query batch is bit-identical to advancing each query
        through its own single-query cache (the accumulation order per
        ``(query, reference)`` pair is the same either way).
        """
        chunk = np.asarray(chunk, dtype=float)
        if self._n_queries == 1:
            if self._multivariate:
                chunk = np.atleast_2d(chunk)
                if chunk.ndim == 3:
                    # Explicit multi-query form (1, V, k) for one query —
                    # what batched callers pass uniformly for any k.
                    if chunk.shape[0] != 1:
                        raise DataError(
                            f"single-query chunk must have shape (V, k) or "
                            f"(1, V, k), got {chunk.shape}"
                        )
                    chunk = chunk[0]
                steps = chunk.shape[1]
                for step in range(steps):
                    result = self.advance(chunk[:, step])
            else:
                chunk = np.atleast_1d(chunk)
                if chunk.ndim == 2:
                    if chunk.shape[0] != 1:
                        raise DataError(
                            f"single-query chunk must have shape (k,) or "
                            f"(1, k), got {chunk.shape}"
                        )
                    chunk = chunk[0]
                steps = chunk.shape[0]
                for step in range(steps):
                    result = self.advance(chunk[step])
        else:
            expected_ndim = 3 if self._multivariate else 2
            if chunk.ndim != expected_ndim or chunk.shape[0] != self._n_queries:
                raise DataError(
                    f"multi-query chunk must have shape "
                    f"({self._n_queries}, {'V, ' if self._multivariate else ''}"
                    f"k), got {chunk.shape}"
                )
            steps = chunk.shape[-1]
            for step in range(steps):
                result = self.advance(chunk[..., step])
        if steps == 0:
            result = (
                self._sq_distances[0]
                if self._n_queries == 1
                else self._sq_distances
            )
        return result
