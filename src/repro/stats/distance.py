"""Distance functions shared by the distance-based algorithms.

ECTS matches prefixes by Euclidean distance; EDSC aligns shapelets against
every subseries of a candidate series and takes the minimum distance. Both
primitives live here, vectorised over numpy, so that the algorithm modules
stay readable.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DataError

__all__ = [
    "euclidean",
    "squared_euclidean",
    "pairwise_squared_euclidean",
    "min_subseries_distance",
    "sliding_window_view",
]


def euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance between two equal-length vectors."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise DataError(f"shape mismatch: {a.shape} vs {b.shape}")
    return float(np.sqrt(np.sum((a - b) ** 2)))


def squared_euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """Squared Euclidean distance (cheaper when only ordering matters)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise DataError(f"shape mismatch: {a.shape} vs {b.shape}")
    return float(np.sum((a - b) ** 2))


def pairwise_squared_euclidean(rows: np.ndarray, others: np.ndarray | None = None) -> np.ndarray:
    """All-pairs squared Euclidean distances between row vectors.

    Returns an ``(n, m)`` matrix for ``rows`` of shape ``(n, d)`` and
    ``others`` of shape ``(m, d)`` (``others`` defaults to ``rows``). Uses
    the expanded form ``|a|^2 - 2ab + |b|^2`` and clips tiny negative values
    caused by floating-point cancellation.
    """
    rows = np.asarray(rows, dtype=float)
    if rows.ndim != 2:
        raise DataError(f"rows must be 2-D, got shape {rows.shape}")
    others = rows if others is None else np.asarray(others, dtype=float)
    if others.ndim != 2 or others.shape[1] != rows.shape[1]:
        raise DataError(
            f"others must be 2-D with {rows.shape[1]} columns, "
            f"got shape {others.shape}"
        )
    row_norms = np.einsum("ij,ij->i", rows, rows)
    other_norms = np.einsum("ij,ij->i", others, others)
    distances = row_norms[:, None] - 2.0 * rows @ others.T + other_norms[None, :]
    return np.maximum(distances, 0.0)


def sliding_window_view(series: np.ndarray, window: int) -> np.ndarray:
    """Return the ``(L - window + 1, window)`` matrix of all subseries."""
    series = np.asarray(series, dtype=float)
    if series.ndim != 1:
        raise DataError(f"series must be 1-D, got shape {series.shape}")
    if not 1 <= window <= series.size:
        raise DataError(
            f"window must be in [1, {series.size}], got {window}"
        )
    return np.lib.stride_tricks.sliding_window_view(series, window)


def min_subseries_distance(series: np.ndarray, pattern: np.ndarray) -> float:
    """Minimum Euclidean distance from ``pattern`` to any aligned subseries.

    This is EDSC's "best matching distance": the pattern slides across the
    series and the smallest alignment distance is returned. The series must
    be at least as long as the pattern.
    """
    pattern = np.asarray(pattern, dtype=float)
    windows = sliding_window_view(series, pattern.size)
    differences = windows - pattern[None, :]
    return float(np.sqrt(np.min(np.einsum("ij,ij->i", differences, differences))))
