"""Univariate feature selection for bag-of-patterns matrices.

WEASEL prunes its (very sparse, very wide) word-count matrix with a
chi-squared test against the class labels before the logistic-regression
head. :func:`chi2_scores` implements the classic count-based chi-squared
statistic; :class:`SelectKBest` keeps the strongest columns.
"""

from __future__ import annotations

import numpy as np

from ..data.preprocessing import LabelEncoder
from ..exceptions import DataError, NotFittedError

__all__ = ["chi2_scores", "SelectKBest", "information_gain"]


def chi2_scores(features: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Chi-squared statistic of each non-negative feature vs the labels.

    Follows the usual text-classification formulation: observed per-class
    feature mass vs the expectation under independence. Columns with zero
    total mass score zero.
    """
    features = np.asarray(features, dtype=float)
    if features.ndim != 2:
        raise DataError(f"expected a 2-D matrix, got shape {features.shape}")
    if (features < 0).any():
        raise DataError("chi2 requires non-negative features")
    encoded = LabelEncoder().fit_transform(labels)
    n_classes = int(encoded.max()) + 1
    one_hot = np.zeros((len(encoded), n_classes))
    one_hot[np.arange(len(encoded)), encoded] = 1.0

    observed = one_hot.T @ features  # (n_classes, n_features)
    class_fraction = one_hot.mean(axis=0)  # (n_classes,)
    feature_mass = features.sum(axis=0)  # (n_features,)
    expected = class_fraction[:, None] * feature_mass[None, :]
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(expected > 0, (observed - expected) ** 2 / expected, 0.0)
    return terms.sum(axis=0)


def information_gain(values: np.ndarray, labels: np.ndarray, split: float) -> float:
    """Entropy reduction of splitting ``values`` at ``split``.

    Used by the SFA binning (MCB with information-gain boundaries) to choose
    discretisation thresholds that discriminate the classes.
    """
    values = np.asarray(values, dtype=float)
    labels = np.asarray(labels)

    def entropy(subset: np.ndarray) -> float:
        if subset.size == 0:
            return 0.0
        _, counts = np.unique(subset, return_counts=True)
        proportions = counts / counts.sum()
        return float(-np.sum(proportions * np.log2(proportions)))

    mask = values <= split
    n = len(values)
    left, right = labels[mask], labels[~mask]
    weighted = (len(left) * entropy(left) + len(right) * entropy(right)) / n
    return entropy(labels) - weighted


class SelectKBest:
    """Keep the ``k`` columns with the highest chi-squared score."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise DataError(f"k must be >= 1, got {k}")
        self.k = k
        self.selected_: np.ndarray | None = None
        self.scores_: np.ndarray | None = None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "SelectKBest":
        """Score all columns and remember the top ``k`` indices."""
        self.scores_ = chi2_scores(features, labels)
        k = min(self.k, len(self.scores_))
        top = np.argpartition(self.scores_, -k)[-k:]
        self.selected_ = np.sort(top)
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Restrict ``features`` to the selected columns."""
        if self.selected_ is None:
            raise NotFittedError("SelectKBest used before fit")
        features = np.asarray(features, dtype=float)
        return features[:, self.selected_]

    def fit_transform(self, features: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Fit on ``(features, labels)`` then transform ``features``."""
        return self.fit(features, labels).transform(features)
