"""One-Class SVM with an RBF kernel.

TEASER filters each prefix classifier's probabilistic predictions through a
One-Class SVM trained only on the correctly classified training instances;
samples the OC-SVM rejects are considered not-yet-reliable. This module
implements the standard nu-OC-SVM dual

    minimise   (1/2) a' K a
    subject to 0 <= a_i <= 1 / (nu * n),  sum(a) = 1

by projected gradient descent, with the simplex-with-box projection solved
by bisection. For the small per-prefix training sets TEASER produces this is
fast and dependable.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DataError, NotFittedError
from .distance import pairwise_squared_euclidean

__all__ = ["OneClassSVM", "rbf_kernel"]


def rbf_kernel(rows: np.ndarray, others: np.ndarray, gamma: float) -> np.ndarray:
    """Gaussian kernel matrix ``exp(-gamma * ||a - b||^2)``."""
    if gamma <= 0:
        raise DataError(f"gamma must be positive, got {gamma}")
    return np.exp(-gamma * pairwise_squared_euclidean(rows, others))


def _project_box_simplex(alpha: np.ndarray, upper: float) -> np.ndarray:
    """Project onto ``{0 <= a_i <= upper, sum(a) = 1}`` by bisection.

    The projection is ``clip(alpha - shift, 0, upper)`` for the unique shift
    making the coordinates sum to one; ``sum`` is monotone in the shift so
    bisection converges quickly.
    """
    low = alpha.min() - upper
    high = alpha.max()
    for _ in range(100):
        shift = 0.5 * (low + high)
        total = np.clip(alpha - shift, 0.0, upper).sum()
        if total > 1.0:
            low = shift
        else:
            high = shift
        if high - low < 1e-12:
            break
    return np.clip(alpha - 0.5 * (low + high), 0.0, upper)


class OneClassSVM:
    """nu-parameterised One-Class SVM (RBF kernel).

    Parameters
    ----------
    nu:
        Upper bound on the fraction of training outliers and lower bound on
        the fraction of support vectors, in ``(0, 1]``.
    gamma:
        RBF width; ``None`` selects the "scale" heuristic
        ``1 / (d * var(X))``.
    max_iter:
        Projected-gradient iterations.
    """

    def __init__(
        self,
        nu: float = 0.1,
        gamma: float | None = None,
        max_iter: int = 300,
    ) -> None:
        if not 0.0 < nu <= 1.0:
            raise DataError(f"nu must be in (0, 1], got {nu}")
        self.nu = nu
        self.gamma = gamma
        self.max_iter = max_iter
        self._rows: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._rho: float = 0.0
        self._gamma: float = 1.0

    def fit(self, rows: np.ndarray) -> "OneClassSVM":
        """Learn the support of the (single-class) training rows."""
        rows = np.asarray(rows, dtype=float)
        if rows.ndim != 2:
            raise DataError(f"expected a 2-D matrix, got shape {rows.shape}")
        n = rows.shape[0]
        if n == 0:
            raise DataError("cannot fit OneClassSVM on zero samples")
        if self.gamma is None:
            variance = rows.var()
            self._gamma = 1.0 / (rows.shape[1] * variance) if variance > 0 else 1.0
        else:
            self._gamma = self.gamma
        self._rows = rows

        upper = 1.0 / max(self.nu * n, 1.0)
        if upper * n < 1.0:
            # Box too tight to sum to one (tiny n); relax to feasibility.
            upper = 1.0 / n + 1e-12
        kernel = rbf_kernel(rows, rows, self._gamma)
        alpha = np.full(n, 1.0 / n)
        alpha = _project_box_simplex(alpha, upper)
        # Lipschitz constant of the gradient is the top kernel eigenvalue;
        # the trace upper-bounds it cheaply (diagonal of RBF is all ones).
        step = 1.0 / max(float(np.trace(kernel)) / n * n, 1.0)
        for _ in range(self.max_iter):
            gradient = kernel @ alpha
            updated = _project_box_simplex(alpha - step * gradient, upper)
            if np.abs(updated - alpha).max() < 1e-10:
                alpha = updated
                break
            alpha = updated
        self._alpha = alpha

        # At the exact optimum rho equals the score of any margin support
        # vector; with an approximate solver that estimate is biased, so we
        # calibrate rho to the nu-quantile of the training scores instead —
        # this preserves exactly the nu semantics (fraction of training
        # points rejected) that the consumers of this class rely on.
        scores = kernel @ alpha
        self._rho = float(np.quantile(scores, self.nu))
        return self

    def decision_function(self, rows: np.ndarray) -> np.ndarray:
        """Signed distance to the learned boundary (positive = inlier)."""
        if self._rows is None or self._alpha is None:
            raise NotFittedError("OneClassSVM used before fit")
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        kernel = rbf_kernel(rows, self._rows, self._gamma)
        return kernel @ self._alpha - self._rho

    def predict(self, rows: np.ndarray) -> np.ndarray:
        """+1 for inliers, -1 for outliers."""
        return np.where(self.decision_function(rows) >= 0.0, 1, -1)
