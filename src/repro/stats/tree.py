"""CART decision trees (classification and regression).

These are the base learners behind :mod:`repro.stats.boosting`, which in turn
stands in for the XGBoost base classifiers that ECONOMY-K trains per
time-point. Splits are found exactly by scanning sorted feature columns with
vectorised prefix statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.preprocessing import LabelEncoder
from ..exceptions import DataError, NotFittedError

__all__ = ["DecisionTreeRegressor", "DecisionTreeClassifier"]


@dataclass
class _Node:
    """A tree node; leaves have ``feature == -1`` and carry ``value``."""

    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    value: np.ndarray | float = 0.0


def _validate_matrix(features: np.ndarray, targets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    features = np.asarray(features, dtype=float)
    targets = np.asarray(targets)
    if features.ndim != 2:
        raise DataError(f"expected a 2-D matrix, got shape {features.shape}")
    if features.shape[0] != targets.shape[0]:
        raise DataError("features and targets must have equal length")
    if features.shape[0] == 0:
        raise DataError("cannot fit a tree on zero samples")
    return features, targets


def _best_split_mse(
    column: np.ndarray, targets: np.ndarray, min_samples_leaf: int
) -> tuple[float, float] | None:
    """Best (threshold, score-gain) for one feature under MSE reduction.

    Returns ``None`` when no valid split exists. Uses prefix sums over the
    column-sorted targets: for a split after position i, the impurity drop is
    proportional to ``S_l^2 / n_l + S_r^2 / n_r`` (larger is better).
    """
    order = np.argsort(column, kind="stable")
    sorted_values = column[order]
    sorted_targets = targets[order]
    n = len(sorted_targets)
    prefix = np.cumsum(sorted_targets)
    total = prefix[-1]
    positions = np.arange(1, n)
    # Valid split positions: enough samples each side, and a value change.
    valid = (positions >= min_samples_leaf) & (positions <= n - min_samples_leaf)
    valid &= sorted_values[1:] > sorted_values[:-1]
    if not valid.any():
        return None
    left_sum = prefix[:-1]
    left_count = positions.astype(float)
    right_count = n - left_count
    gain = left_sum**2 / left_count + (total - left_sum) ** 2 / right_count
    gain = np.where(valid, gain, -np.inf)
    best = int(gain.argmax())
    threshold = 0.5 * (sorted_values[best] + sorted_values[best + 1])
    return threshold, float(gain[best])


class DecisionTreeRegressor:
    """Exact-split CART regression tree minimising squared error."""

    def __init__(
        self,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        min_samples_split: int = 2,
    ) -> None:
        if max_depth < 1:
            raise DataError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth
        self.min_samples_leaf = max(1, min_samples_leaf)
        self.min_samples_split = max(2, min_samples_split)
        self._root: _Node | None = None

    def _build(self, features: np.ndarray, targets: np.ndarray, depth: int) -> _Node:
        node = _Node(value=float(targets.mean()))
        if depth >= self.max_depth or len(targets) < self.min_samples_split:
            return node
        best_gain = -np.inf
        best_feature = -1
        best_threshold = 0.0
        for feature in range(features.shape[1]):
            split = _best_split_mse(
                features[:, feature], targets, self.min_samples_leaf
            )
            if split is not None and split[1] > best_gain:
                best_threshold, best_gain = split
                best_feature = feature
        baseline = targets.sum() ** 2 / len(targets)
        if best_feature < 0 or best_gain <= baseline + 1e-12:
            return node
        mask = features[:, best_feature] <= best_threshold
        node.feature = best_feature
        node.threshold = best_threshold
        node.left = self._build(features[mask], targets[mask], depth + 1)
        node.right = self._build(features[~mask], targets[~mask], depth + 1)
        return node

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "DecisionTreeRegressor":
        """Grow the tree on ``(features, targets)``."""
        features, targets = _validate_matrix(features, targets)
        self._root = self._build(features, targets.astype(float), depth=0)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Mean target of the leaf each row falls into."""
        if self._root is None:
            raise NotFittedError("DecisionTreeRegressor used before fit")
        features = np.atleast_2d(np.asarray(features, dtype=float))
        out = np.empty(features.shape[0])
        for i, row in enumerate(features):
            node = self._root
            while node.feature >= 0:
                assert node.left is not None and node.right is not None
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out


class DecisionTreeClassifier:
    """Exact-split CART classification tree minimising Gini impurity."""

    def __init__(
        self,
        max_depth: int = 6,
        min_samples_leaf: int = 1,
        min_samples_split: int = 2,
    ) -> None:
        if max_depth < 1:
            raise DataError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth
        self.min_samples_leaf = max(1, min_samples_leaf)
        self.min_samples_split = max(2, min_samples_split)
        self._root: _Node | None = None
        self._encoder = LabelEncoder()

    @property
    def classes_(self) -> np.ndarray:
        """Distinct class labels seen during fit."""
        if self._encoder.classes_ is None:
            raise NotFittedError("DecisionTreeClassifier used before fit")
        return self._encoder.classes_

    def _gini(self, counts: np.ndarray) -> float:
        total = counts.sum()
        if total == 0:
            return 0.0
        proportions = counts / total
        return float(1.0 - np.sum(proportions**2))

    def _best_split_gini(
        self, column: np.ndarray, one_hot: np.ndarray
    ) -> tuple[float, float] | None:
        order = np.argsort(column, kind="stable")
        sorted_values = column[order]
        sorted_one_hot = one_hot[order]
        n = len(sorted_values)
        prefix = np.cumsum(sorted_one_hot, axis=0)
        total = prefix[-1]
        positions = np.arange(1, n)
        valid = (positions >= self.min_samples_leaf) & (
            positions <= n - self.min_samples_leaf
        )
        valid &= sorted_values[1:] > sorted_values[:-1]
        if not valid.any():
            return None
        left = prefix[:-1]
        right = total[None, :] - left
        left_n = positions.astype(float)
        right_n = n - left_n
        left_gini = 1.0 - np.sum(left**2, axis=1) / left_n**2
        right_gini = 1.0 - np.sum(right**2, axis=1) / right_n**2
        weighted = (left_n * left_gini + right_n * right_gini) / n
        weighted = np.where(valid, weighted, np.inf)
        best = int(weighted.argmin())
        threshold = 0.5 * (sorted_values[best] + sorted_values[best + 1])
        return threshold, float(weighted[best])

    def _build(self, features: np.ndarray, one_hot: np.ndarray, depth: int) -> _Node:
        counts = one_hot.sum(axis=0)
        node = _Node(value=counts / counts.sum())
        parent_gini = self._gini(counts)
        if (
            depth >= self.max_depth
            or len(one_hot) < self.min_samples_split
            or parent_gini == 0.0
        ):
            return node
        best_impurity = np.inf
        best_feature = -1
        best_threshold = 0.0
        for feature in range(features.shape[1]):
            split = self._best_split_gini(features[:, feature], one_hot)
            if split is not None and split[1] < best_impurity:
                best_threshold, best_impurity = split
                best_feature = feature
        if best_feature < 0 or best_impurity >= parent_gini - 1e-12:
            return node
        mask = features[:, best_feature] <= best_threshold
        node.feature = best_feature
        node.threshold = best_threshold
        node.left = self._build(features[mask], one_hot[mask], depth + 1)
        node.right = self._build(features[~mask], one_hot[~mask], depth + 1)
        return node

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "DecisionTreeClassifier":
        """Grow the tree on ``(features, labels)``."""
        features, labels = _validate_matrix(features, labels)
        encoded = self._encoder.fit_transform(labels)
        n_classes = len(self._encoder.classes_)
        one_hot = np.zeros((len(encoded), n_classes))
        one_hot[np.arange(len(encoded)), encoded] = 1.0
        self._root = self._build(features, one_hot, depth=0)
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Leaf class-frequency vector per row."""
        if self._root is None:
            raise NotFittedError("DecisionTreeClassifier used before fit")
        features = np.atleast_2d(np.asarray(features, dtype=float))
        out = np.empty((features.shape[0], len(self.classes_)))
        for i, row in enumerate(features):
            node = self._root
            while node.feature >= 0:
                assert node.left is not None and node.right is not None
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Most frequent class of the leaf each row falls into."""
        probabilities = self.predict_proba(features)
        return self._encoder.inverse_transform(probabilities.argmax(axis=1))
