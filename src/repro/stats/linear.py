"""Regularised logistic regression (binary and multinomial).

WEASEL, TEASER, and ECEC all end in a "fast linear-time logistic regression
classifier" over bag-of-patterns counts; MiniROCKET ends in a linear head
over PPV features. This module provides that head: softmax regression with
L2 regularisation, trained by L-BFGS with an analytic gradient.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from ..data.preprocessing import LabelEncoder
from ..exceptions import DataError, NotFittedError

__all__ = ["LogisticRegression", "softmax"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise numerically-stable softmax."""
    logits = np.asarray(logits, dtype=float)
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exponentials = np.exp(shifted)
    return exponentials / exponentials.sum(axis=-1, keepdims=True)


class LogisticRegression:
    """Multinomial logistic regression with L2 regularisation.

    Parameters
    ----------
    l2:
        Regularisation strength applied to the weights (not the intercept).
    max_iter:
        L-BFGS iteration budget.
    fit_intercept:
        Whether to learn a per-class bias term.
    """

    def __init__(
        self,
        l2: float = 1e-3,
        max_iter: int = 200,
        fit_intercept: bool = True,
    ) -> None:
        if l2 < 0:
            raise DataError(f"l2 must be >= 0, got {l2}")
        self.l2 = l2
        self.max_iter = max_iter
        self.fit_intercept = fit_intercept
        self.weights_: np.ndarray | None = None  # (n_features, n_classes)
        self.intercept_: np.ndarray | None = None  # (n_classes,)
        self._encoder = LabelEncoder()

    @property
    def classes_(self) -> np.ndarray:
        """Distinct class labels seen during fit."""
        if self._encoder.classes_ is None:
            raise NotFittedError("LogisticRegression used before fit")
        return self._encoder.classes_

    # ------------------------------------------------------------------
    def _loss_and_gradient(
        self,
        flat: np.ndarray,
        features: np.ndarray,
        one_hot: np.ndarray,
    ) -> tuple[float, np.ndarray]:
        n_samples, n_features = features.shape
        n_classes = one_hot.shape[1]
        weights = flat[: n_features * n_classes].reshape(n_features, n_classes)
        intercept = (
            flat[n_features * n_classes :]
            if self.fit_intercept
            else np.zeros(n_classes)
        )
        probabilities = softmax(features @ weights + intercept)
        log_probabilities = np.log(np.clip(probabilities, 1e-12, None))
        loss = -np.sum(one_hot * log_probabilities) / n_samples
        loss += 0.5 * self.l2 * float(np.sum(weights * weights))
        error = (probabilities - one_hot) / n_samples
        weight_gradient = features.T @ error + self.l2 * weights
        pieces = [weight_gradient.ravel()]
        if self.fit_intercept:
            pieces.append(error.sum(axis=0))
        return loss, np.concatenate(pieces)

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticRegression":
        """Fit the model by minimising regularised cross-entropy."""
        features = np.asarray(features, dtype=float)
        if features.ndim != 2:
            raise DataError(
                f"expected a 2-D feature matrix, got shape {features.shape}"
            )
        encoded = self._encoder.fit_transform(labels)
        if len(encoded) != features.shape[0]:
            raise DataError("features and labels must have equal length")
        n_classes = len(self._encoder.classes_)
        if n_classes < 2:
            # Degenerate single-class training set: predict it always.
            self.weights_ = np.zeros((features.shape[1], 1))
            self.intercept_ = np.zeros(1)
            return self
        one_hot = np.zeros((len(encoded), n_classes))
        one_hot[np.arange(len(encoded)), encoded] = 1.0

        n_parameters = features.shape[1] * n_classes
        if self.fit_intercept:
            n_parameters += n_classes
        initial = np.zeros(n_parameters)
        result = optimize.minimize(
            self._loss_and_gradient,
            initial,
            args=(features, one_hot),
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter},
        )
        flat = result.x
        self.weights_ = flat[: features.shape[1] * n_classes].reshape(
            features.shape[1], n_classes
        )
        self.intercept_ = (
            flat[features.shape[1] * n_classes :]
            if self.fit_intercept
            else np.zeros(n_classes)
        )
        return self

    # ------------------------------------------------------------------
    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Raw per-class scores ``X @ W + b``."""
        if self.weights_ is None or self.intercept_ is None:
            raise NotFittedError("LogisticRegression used before fit")
        features = np.atleast_2d(np.asarray(features, dtype=float))
        if features.shape[1] != self.weights_.shape[0]:
            raise DataError(
                f"expected {self.weights_.shape[0]} features, "
                f"got {features.shape[1]}"
            )
        return features @ self.weights_ + self.intercept_

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Per-class probabilities (columns follow ``classes_``)."""
        scores = self.decision_function(features)
        if scores.shape[1] == 1:
            return np.ones_like(scores)
        return softmax(scores)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Most probable class label per row."""
        probabilities = self.predict_proba(features)
        return self._encoder.inverse_transform(probabilities.argmax(axis=1))
