"""k-nearest-neighbour classification over row vectors.

ECTS is built on 1-NN over prefixes; this module provides the generic
classifier plus the nearest-neighbour index queries ECTS needs to construct
reverse-nearest-neighbour (RNN) sets.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DataError, NotFittedError
from .distance import pairwise_squared_euclidean

__all__ = ["KNeighborsClassifier", "nearest_neighbor_indices"]


def nearest_neighbor_indices(rows: np.ndarray) -> np.ndarray:
    """For each row, the index of its nearest *other* row.

    Ties break towards the lowest index, which keeps the RNN construction in
    ECTS deterministic.
    """
    rows = np.asarray(rows, dtype=float)
    if rows.shape[0] < 2:
        raise DataError("need at least two rows for nearest neighbours")
    distances = pairwise_squared_euclidean(rows)
    np.fill_diagonal(distances, np.inf)
    return distances.argmin(axis=1)


class KNeighborsClassifier:
    """Brute-force k-NN with majority voting (ties -> smallest label)."""

    def __init__(self, n_neighbors: int = 1) -> None:
        if n_neighbors < 1:
            raise DataError(f"n_neighbors must be >= 1, got {n_neighbors}")
        self.n_neighbors = n_neighbors
        self._rows: np.ndarray | None = None
        self._labels: np.ndarray | None = None
        self.classes_: np.ndarray | None = None

    def fit(self, rows: np.ndarray, labels: np.ndarray) -> "KNeighborsClassifier":
        """Memorise the training rows and labels."""
        rows = np.asarray(rows, dtype=float)
        labels = np.asarray(labels)
        if rows.ndim != 2:
            raise DataError(f"expected a 2-D matrix, got shape {rows.shape}")
        if rows.shape[0] != labels.shape[0]:
            raise DataError("rows and labels must have equal length")
        if rows.shape[0] < self.n_neighbors:
            raise DataError(
                f"need at least {self.n_neighbors} training rows, "
                f"got {rows.shape[0]}"
            )
        self._rows = rows
        self._labels = labels
        self.classes_ = np.unique(labels)
        return self

    def kneighbors(self, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(distances, indices)`` of the k nearest training rows."""
        if self._rows is None:
            raise NotFittedError("KNeighborsClassifier used before fit")
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        distances = pairwise_squared_euclidean(rows, self._rows)
        order = np.argsort(distances, axis=1, kind="stable")[:, : self.n_neighbors]
        sorted_distances = np.take_along_axis(distances, order, axis=1)
        return np.sqrt(sorted_distances), order

    def predict(self, rows: np.ndarray) -> np.ndarray:
        """Majority vote over the k nearest training labels."""
        if self._labels is None:
            raise NotFittedError("KNeighborsClassifier used before fit")
        _, indices = self.kneighbors(rows)
        neighbor_labels = self._labels[indices]
        predictions = np.empty(len(indices), dtype=self._labels.dtype)
        for i, votes in enumerate(neighbor_labels):
            values, counts = np.unique(votes, return_counts=True)
            predictions[i] = values[counts.argmax()]
        return predictions
