"""STRUT — Selective Truncation of Time-Series (the paper's Section 4).

STRUT is a baseline that turns any full time-series classifier into an
early classifier. Training series are iteratively truncated to prefixes of
increasing length; at each candidate length a fresh copy of the underlying
classifier is trained on the truncated training split and scored on an
equally truncated validation split. The length with the best user-chosen
metric (accuracy, F1, or the harmonic mean of accuracy and earliness)
becomes the single commitment point: at test time STRUT always waits for
exactly that many time-points and predicts with a classifier retrained on
all training data at that length.

Two search strategies are provided:

* ``"grid"`` — evaluate a fixed set of length fractions (the paper fixes
  S-MLSTM to ``{0.05, 0.2, 0.4, 0.6, 0.8, 1}`` to bound its training cost);
* ``"binary"`` — the paper's faster approximation: evaluate the full
  length once, then binary-search the smallest prefix whose score is within
  ``tolerance`` of it, skipping a substantial number of iterations.

The :func:`s_mini`, :func:`s_weasel`, and :func:`s_mlstm` factories build
the three variants evaluated in the paper (S-MINI, S-WEASEL, S-MLSTM).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core.base import EarlyClassifier, FullTSClassifier
from ..core.prediction import EarlyPrediction
from ..data.dataset import TimeSeriesDataset
from ..data.splits import train_test_split
from ..exceptions import ConfigurationError, DataError
from ..stats.metrics import accuracy as accuracy_score
from ..stats.metrics import f1_score, harmonic_mean
from ..tsc.minirocket import MiniROCKET
from ..tsc.mlstm_fcn import MLSTMFCN
from ..tsc.weasel import WEASEL

__all__ = ["STRUT", "s_mini", "s_weasel", "s_mlstm", "s_dtw"]

_METRICS = ("accuracy", "f1", "harmonic-mean")
_DEFAULT_FRACTIONS = (0.05, 0.2, 0.4, 0.6, 0.8, 1.0)


class STRUT(EarlyClassifier):
    """Selective truncation wrapper over a full time-series classifier.

    Parameters
    ----------
    classifier_factory:
        Zero-argument callable returning an unfitted
        :class:`~repro.core.base.FullTSClassifier`.
    metric:
        Score optimised over truncation lengths: ``"accuracy"``, ``"f1"``,
        or ``"harmonic-mean"`` (which also rewards shorter prefixes).
    search:
        ``"grid"`` or ``"binary"`` (see module docstring).
    grid_fractions:
        Length fractions evaluated under grid search.
    tolerance:
        Allowed score drop (relative to the full-length score) under binary
        search.
    validation_fraction:
        Stratified share of training data held out for scoring lengths.
    seed:
        Split seed.
    """

    supports_multivariate = True

    def __init__(
        self,
        classifier_factory: Callable[[], FullTSClassifier],
        metric: str = "harmonic-mean",
        search: str = "grid",
        grid_fractions: tuple[float, ...] = _DEFAULT_FRACTIONS,
        tolerance: float = 0.05,
        validation_fraction: float = 0.3,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if metric not in _METRICS:
            raise ConfigurationError(
                f"metric must be one of {_METRICS}, got {metric!r}"
            )
        if search not in ("grid", "binary"):
            raise ConfigurationError(
                f"search must be 'grid' or 'binary', got {search!r}"
            )
        if not grid_fractions or min(grid_fractions) <= 0 or max(
            grid_fractions
        ) > 1:
            raise ConfigurationError(
                "grid_fractions must be fractions in (0, 1]"
            )
        self.classifier_factory = classifier_factory
        self.metric = metric
        self.search = search
        self.grid_fractions = tuple(sorted(set(grid_fractions)))
        self.tolerance = tolerance
        self.validation_fraction = validation_fraction
        self.seed = seed
        self.best_length_: int | None = None
        self._model: FullTSClassifier | None = None
        self.evaluations_: list[tuple[int, float]] = []

    # ------------------------------------------------------------------
    def _score(
        self,
        fit_part: TimeSeriesDataset,
        validation: TimeSeriesDataset,
        prefix: int,
        predictive_only: bool = False,
    ) -> float:
        """Train at ``prefix`` and score on the truncated validation split.

        ``predictive_only`` drops the earliness reward of the
        harmonic-mean metric — used by binary search, whose target is the
        *predictive* quality of the full series (the harmonic mean at full
        length is zero by construction, so it cannot serve as a target).
        """
        model = self.classifier_factory()
        model.train(fit_part.truncate(prefix))
        predictions = model.predict(validation.truncate(prefix))
        if self.metric == "f1":
            score = f1_score(validation.labels, predictions)
        elif self.metric == "accuracy" or predictive_only:
            score = accuracy_score(validation.labels, predictions)
        else:
            score = harmonic_mean(
                accuracy_score(validation.labels, predictions),
                prefix / fit_part.length,
            )
        self.evaluations_.append((prefix, float(score)))
        return float(score)

    def _candidate_lengths(self, length: int) -> list[int]:
        candidates = sorted(
            {
                max(2, min(length, int(round(fraction * length))))
                for fraction in self.grid_fractions
            }
        )
        return [c for c in candidates if c <= length] or [length]

    def _grid_search(
        self, fit_part: TimeSeriesDataset, validation: TimeSeriesDataset
    ) -> int:
        best_score = -np.inf
        best_length = fit_part.length
        for prefix in self._candidate_lengths(fit_part.length):
            score = self._score(fit_part, validation, prefix)
            # Strict improvement keeps the earliest length on ties.
            if score > best_score:
                best_score = score
                best_length = prefix
        return best_length

    def _binary_search(
        self, fit_part: TimeSeriesDataset, validation: TimeSeriesDataset
    ) -> int:
        """Smallest prefix scoring within ``tolerance`` of the full length.

        Assumes score is roughly non-decreasing in the prefix length, which
        holds in aggregate; any local violation only costs optimality, not
        correctness.
        """
        length = fit_part.length
        target = (
            self._score(fit_part, validation, length, predictive_only=True)
            - self.tolerance
        )
        low, high = 2, length
        while low < high:
            middle = (low + high) // 2
            score = self._score(
                fit_part, validation, middle, predictive_only=True
            )
            if score >= target:
                high = middle
            else:
                low = middle + 1
        return high

    def _train(self, dataset: TimeSeriesDataset) -> None:
        self.evaluations_ = []
        try:
            fit_part, validation = train_test_split(
                dataset, self.validation_fraction, seed=self.seed
            )
            if validation.n_classes < 2 or fit_part.n_classes < 2:
                raise DataError("split lost a class")
        except DataError:
            fit_part, validation = dataset, dataset
        if self.search == "grid":
            best = self._grid_search(fit_part, validation)
        else:
            best = self._binary_search(fit_part, validation)
        self.best_length_ = best
        self._model = self.classifier_factory()
        self._model.train(dataset.truncate(best))

    # ------------------------------------------------------------------
    def _predict(self, dataset: TimeSeriesDataset) -> list[EarlyPrediction]:
        assert self._model is not None and self.best_length_ is not None
        if dataset.length < self.best_length_:
            raise DataError(
                f"STRUT committed to prefix {self.best_length_}; test "
                f"series of length {dataset.length} are too short"
            )
        truncated = dataset.truncate(self.best_length_)
        labels = self._model.predict(truncated)
        return [
            EarlyPrediction(
                label=int(label),
                prefix_length=self.best_length_,
                series_length=dataset.length,
            )
            for label in labels
        ]


def s_mini(
    metric: str = "harmonic-mean",
    search: str = "binary",
    n_features: int = 1000,
    seed: int = 0,
) -> STRUT:
    """S-MINI: STRUT over MiniROCKET (the paper's fastest accurate variant)."""
    return STRUT(
        classifier_factory=lambda: MiniROCKET(n_features=n_features, seed=seed),
        metric=metric,
        search=search,
        seed=seed,
    )


def s_weasel(
    metric: str = "harmonic-mean", search: str = "binary", seed: int = 0
) -> STRUT:
    """S-WEASEL: STRUT over WEASEL / WEASEL+MUSE."""
    return STRUT(
        classifier_factory=lambda: WEASEL(n_window_sizes=3, chi2_top_k=100),
        metric=metric,
        search=search,
        seed=seed,
    )


def s_dtw(
    metric: str = "harmonic-mean",
    search: str = "binary",
    window: int | None = 5,
    seed: int = 0,
) -> STRUT:
    """S-DTW: STRUT over 1-NN-DTW (framework extension).

    Not part of the paper's evaluated set; included to demonstrate that any
    :class:`~repro.core.base.FullTSClassifier` slots into STRUT, using the
    bake-off literature's classic baseline.
    """
    from ..stats.dtw import DTWClassifier

    return STRUT(
        classifier_factory=lambda: DTWClassifier(window=window),
        metric=metric,
        search=search,
        seed=seed,
    )


def s_mlstm(
    metric: str = "harmonic-mean",
    n_epochs: int = 20,
    lstm_units: int | None = 8,
    seed: int = 0,
) -> STRUT:
    """S-MLSTM: STRUT over MLSTM-FCN.

    Uses the paper's fixed fraction grid ``{0.05, 0.2, 0.4, 0.6, 0.8, 1}``
    (Section 6.1) instead of binary search, bounding the number of network
    trainings regardless of series length.
    """
    return STRUT(
        classifier_factory=lambda: MLSTMFCN(
            lstm_units=lstm_units, n_epochs=n_epochs, seed=seed
        ),
        metric=metric,
        search="grid",
        grid_fractions=_DEFAULT_FRACTIONS,
        seed=seed,
    )
