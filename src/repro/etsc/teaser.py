"""TEASER — Two-tier Early and Accurate Series classifiER (Schafer & Leser,
2020).

TEASER truncates training series into ``S`` overlapping prefixes and trains
a WEASEL + logistic-regression pipeline per prefix (tier one). Tier two is
a One-Class SVM per prefix, trained only on the *correctly classified*
training instances' decision features — the class-probability vector
augmented with the margin between the two best classes. At test time a
prefix prediction counts only if its OC-SVM accepts the feature vector;
the final answer fires once the same label has been accepted for ``v``
consecutive prefixes. ``v`` is chosen during training by replaying the rule
on the training data over the grid ``{1, ..., 5}`` and keeping the value
with the best harmonic mean of accuracy and earliness.

If no acceptable prediction appears before the last prefix, the final
classifier's label is emitted without any filtering — the paper's forced
decision at full length.

Following Section 6.1, z-normalisation is disabled by default
(``normalize=False``) because full-series statistics are not available
online; pass ``True`` for the original behaviour (the ablation bench
compares the two).
"""

from __future__ import annotations

import numpy as np

from ..core.base import EarlyClassifier
from ..core.prediction import EarlyPrediction
from ..data.dataset import TimeSeriesDataset
from ..exceptions import ConfigurationError
from ..stats.metrics import accuracy as accuracy_score
from ..stats.metrics import harmonic_mean
from ..stats.svm import OneClassSVM
from ..tsc.weasel import WEASEL
from ..transform.windows import prefix_lengths
from .common import validate_univariate

__all__ = ["TEASER"]


class TEASER(EarlyClassifier):
    """Two-tier WEASEL ladder with One-Class-SVM acceptance.

    Parameters
    ----------
    n_prefixes:
        Ladder size ``S`` (the paper uses 20 for UCR data, 10 for the
        Biological/Maritime datasets).
    consistency_grid:
        Candidate values for the consecutive-agreement parameter ``v``.
    nu:
        OC-SVM rejection budget per prefix.
    normalize:
        Apply per-series z-normalisation inside WEASEL (off by default).
    weasel_factory:
        Zero-argument callable building each tier-one pipeline.
    """

    supports_multivariate = False

    def __init__(
        self,
        n_prefixes: int = 20,
        consistency_grid: tuple[int, ...] = (1, 2, 3, 4, 5),
        nu: float = 0.1,
        normalize: bool = False,
        weasel_factory=None,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if n_prefixes < 1:
            raise ConfigurationError("n_prefixes must be >= 1")
        if not consistency_grid or min(consistency_grid) < 1:
            raise ConfigurationError("consistency_grid must hold values >= 1")
        self.n_prefixes = n_prefixes
        self.consistency_grid = tuple(consistency_grid)
        self.nu = nu
        self.normalize = normalize
        self.weasel_factory = weasel_factory or (
            lambda: WEASEL(
                n_window_sizes=3, chi2_top_k=100, normalize=normalize
            )
        )
        self.seed = seed
        self._ladder: list[int] | None = None
        self._classifiers: list[WEASEL] | None = None
        self._filters: list[OneClassSVM | None] | None = None
        self.v_: int | None = None
        # Streaming-consult state: per-rung tier outputs are cached as
        # rungs become reachable, so growing prefixes of one stream only
        # pay for newly reachable rungs.
        self._stream_state: dict | None = None

    # ------------------------------------------------------------------
    @staticmethod
    def _decision_features(probabilities: np.ndarray) -> np.ndarray:
        """OC-SVM features: probability vector plus best-vs-second margin."""
        if probabilities.shape[1] == 1:
            margin = np.ones((probabilities.shape[0], 1))
        else:
            ordered = np.sort(probabilities, axis=1)
            margin = (ordered[:, -1] - ordered[:, -2])[:, None]
        return np.concatenate([probabilities, margin], axis=1)

    def _train(self, dataset: TimeSeriesDataset) -> None:
        validate_univariate(dataset)
        ladder = prefix_lengths(dataset.length, self.n_prefixes)
        self._ladder = ladder
        self._classifiers = []
        self._filters = []
        train_acceptance = np.zeros(
            (len(ladder), dataset.n_instances), dtype=bool
        )
        train_predictions = np.zeros(
            (len(ladder), dataset.n_instances), dtype=dataset.labels.dtype
        )
        for row, prefix in enumerate(ladder):
            classifier = self.weasel_factory()
            classifier.train(dataset.truncate(prefix))
            probabilities = classifier.predict_proba(dataset.truncate(prefix))
            predicted = classifier.classes_[probabilities.argmax(axis=1)]
            correct = predicted == dataset.labels
            features = self._decision_features(probabilities)
            if correct.sum() >= 2:
                oc_filter: OneClassSVM | None = OneClassSVM(nu=self.nu)
                oc_filter.fit(features[correct])
                accepted = oc_filter.predict(features) == 1
            else:
                oc_filter = None
                accepted = np.ones(dataset.n_instances, dtype=bool)
            self._classifiers.append(classifier)
            self._filters.append(oc_filter)
            train_predictions[row] = predicted
            train_acceptance[row] = accepted
        self.v_ = self._select_consistency(
            train_predictions, train_acceptance, dataset.labels, ladder,
            dataset.length,
        )

    def _select_consistency(
        self,
        predictions: np.ndarray,
        acceptance: np.ndarray,
        labels: np.ndarray,
        ladder: list[int],
        full_length: int,
    ) -> int:
        """Grid-search ``v`` by harmonic mean on the training replay."""
        ladder_array = np.asarray(ladder, dtype=float)
        best_score = -np.inf
        best_v = self.consistency_grid[0]
        for v in self.consistency_grid:
            final_labels, final_rows = self._replay(
                predictions, acceptance, v
            )
            acc = accuracy_score(labels, final_labels)
            earliness_value = float(
                (ladder_array[final_rows] / full_length).mean()
            )
            score = harmonic_mean(acc, earliness_value)
            if score > best_score:
                best_score = score
                best_v = v
        return best_v

    @staticmethod
    def _replay(
        predictions: np.ndarray, acceptance: np.ndarray, v: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Apply the v-consistency rule to precomputed ladder outputs."""
        n_rows, n = predictions.shape
        final_labels = predictions[-1].copy()
        final_rows = np.full(n, n_rows - 1)
        for instance in range(n):
            streak_label = None
            streak = 0
            for row in range(n_rows):
                if acceptance[row, instance]:
                    label = predictions[row, instance]
                    if label == streak_label:
                        streak += 1
                    else:
                        streak_label = label
                        streak = 1
                    if streak >= v:
                        final_labels[instance] = label
                        final_rows[instance] = row
                        break
                else:
                    streak_label = None
                    streak = 0
        return final_labels, final_rows

    # ------------------------------------------------------------------
    def _predict(self, dataset: TimeSeriesDataset) -> list[EarlyPrediction]:
        assert self._ladder is not None and self._classifiers is not None
        assert self._filters is not None and self.v_ is not None
        reachable = [
            row
            for row, prefix in enumerate(self._ladder)
            if prefix <= dataset.length
        ] or [0]
        predictions: list[EarlyPrediction] = []
        for i in range(dataset.n_instances):
            instance = dataset.select([i])
            streak_label: int | None = None
            streak = 0
            decided: EarlyPrediction | None = None
            for position, row in enumerate(reachable):
                prefix = min(self._ladder[row], dataset.length)
                truncated = instance.truncate(prefix)
                probabilities = self._classifiers[row].predict_proba(truncated)
                label = int(
                    self._classifiers[row].classes_[
                        probabilities.argmax(axis=1)[0]
                    ]
                )
                is_last = position == len(reachable) - 1
                if is_last:
                    # Forced decision: last prefix bypasses both tiers.
                    decided = EarlyPrediction(
                        label=label,
                        prefix_length=prefix,
                        series_length=dataset.length,
                        confidence=float(probabilities.max()),
                    )
                    break
                oc_filter = self._filters[row]
                features = self._decision_features(probabilities)
                accepted = (
                    oc_filter is None
                    or oc_filter.predict(features)[0] == 1
                )
                if accepted:
                    if label == streak_label:
                        streak += 1
                    else:
                        streak_label = label
                        streak = 1
                    if streak >= self.v_:
                        decided = EarlyPrediction(
                            label=label,
                            prefix_length=prefix,
                            series_length=dataset.length,
                            confidence=float(probabilities.max()),
                        )
                        break
                else:
                    streak_label = None
                    streak = 0
            assert decided is not None
            predictions.append(decided)
        return predictions

    def _rung_outputs(
        self, instance: TimeSeriesDataset, row: int
    ) -> tuple[int, float, bool]:
        """(label, confidence, tier-two acceptance) of one ladder rung."""
        assert self._ladder is not None and self._classifiers is not None
        assert self._filters is not None
        truncated = instance.truncate(self._ladder[row])
        probabilities = self._classifiers[row].predict_proba(truncated)
        label = int(
            self._classifiers[row].classes_[probabilities.argmax(axis=1)[0]]
        )
        confidence = float(probabilities.max())
        oc_filter = self._filters[row]
        accepted = (
            oc_filter is None
            or oc_filter.predict(self._decision_features(probabilities))[0]
            == 1
        )
        return label, confidence, accepted

    def predict_one(self, series: np.ndarray) -> EarlyPrediction:
        """Streaming consult with per-rung output caching.

        A rung's tier outputs depend only on ``truncate(ladder[row])`` of
        the stream, which never changes once the rung is reachable — so
        consecutive consults over growing prefixes of the same stream
        evaluate each WEASEL/OC-SVM pair exactly once. The v-consistency
        streak replays incrementally over the cached rungs; the forced
        decision at the currently-last reachable rung is recomputed per
        consult from the cache. Non-continuation inputs reset the cache,
        so results always match the uncached path.
        """
        series = np.atleast_2d(np.asarray(series, dtype=float))
        if (
            series.ndim != 2
            or series.shape[0] != 1
            or series.shape[1] < 1
            or not self.is_trained
            or series.shape[1] > self.trained_length
        ):
            self._stream_state = None
            return super().predict_one(series)
        assert self._ladder is not None and self.v_ is not None
        row_values = series[0]
        t = row_values.size
        n_reachable = sum(1 for prefix in self._ladder if prefix <= t)
        if n_reachable == 0:
            # Shorter than the first rung: the forced rung sees the whole
            # (still growing) prefix, so there is nothing stable to cache.
            self._stream_state = None
            return super().predict_one(series)
        state = self._stream_state
        consumed = 0 if state is None else state["length"]
        if (
            state is None
            or consumed > t
            or not np.array_equal(row_values[:consumed], state["seen"])
        ):
            state = {
                "length": 0,
                "seen": np.empty(0),
                "rungs": [],  # (label, confidence, accepted) per rung
                "streak_label": None,
                "streak": 0,
                "folded": 0,  # rungs already folded into the streak
                "fired": None,  # (label, confidence, row) once v is met
            }
            self._stream_state = state
        instance = TimeSeriesDataset(
            series[np.newaxis, :, :], np.zeros(1, dtype=int)
        )
        rungs: list[tuple[int, float, bool]] = state["rungs"]
        for row in range(len(rungs), n_reachable):
            rungs.append(self._rung_outputs(instance, row))
        state["length"] = t
        state["seen"] = row_values.copy()
        # Fold newly non-last rungs into the streak (the last reachable
        # rung is the forced decision, never part of the streak).
        while state["fired"] is None and state["folded"] < n_reachable - 1:
            label, confidence, accepted = rungs[state["folded"]]
            if accepted:
                if label == state["streak_label"]:
                    state["streak"] += 1
                else:
                    state["streak_label"] = label
                    state["streak"] = 1
                if state["streak"] >= self.v_:
                    state["fired"] = (label, confidence, state["folded"])
            else:
                state["streak_label"] = None
                state["streak"] = 0
            state["folded"] += 1
        if state["fired"] is not None:
            label, confidence, row = state["fired"]
        else:
            label, confidence, _ = rungs[n_reachable - 1]
            row = n_reachable - 1
        return EarlyPrediction(
            label=label,
            prefix_length=min(self._ladder[row], t),
            series_length=t,
            confidence=confidence,
        )
