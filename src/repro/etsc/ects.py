"""ECTS — Early Classification on Time Series (Xing, Pei & Yu, 2012).

ECTS is 1-NN-based. For every training series and every prefix length it
tracks the series' Reverse Nearest Neighbours (RNN — who considers *me*
their nearest neighbour). The Minimum Prediction Length (MPL) of a series is
the earliest prefix from which its RNN set stays identical all the way to
the full length (and is non-empty): from that point on, the series is a
stable predictor for whatever matches it.

To make predictions earlier, ECTS additionally clusters the training series
agglomeratively (1-NN / single-linkage merge order). Every *label-pure*
cluster gets its own MPL from two conditions holding for all longer
prefixes: (a) RNN consistency — the set of series whose nearest neighbour
falls inside the cluster equals the full-length set and is non-empty; and
(b) 1-NN consistency — each member's nearest neighbour lies inside the
cluster. Members inherit the smallest MPL among their own and those of the
pure clusters containing them.

At test time, prefixes stream in; the incoming prefix is matched to its
nearest training series, and a prediction fires as soon as the observed
length reaches that neighbour's MPL (forced at full length).

Pairwise prefix distances are maintained incrementally — the squared
distance at prefix ``l`` is the prefix-``l-1`` distance plus the
point-``l`` difference — so training costs ``O(N^2 L)`` plus the
``O(N^3)`` clustering, matching the complexity reported in Table 5.
"""

from __future__ import annotations

import numpy as np

from ..core.base import EarlyClassifier
from ..core.prediction import EarlyPrediction
from ..data.dataset import TimeSeriesDataset
from ..exceptions import ConfigurationError
from ..stats.distance import PrefixDistanceCache
from ..stats.hierarchical import linkage_merge_order
from .common import validate_univariate

__all__ = ["ECTS"]


class ECTS(EarlyClassifier):
    """Early Classification on Time Series via RNN-stable 1-NN prefixes.

    Parameters
    ----------
    support:
        Minimum RNN-set size for a series (or cluster) to qualify as a
        predictor; the paper's experiments use 0 (Table 4).
    linkage:
        Linkage of the agglomerative clustering phase; the original
        algorithm merges by 1-NN distance, i.e. ``"single"``.
    use_clustering:
        Disable to run "plain" ECTS on per-series MPLs only (useful for
        ablation; the clustering phase exists to lower MPLs).
    """

    supports_multivariate = False

    def __init__(
        self,
        support: int = 0,
        linkage: str = "single",
        use_clustering: bool = True,
    ) -> None:
        super().__init__()
        if support < 0:
            raise ConfigurationError(f"support must be >= 0, got {support}")
        self.support = support
        self.linkage = linkage
        self.use_clustering = use_clustering
        self._train_values: np.ndarray | None = None  # (N, L)
        self._train_labels: np.ndarray | None = None
        self._mpl: np.ndarray | None = None  # per training series
        # Streaming-consult state: when predict_one is called with growing
        # prefixes of one stream, prefix distances are advanced
        # incrementally instead of recomputed from scratch per consult.
        self._stream_state: dict | None = None

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    @staticmethod
    def _prefix_nearest_neighbors(matrix: np.ndarray) -> np.ndarray:
        """Nearest-neighbour index per series per prefix, shape ``(L, N)``.

        A :class:`PrefixDistanceCache` with every training series as both
        query and reference advances the all-pairs squared prefix
        distances one time-point per step, so the full table costs one
        pass over the time axis.
        """
        n_series, length = matrix.shape
        cache = PrefixDistanceCache(matrix, n_queries=n_series)
        nearest = np.empty((length, n_series), dtype=int)
        for t in range(length):
            distances = cache.advance(matrix[:, t])
            masked = distances.copy()
            np.fill_diagonal(masked, np.inf)
            nearest[t] = masked.argmin(axis=1)
        return nearest

    @staticmethod
    def _rnn_sets(nearest_row: np.ndarray) -> list[frozenset[int]]:
        """RNN set per series from one prefix's NN assignments."""
        n_series = len(nearest_row)
        sets: list[set[int]] = [set() for _ in range(n_series)]
        for series, neighbor in enumerate(nearest_row):
            sets[neighbor].add(series)
        return [frozenset(s) for s in sets]

    def _series_mpls(self, nearest: np.ndarray) -> np.ndarray:
        """Per-series MPL from RNN stability (1-based prefix lengths)."""
        length, n_series = nearest.shape
        rnn_per_prefix = [self._rnn_sets(nearest[t]) for t in range(length)]
        final = rnn_per_prefix[-1]
        mpls = np.full(n_series, length, dtype=int)
        for series in range(n_series):
            if len(final[series]) <= self.support:
                continue  # never a qualified predictor before full length
            stable_from = length - 1
            for t in range(length - 2, -1, -1):
                if rnn_per_prefix[t][series] == final[series]:
                    stable_from = t
                else:
                    break
            mpls[series] = stable_from + 1  # prefix index -> prefix length
        return mpls

    def _cluster_mpls(
        self,
        matrix: np.ndarray,
        labels: np.ndarray,
        nearest: np.ndarray,
        mpls: np.ndarray,
    ) -> np.ndarray:
        """Lower per-series MPLs using label-pure agglomerative clusters."""
        length, n_series = nearest.shape
        merges = linkage_merge_order(matrix, self.linkage)
        members: dict[int, frozenset[int]] = {
            i: frozenset([i]) for i in range(n_series)
        }
        improved = mpls.copy()
        for merge in merges:
            cluster = members[merge.left] | members[merge.right]
            members[merge.merged] = cluster
            if len({int(labels[i]) for i in cluster}) != 1:
                continue  # only label-pure clusters act as predictors
            cluster_mpl = self._one_cluster_mpl(cluster, nearest, length)
            if cluster_mpl is None:
                continue
            for series in cluster:
                improved[series] = min(improved[series], cluster_mpl)
        return improved

    def _one_cluster_mpl(
        self, cluster: frozenset[int], nearest: np.ndarray, length: int
    ) -> int | None:
        """MPL of one cluster, or ``None`` if it never stabilises.

        Checks, from the full length backwards, RNN consistency (the set of
        series whose NN lies in the cluster equals the full-length set, and
        exceeds the support) and 1-NN consistency (members' NNs stay inside
        the cluster).
        """
        member_array = np.asarray(sorted(cluster))
        in_cluster = np.zeros(nearest.shape[1], dtype=bool)
        in_cluster[member_array] = True

        final_rnn = frozenset(np.flatnonzero(in_cluster[nearest[-1]]))
        if len(final_rnn) <= self.support:
            return None
        if not in_cluster[nearest[-1][member_array]].all():
            return None  # not even 1-NN consistent at full length
        stable_from = length - 1
        for t in range(length - 2, -1, -1):
            rnn = frozenset(np.flatnonzero(in_cluster[nearest[t]]))
            nn_consistent = in_cluster[nearest[t][member_array]].all()
            if rnn == final_rnn and nn_consistent:
                stable_from = t
            else:
                break
        return stable_from + 1

    def _train(self, dataset: TimeSeriesDataset) -> None:
        matrix = validate_univariate(dataset)
        self._train_values = matrix
        self._train_labels = dataset.labels.copy()
        nearest = self._prefix_nearest_neighbors(matrix)
        mpls = self._series_mpls(nearest)
        if self.use_clustering and dataset.n_instances >= 2:
            mpls = self._cluster_mpls(matrix, dataset.labels, nearest, mpls)
        self._mpl = mpls

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def _scan_new_points(
        self, cache: PrefixDistanceCache, new_points: np.ndarray
    ) -> tuple[int, int] | None:
        """Advance the prefix cache, firing the MPL rule on each new point.

        Returns ``(label, prefix_length)`` at the first qualifying prefix,
        or ``None`` if the rule never fires over ``new_points``.
        """
        assert self._train_labels is not None and self._mpl is not None
        for value in new_points:
            distances = cache.advance(value)
            neighbor = int(distances.argmin())
            if cache.length >= self._mpl[neighbor]:
                return int(self._train_labels[neighbor]), cache.length
        return None

    def _forced_label(self, cache: PrefixDistanceCache) -> int:
        """Nearest neighbour's label at the current prefix length."""
        assert self._train_labels is not None
        neighbor = int(cache.squared_distances[0].argmin())
        return int(self._train_labels[neighbor])

    def _predict(self, dataset: TimeSeriesDataset) -> list[EarlyPrediction]:
        assert self._train_values is not None
        assert self._train_labels is not None and self._mpl is not None
        test_matrix = dataset.values[:, 0, :]
        predictions: list[EarlyPrediction] = []
        train = self._train_values
        for row in test_matrix:
            length = len(row)
            cache = PrefixDistanceCache(train)
            fired = self._scan_new_points(cache, row)
            if fired is not None:
                label, prefix_length = fired
            else:
                label, prefix_length = self._forced_label(cache), length
            predictions.append(
                EarlyPrediction(
                    label=label,
                    prefix_length=prefix_length,
                    series_length=length,
                )
            )
        return predictions

    def predict_one(self, series: np.ndarray) -> EarlyPrediction:
        """Streaming consult with incremental prefix-distance caching.

        Consecutive calls with growing prefixes of the *same* stream only
        pay for the newly observed points (``O(N)`` each) instead of
        re-accumulating the whole prefix. Any input that is not a
        continuation — a new stream, a shorter prefix, edited history —
        resets the cache and replays from scratch, so results are
        identical to the uncached path in every case.
        """
        series = np.atleast_2d(np.asarray(series, dtype=float))
        if (
            series.ndim != 2
            or series.shape[0] != 1
            or series.shape[1] < 1
            or not self.is_trained
            or series.shape[1] > self.trained_length
        ):
            # Not streamable input: the validating base path raises the
            # same errors it always did.
            self._stream_state = None
            return super().predict_one(series)
        assert self._train_values is not None
        row = series[0]
        t = row.size
        state = self._stream_state
        consumed = 0 if state is None else state["length"]
        if (
            state is None
            or consumed > t
            or not np.array_equal(row[:consumed], state["seen"])
        ):
            state = {
                "cache": PrefixDistanceCache(self._train_values),
                "length": 0,
                "seen": np.empty(0),
                "fired": None,
            }
            self._stream_state = state
            consumed = 0
        if state["fired"] is None:
            state["fired"] = self._scan_new_points(
                state["cache"], row[consumed:t]
            )
        state["length"] = t
        state["seen"] = row.copy()
        if state["fired"] is not None:
            label, prefix_length = state["fired"]
        else:
            cache = state["cache"]
            if cache.length < t:  # rule fired earlier? no — keep current
                cache.advance_chunk(row[cache.length : t])
            label, prefix_length = self._forced_label(cache), t
        return EarlyPrediction(
            label=label, prefix_length=prefix_length, series_length=t
        )
