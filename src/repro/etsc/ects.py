"""ECTS — Early Classification on Time Series (Xing, Pei & Yu, 2012).

ECTS is 1-NN-based. For every training series and every prefix length it
tracks the series' Reverse Nearest Neighbours (RNN — who considers *me*
their nearest neighbour). The Minimum Prediction Length (MPL) of a series is
the earliest prefix from which its RNN set stays identical all the way to
the full length (and is non-empty): from that point on, the series is a
stable predictor for whatever matches it.

To make predictions earlier, ECTS additionally clusters the training series
agglomeratively (1-NN / single-linkage merge order). Every *label-pure*
cluster gets its own MPL from two conditions holding for all longer
prefixes: (a) RNN consistency — the set of series whose nearest neighbour
falls inside the cluster equals the full-length set and is non-empty; and
(b) 1-NN consistency — each member's nearest neighbour lies inside the
cluster. Members inherit the smallest MPL among their own and those of the
pure clusters containing them.

At test time, prefixes stream in; the incoming prefix is matched to its
nearest training series, and a prediction fires as soon as the observed
length reaches that neighbour's MPL (forced at full length).

Pairwise prefix distances are maintained incrementally — the squared
distance at prefix ``l`` is the prefix-``l-1`` distance plus the
point-``l`` difference — so training costs ``O(N^2 L)`` plus the
``O(N^3)`` clustering, matching the complexity reported in Table 5.
"""

from __future__ import annotations

import numpy as np

from ..core.base import EarlyClassifier
from ..core.prediction import EarlyPrediction
from ..data.dataset import TimeSeriesDataset
from ..exceptions import ConfigurationError
from ..stats.hierarchical import linkage_merge_order
from .common import validate_univariate

__all__ = ["ECTS"]


class ECTS(EarlyClassifier):
    """Early Classification on Time Series via RNN-stable 1-NN prefixes.

    Parameters
    ----------
    support:
        Minimum RNN-set size for a series (or cluster) to qualify as a
        predictor; the paper's experiments use 0 (Table 4).
    linkage:
        Linkage of the agglomerative clustering phase; the original
        algorithm merges by 1-NN distance, i.e. ``"single"``.
    use_clustering:
        Disable to run "plain" ECTS on per-series MPLs only (useful for
        ablation; the clustering phase exists to lower MPLs).
    """

    supports_multivariate = False

    def __init__(
        self,
        support: int = 0,
        linkage: str = "single",
        use_clustering: bool = True,
    ) -> None:
        super().__init__()
        if support < 0:
            raise ConfigurationError(f"support must be >= 0, got {support}")
        self.support = support
        self.linkage = linkage
        self.use_clustering = use_clustering
        self._train_values: np.ndarray | None = None  # (N, L)
        self._train_labels: np.ndarray | None = None
        self._mpl: np.ndarray | None = None  # per training series

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    @staticmethod
    def _prefix_nearest_neighbors(matrix: np.ndarray) -> np.ndarray:
        """Nearest-neighbour index per series per prefix, shape ``(L, N)``.

        Incrementally accumulates squared prefix distances so the full
        table costs one pass over the time axis.
        """
        n_series, length = matrix.shape
        distances = np.zeros((n_series, n_series))
        nearest = np.empty((length, n_series), dtype=int)
        for t in range(length):
            column = matrix[:, t]
            distances += (column[:, None] - column[None, :]) ** 2
            masked = distances.copy()
            np.fill_diagonal(masked, np.inf)
            nearest[t] = masked.argmin(axis=1)
        return nearest

    @staticmethod
    def _rnn_sets(nearest_row: np.ndarray) -> list[frozenset[int]]:
        """RNN set per series from one prefix's NN assignments."""
        n_series = len(nearest_row)
        sets: list[set[int]] = [set() for _ in range(n_series)]
        for series, neighbor in enumerate(nearest_row):
            sets[neighbor].add(series)
        return [frozenset(s) for s in sets]

    def _series_mpls(self, nearest: np.ndarray) -> np.ndarray:
        """Per-series MPL from RNN stability (1-based prefix lengths)."""
        length, n_series = nearest.shape
        rnn_per_prefix = [self._rnn_sets(nearest[t]) for t in range(length)]
        final = rnn_per_prefix[-1]
        mpls = np.full(n_series, length, dtype=int)
        for series in range(n_series):
            if len(final[series]) <= self.support:
                continue  # never a qualified predictor before full length
            stable_from = length - 1
            for t in range(length - 2, -1, -1):
                if rnn_per_prefix[t][series] == final[series]:
                    stable_from = t
                else:
                    break
            mpls[series] = stable_from + 1  # prefix index -> prefix length
        return mpls

    def _cluster_mpls(
        self,
        matrix: np.ndarray,
        labels: np.ndarray,
        nearest: np.ndarray,
        mpls: np.ndarray,
    ) -> np.ndarray:
        """Lower per-series MPLs using label-pure agglomerative clusters."""
        length, n_series = nearest.shape
        merges = linkage_merge_order(matrix, self.linkage)
        members: dict[int, frozenset[int]] = {
            i: frozenset([i]) for i in range(n_series)
        }
        improved = mpls.copy()
        for merge in merges:
            cluster = members[merge.left] | members[merge.right]
            members[merge.merged] = cluster
            if len({int(labels[i]) for i in cluster}) != 1:
                continue  # only label-pure clusters act as predictors
            cluster_mpl = self._one_cluster_mpl(cluster, nearest, length)
            if cluster_mpl is None:
                continue
            for series in cluster:
                improved[series] = min(improved[series], cluster_mpl)
        return improved

    def _one_cluster_mpl(
        self, cluster: frozenset[int], nearest: np.ndarray, length: int
    ) -> int | None:
        """MPL of one cluster, or ``None`` if it never stabilises.

        Checks, from the full length backwards, RNN consistency (the set of
        series whose NN lies in the cluster equals the full-length set, and
        exceeds the support) and 1-NN consistency (members' NNs stay inside
        the cluster).
        """
        member_array = np.asarray(sorted(cluster))
        in_cluster = np.zeros(nearest.shape[1], dtype=bool)
        in_cluster[member_array] = True

        final_rnn = frozenset(np.flatnonzero(in_cluster[nearest[-1]]))
        if len(final_rnn) <= self.support:
            return None
        if not in_cluster[nearest[-1][member_array]].all():
            return None  # not even 1-NN consistent at full length
        stable_from = length - 1
        for t in range(length - 2, -1, -1):
            rnn = frozenset(np.flatnonzero(in_cluster[nearest[t]]))
            nn_consistent = in_cluster[nearest[t][member_array]].all()
            if rnn == final_rnn and nn_consistent:
                stable_from = t
            else:
                break
        return stable_from + 1

    def _train(self, dataset: TimeSeriesDataset) -> None:
        matrix = validate_univariate(dataset)
        self._train_values = matrix
        self._train_labels = dataset.labels.copy()
        nearest = self._prefix_nearest_neighbors(matrix)
        mpls = self._series_mpls(nearest)
        if self.use_clustering and dataset.n_instances >= 2:
            mpls = self._cluster_mpls(matrix, dataset.labels, nearest, mpls)
        self._mpl = mpls

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def _predict(self, dataset: TimeSeriesDataset) -> list[EarlyPrediction]:
        assert self._train_values is not None
        assert self._train_labels is not None and self._mpl is not None
        test_matrix = dataset.values[:, 0, :]
        predictions: list[EarlyPrediction] = []
        train = self._train_values
        for row in test_matrix:
            length = len(row)
            distances = np.zeros(train.shape[0])
            decided: EarlyPrediction | None = None
            for t in range(length):
                distances += (train[:, t] - row[t]) ** 2
                neighbor = int(distances.argmin())
                if t + 1 >= self._mpl[neighbor]:
                    decided = EarlyPrediction(
                        label=int(self._train_labels[neighbor]),
                        prefix_length=t + 1,
                        series_length=length,
                    )
                    break
            if decided is None:
                neighbor = int(distances.argmin())
                decided = EarlyPrediction(
                    label=int(self._train_labels[neighbor]),
                    prefix_length=length,
                    series_length=length,
                )
            predictions.append(decided)
        return predictions
