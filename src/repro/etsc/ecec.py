"""ECEC — Effective Confidence-based Early Classification (Lv et al., 2019).

ECEC truncates training series into ``N`` overlapping prefixes and trains
one WEASEL classifier per prefix length. Internal cross-validation yields
out-of-fold predictions per prefix, from which ECEC estimates the
*reliability* of each classifier: ``P(y = c | h_t(x) = c)`` per class. The
confidence in the prediction at prefix ``t`` fuses every earlier classifier
that agrees with it:

    C_t = 1 - prod_{i <= t, h_i(x) = h_t(x)} (1 - reliability_i(h_t(x)))

Candidate confidence thresholds are the midpoints of adjacent sorted
out-of-fold confidences; each candidate is scored by replaying the early-
stopping rule on the training data and evaluating

    CF(theta) = alpha * (1 - accuracy) + (1 - alpha) * earliness

(the paper's trade-off, ``alpha = 0.8``), and the minimiser becomes the
global threshold. At test time, prefixes stream through the classifier
ladder and the first prediction whose fused confidence reaches the
threshold fires (forced at the final prefix).
"""

from __future__ import annotations

import numpy as np

from ..core.base import EarlyClassifier
from ..core.prediction import EarlyPrediction
from ..data.dataset import TimeSeriesDataset
from ..data.splits import stratified_indices
from ..exceptions import ConfigurationError
from ..stats.metrics import accuracy as accuracy_score
from ..tsc.weasel import WEASEL
from ..transform.windows import prefix_lengths
from .common import validate_univariate

__all__ = ["ECEC"]


class ECEC(EarlyClassifier):
    """Confidence-fused prefix-classifier ladder over WEASEL.

    Parameters
    ----------
    n_prefixes:
        Ladder size ``N`` (Table 4 uses 20).
    alpha:
        Accuracy-vs-earliness trade-off in the threshold cost
        (Table 4 uses 0.8).
    n_folds:
        Internal cross-validation folds for reliability estimation.
    max_threshold_candidates:
        Cap on evaluated thresholds (midpoints are subsampled evenly
        beyond this, bounding the ``O(candidates * N * height)`` selection).
    weasel_factory:
        Zero-argument callable building the per-prefix classifier;
        defaults to the framework's WEASEL configuration.
    """

    supports_multivariate = False

    def __init__(
        self,
        n_prefixes: int = 20,
        alpha: float = 0.8,
        n_folds: int = 3,
        max_threshold_candidates: int = 60,
        weasel_factory=None,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if n_prefixes < 1:
            raise ConfigurationError("n_prefixes must be >= 1")
        if not 0.0 <= alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in [0, 1], got {alpha}")
        if n_folds < 2:
            raise ConfigurationError("n_folds must be >= 2")
        self.n_prefixes = n_prefixes
        self.alpha = alpha
        self.n_folds = n_folds
        self.max_threshold_candidates = max_threshold_candidates
        self.weasel_factory = weasel_factory or (
            lambda: WEASEL(n_window_sizes=3, chi2_top_k=100)
        )
        self.seed = seed
        self._ladder: list[int] | None = None
        self._classifiers: list[WEASEL] | None = None
        self._reliability: dict[tuple[int, int], float] | None = None
        self.threshold_: float | None = None

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def _out_of_fold_predictions(
        self, dataset: TimeSeriesDataset, ladder: list[int]
    ) -> np.ndarray:
        """Out-of-fold label predictions, shape ``(n_prefixes, n_instances)``."""
        n = dataset.n_instances
        predictions = np.zeros((len(ladder), n), dtype=dataset.labels.dtype)
        smallest_class = int(np.unique(dataset.labels, return_counts=True)[1].min())
        n_folds = max(2, min(self.n_folds, smallest_class, n))
        folds = stratified_indices(dataset.labels, n_folds, self.seed)
        all_indices = np.arange(n)
        for fold in folds:
            test_mask = np.zeros(n, dtype=bool)
            test_mask[fold] = True
            train_part = dataset.select(all_indices[~test_mask])
            test_part = dataset.select(fold)
            if train_part.n_classes < 2:
                # Degenerate fold: fall back to the majority label.
                values, counts = np.unique(
                    train_part.labels, return_counts=True
                )
                predictions[:, fold] = values[counts.argmax()]
                continue
            for row, prefix in enumerate(ladder):
                classifier = self.weasel_factory()
                classifier.train(train_part.truncate(prefix))
                predictions[row, fold] = classifier.predict(
                    test_part.truncate(prefix)
                )
        return predictions

    @staticmethod
    def _fit_reliability(
        oof: np.ndarray, labels: np.ndarray
    ) -> dict[tuple[int, int], float]:
        """``P(y = c | h_t(x) = c)`` per (prefix row, class)."""
        reliability: dict[tuple[int, int], float] = {}
        for row in range(oof.shape[0]):
            for label in np.unique(labels):
                predicted_c = oof[row] == label
                if predicted_c.any():
                    value = float(
                        (labels[predicted_c] == label).mean()
                    )
                else:
                    value = 0.0
                reliability[(row, int(label))] = value
        return reliability

    def _fused_confidence(
        self, predictions_so_far: np.ndarray, reliability_lookup
    ) -> float:
        """Confidence of the latest prediction given earlier agreements."""
        current = predictions_so_far[-1]
        complement = 1.0
        for row, label in enumerate(predictions_so_far):
            if label == current:
                complement *= 1.0 - reliability_lookup(row, int(current))
        return 1.0 - complement

    def _training_confidences(
        self, oof: np.ndarray
    ) -> np.ndarray:
        """Fused confidence per (prefix row, instance) on the OOF table."""
        assert self._reliability is not None
        n_rows, n = oof.shape
        confidences = np.zeros((n_rows, n))
        lookup = lambda row, label: self._reliability.get((row, label), 0.0)
        for instance in range(n):
            for row in range(n_rows):
                confidences[row, instance] = self._fused_confidence(
                    oof[: row + 1, instance], lookup
                )
        return confidences

    def _select_threshold(
        self,
        oof: np.ndarray,
        confidences: np.ndarray,
        labels: np.ndarray,
        ladder: list[int],
        full_length: int,
    ) -> float:
        """Replay the stopping rule per candidate threshold; keep the best."""
        flat = np.unique(confidences.ravel())
        if flat.size < 2:
            return float(flat[0]) if flat.size else 0.5
        candidates = 0.5 * (flat[1:] + flat[:-1])
        if candidates.size > self.max_threshold_candidates:
            picks = np.linspace(
                0, candidates.size - 1, self.max_threshold_candidates
            ).astype(int)
            candidates = candidates[picks]
        ladder_array = np.asarray(ladder, dtype=float)
        best_cost = np.inf
        best_threshold = float(candidates[0])
        n_rows, n = oof.shape
        for theta in candidates:
            fired = confidences >= theta
            fired[-1, :] = True  # forced decision at the last prefix
            first_row = fired.argmax(axis=0)
            predicted = oof[first_row, np.arange(n)]
            acc = accuracy_score(labels, predicted)
            earliness_value = float(
                (ladder_array[first_row] / full_length).mean()
            )
            cost = self.alpha * (1.0 - acc) + (1.0 - self.alpha) * earliness_value
            if cost < best_cost:
                best_cost = cost
                best_threshold = float(theta)
        return best_threshold

    def _train(self, dataset: TimeSeriesDataset) -> None:
        validate_univariate(dataset)
        ladder = prefix_lengths(dataset.length, self.n_prefixes)
        self._ladder = ladder
        oof = self._out_of_fold_predictions(dataset, ladder)
        self._reliability = self._fit_reliability(oof, dataset.labels)
        confidences = self._training_confidences(oof)
        self.threshold_ = self._select_threshold(
            oof, confidences, dataset.labels, ladder, dataset.length
        )
        # Final classifiers are refit on the full training data per prefix.
        self._classifiers = []
        for prefix in ladder:
            classifier = self.weasel_factory()
            classifier.train(dataset.truncate(prefix))
            self._classifiers.append(classifier)

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def _predict(self, dataset: TimeSeriesDataset) -> list[EarlyPrediction]:
        assert self._ladder is not None and self._classifiers is not None
        assert self._reliability is not None and self.threshold_ is not None
        lookup = lambda row, label: self._reliability.get((row, label), 0.0)
        reachable_rows = [
            row
            for row, prefix in enumerate(self._ladder)
            if prefix <= dataset.length
        ] or [0]
        predictions: list[EarlyPrediction] = []
        for i in range(dataset.n_instances):
            instance = dataset.select([i])
            history: list[int] = []
            decided: EarlyPrediction | None = None
            for position, row in enumerate(reachable_rows):
                prefix = min(self._ladder[row], dataset.length)
                label = int(
                    self._classifiers[row].predict(instance.truncate(prefix))[0]
                )
                history.append(label)
                confidence = self._fused_confidence(
                    np.asarray(history), lookup
                )
                is_last = position == len(reachable_rows) - 1
                if confidence >= self.threshold_ or is_last:
                    decided = EarlyPrediction(
                        label=label,
                        prefix_length=prefix,
                        series_length=dataset.length,
                        confidence=min(max(confidence, 0.0), 1.0),
                    )
                    break
            assert decided is not None
            predictions.append(decided)
        return predictions
