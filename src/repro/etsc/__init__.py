"""Early time-series classification algorithms evaluated by the framework."""

from .ecec import ECEC
from .economy_k import EconomyK
from .ects import ECTS
from .edsc import EDSC, Shapelet
from .extensions import FixedPrefix, MoriSR
from .moo import ConfigurationPoint, MultiObjectiveETSC, pareto_front
from .sprt import SPRTClassifier
from .strut import STRUT, s_dtw, s_mini, s_mlstm, s_weasel
from .teaser import TEASER
from .tsmote import TSMOTEWrapper, temporal_smote

__all__ = [
    "ECEC",
    "EconomyK",
    "ECTS",
    "EDSC",
    "Shapelet",
    "FixedPrefix",
    "MoriSR",
    "ConfigurationPoint",
    "MultiObjectiveETSC",
    "pareto_front",
    "TSMOTEWrapper",
    "temporal_smote",
    "SPRTClassifier",
    "STRUT",
    "s_dtw",
    "s_mini",
    "s_mlstm",
    "s_weasel",
    "TEASER",
]
