"""Extension algorithms beyond the paper's evaluated five.

Section 7 plans to grow the framework with further ETSC methods. Two are
provided here, registered via :func:`repro.core.registry.extended_algorithms`:

* :class:`MoriSR` — the stopping-rule approach of Mori et al. (2017),
  "Reliable early classification of time series based on discriminating the
  classes over time" (the paper's reference [28]). A probabilistic
  classifier is trained per prefix checkpoint; prediction halts when the
  learned linear stopping rule

      gamma_1 * p1 + gamma_2 * (p1 - p2) + gamma_3 * (l / L)  >  0

  fires, where ``p1``/``p2`` are the two largest posteriors and ``l/L`` the
  observed fraction. The gammas are selected on a training replay by
  minimising ``alpha * (1 - accuracy) + (1 - alpha) * earliness``.

* :class:`FixedPrefix` — the trivial baseline that always commits after a
  fixed fraction of the series, classifying with a single classifier
  trained at that length. Useful as a sanity floor for earliness studies.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..core.base import EarlyClassifier
from ..core.prediction import EarlyPrediction
from ..data.dataset import TimeSeriesDataset
from ..exceptions import ConfigurationError
from ..stats.boosting import GradientBoostingClassifier
from ..stats.metrics import accuracy as accuracy_score
from ..transform.windows import prefix_lengths
from .common import validate_univariate

__all__ = ["MoriSR", "FixedPrefix"]


class MoriSR(EarlyClassifier):
    """Stopping-rule early classifier (Mori et al., 2017).

    Parameters
    ----------
    n_checkpoints:
        Number of prefix checkpoints (one probabilistic classifier each).
    alpha:
        Accuracy-vs-earliness weight of the rule-selection cost.
    gamma_grid:
        Candidate values per gamma coefficient; the rule search is the
        Cartesian cube of this grid.
    n_estimators:
        Boosting rounds of each checkpoint classifier.
    """

    supports_multivariate = False

    def __init__(
        self,
        n_checkpoints: int = 8,
        alpha: float = 0.8,
        gamma_grid: tuple[float, ...] = (-1.0, -0.5, 0.0, 0.5, 1.0),
        n_estimators: int = 15,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if n_checkpoints < 1:
            raise ConfigurationError("n_checkpoints must be >= 1")
        if not 0.0 <= alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in [0, 1], got {alpha}")
        if not gamma_grid:
            raise ConfigurationError("gamma_grid must not be empty")
        self.n_checkpoints = n_checkpoints
        self.alpha = alpha
        self.gamma_grid = tuple(gamma_grid)
        self.n_estimators = n_estimators
        self.seed = seed
        self._checkpoints: list[int] | None = None
        self._classifiers: list[GradientBoostingClassifier] | None = None
        self.gammas_: tuple[float, float, float] | None = None

    # ------------------------------------------------------------------
    @staticmethod
    def _rule_fires(
        gammas: tuple[float, float, float],
        p1: float,
        p2: float,
        fraction: float,
    ) -> bool:
        value = (
            gammas[0] * p1 + gammas[1] * (p1 - p2) + gammas[2] * fraction
        )
        return value > 0.0

    def _posterior_features(
        self, dataset: TimeSeriesDataset
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per checkpoint: predicted label, p1, p2 for every instance."""
        assert self._checkpoints is not None and self._classifiers is not None
        n = dataset.n_instances
        n_rows = len(self._checkpoints)
        labels = np.zeros((n_rows, n), dtype=int)
        p1 = np.zeros((n_rows, n))
        p2 = np.zeros((n_rows, n))
        for row, (checkpoint, classifier) in enumerate(
            zip(self._checkpoints, self._classifiers)
        ):
            if checkpoint > dataset.length:
                # Unreachable for these (shorter) series; rows stay zero and
                # are never consulted because _predict restricts itself to
                # reachable checkpoints.
                continue
            probabilities = classifier.predict_proba(
                dataset.values[:, 0, :checkpoint]
            )
            order = np.sort(probabilities, axis=1)
            best = probabilities.argmax(axis=1)
            labels[row] = classifier.classes_[best]
            p1[row] = order[:, -1]
            p2[row] = order[:, -2] if probabilities.shape[1] > 1 else 0.0
        return labels, p1, p2

    def _replay_cost(
        self,
        gammas: tuple[float, float, float],
        labels: np.ndarray,
        p1: np.ndarray,
        p2: np.ndarray,
        true_labels: np.ndarray,
        full_length: int,
    ) -> float:
        assert self._checkpoints is not None
        n_rows, n = labels.shape
        final_labels = labels[-1].copy()
        prefixes = np.full(n, float(self._checkpoints[-1]))
        for instance in range(n):
            for row in range(n_rows):
                fraction = self._checkpoints[row] / full_length
                is_last = row == n_rows - 1
                fires = self._rule_fires(
                    gammas, p1[row, instance], p2[row, instance], fraction
                )
                if fires or is_last:
                    final_labels[instance] = labels[row, instance]
                    prefixes[instance] = self._checkpoints[row]
                    break
        acc = accuracy_score(true_labels, final_labels)
        earliness_value = float((prefixes / full_length).mean())
        return self.alpha * (1 - acc) + (1 - self.alpha) * earliness_value

    def _fit_checkpoint_classifiers(self, dataset: TimeSeriesDataset) -> None:
        assert self._checkpoints is not None
        self._classifiers = []
        for checkpoint in self._checkpoints:
            classifier = GradientBoostingClassifier(
                n_estimators=self.n_estimators, seed=self.seed
            )
            classifier.fit(dataset.values[:, 0, :checkpoint], dataset.labels)
            self._classifiers.append(classifier)

    def _train(self, dataset: TimeSeriesDataset) -> None:
        validate_univariate(dataset)
        self._checkpoints = prefix_lengths(dataset.length, self.n_checkpoints)
        # Select the stopping rule on held-out posteriors: training-set
        # posteriors from boosted trees are overconfident and would favour
        # rules that fire far too early.
        from ..data.splits import train_test_split
        from ..exceptions import DataError

        try:
            fit_part, validation = train_test_split(dataset, 0.3, self.seed)
            if fit_part.n_classes < 2 or validation.n_classes < 2:
                raise DataError("split lost a class")
        except DataError:
            fit_part, validation = dataset, dataset
        self._fit_checkpoint_classifiers(fit_part)
        labels, p1, p2 = self._posterior_features(validation)
        best_cost = np.inf
        best_gammas = (1.0, 0.0, 0.0)
        for gammas in itertools.product(self.gamma_grid, repeat=3):
            cost = self._replay_cost(
                gammas, labels, p1, p2, validation.labels, validation.length
            )
            if cost < best_cost:
                best_cost = cost
                best_gammas = gammas
        self.gammas_ = best_gammas
        # Final classifiers are refit on all training data.
        self._fit_checkpoint_classifiers(dataset)

    def _predict(self, dataset: TimeSeriesDataset) -> list[EarlyPrediction]:
        assert self._checkpoints is not None and self.gammas_ is not None
        labels, p1, p2 = self._posterior_features(dataset)
        reachable = [
            row
            for row, checkpoint in enumerate(self._checkpoints)
            if checkpoint <= dataset.length
        ]
        if not reachable:
            raise ConfigurationError(
                f"test series of length {dataset.length} are shorter than "
                f"the first checkpoint ({self._checkpoints[0]})"
            )
        predictions: list[EarlyPrediction] = []
        for instance in range(dataset.n_instances):
            decided: EarlyPrediction | None = None
            for position, row in enumerate(reachable):
                prefix = self._checkpoints[row]
                fraction = prefix / dataset.length
                is_last = position == len(reachable) - 1
                fires = self._rule_fires(
                    self.gammas_,
                    p1[row, instance],
                    p2[row, instance],
                    fraction,
                )
                if fires or is_last:
                    decided = EarlyPrediction(
                        label=int(labels[row, instance]),
                        prefix_length=prefix,
                        series_length=dataset.length,
                        confidence=float(p1[row, instance]),
                    )
                    break
            assert decided is not None
            predictions.append(decided)
        return predictions


class FixedPrefix(EarlyClassifier):
    """Always classify after a fixed fraction of the series.

    The simplest possible earliness policy; pairs with STRUT to show the
    value of *searching* for the truncation point instead of fixing it.
    """

    supports_multivariate = False

    def __init__(
        self,
        fraction: float = 0.5,
        n_estimators: int = 15,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError(
                f"fraction must be in (0, 1], got {fraction}"
            )
        self.fraction = fraction
        self.n_estimators = n_estimators
        self.seed = seed
        self._prefix: int | None = None
        self._classifier: GradientBoostingClassifier | None = None

    def _train(self, dataset: TimeSeriesDataset) -> None:
        validate_univariate(dataset)
        self._prefix = max(1, int(round(self.fraction * dataset.length)))
        self._classifier = GradientBoostingClassifier(
            n_estimators=self.n_estimators, seed=self.seed
        )
        self._classifier.fit(
            dataset.values[:, 0, : self._prefix], dataset.labels
        )

    def _predict(self, dataset: TimeSeriesDataset) -> list[EarlyPrediction]:
        assert self._prefix is not None and self._classifier is not None
        if dataset.length < self._prefix:
            raise ConfigurationError(
                f"FixedPrefix committed to {self._prefix} time-points; test "
                f"series of length {dataset.length} are too short"
            )
        labels = self._classifier.predict(dataset.values[:, 0, : self._prefix])
        return [
            EarlyPrediction(
                label=int(label),
                prefix_length=self._prefix,
                series_length=dataset.length,
            )
            for label in labels
        ]
