"""ECONOMY-K — non-myopic cost-based early classification (Dachraoui et
al., 2015; Achenchabe et al., 2021).

ECONOMY-K frames earliness as explicit economics. Training:

1. cluster the full-length training series into ``k`` groups (k-means);
2. at each checkpoint prefix length ``t``, train a base classifier ``h_t``
   (gradient-boosted trees here, standing in for XGBoost) on the prefixes;
3. for every cluster and checkpoint, estimate the probability that ``h_t``
   errs on members of that cluster (out-of-sample via an internal holdout).

At test time, after observing a prefix of length ``t``, the decision
function estimates for every future checkpoint ``t + tau`` the expected
cost

    f_tau = misclassification_cost * sum_k P(k | x_{1:t}) * P(err | k, t+tau)
            + delay_cost * (t + tau)

where cluster memberships ``P(k | x)`` come from inverse distances to the
centroid prefixes. If the minimum over ``tau`` is at ``tau = 0`` the
classifier commits now; otherwise it waits for more data (forced commit at
the final checkpoint). The ``misclassification_cost``/``delay_cost`` pair
corresponds to the paper's Table 4 parameters ``lambda = 100`` and
``cost = 0.001``.
"""

from __future__ import annotations

import numpy as np

from ..core.base import EarlyClassifier
from ..core.prediction import EarlyPrediction
from ..data.dataset import TimeSeriesDataset
from ..data.splits import train_test_split
from ..exceptions import ConfigurationError, DataError
from ..stats.boosting import GradientBoostingClassifier
from ..stats.distance import PrefixDistanceCache
from ..stats.kmeans import KMeans
from ..transform.windows import prefix_lengths
from .common import validate_univariate

__all__ = ["EconomyK"]


class EconomyK(EarlyClassifier):
    """Cost-based non-myopic early classifier over k-means clusters.

    Parameters
    ----------
    n_clusters:
        Number of k-means groups ``k``; ``None`` grid-searches
        ``cluster_grid`` (the paper explores ``{1, 2, 3}``) by expected
        training cost.
    misclassification_cost:
        Cost of a wrong final label (paper's ``lambda = 100``).
    delay_cost:
        Cost per observed time-point (paper's ``cost = 0.001``).
    n_checkpoints:
        Number of decision checkpoints along the series (the original
        decides at every time-point; checkpoints bound the number of base
        classifiers trained).
    holdout_fraction:
        Internal split used to estimate per-cluster error rates
        out-of-sample.
    seed:
        Clustering / boosting / split seed.
    """

    supports_multivariate = False

    def __init__(
        self,
        n_clusters: int | None = None,
        cluster_grid: tuple[int, ...] = (1, 2, 3),
        misclassification_cost: float = 100.0,
        delay_cost: float = 0.001,
        n_checkpoints: int = 10,
        holdout_fraction: float = 0.3,
        n_estimators: int = 20,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if misclassification_cost <= 0:
            raise ConfigurationError("misclassification_cost must be positive")
        if delay_cost < 0:
            raise ConfigurationError("delay_cost must be >= 0")
        if n_checkpoints < 1:
            raise ConfigurationError("n_checkpoints must be >= 1")
        self.n_clusters = n_clusters
        self.cluster_grid = cluster_grid
        self.misclassification_cost = misclassification_cost
        self.delay_cost = delay_cost
        self.n_checkpoints = n_checkpoints
        self.holdout_fraction = holdout_fraction
        self.n_estimators = n_estimators
        self.seed = seed
        self._kmeans: KMeans | None = None
        self._checkpoints: list[int] | None = None
        self._classifiers: dict[int, GradientBoostingClassifier] | None = None
        self._error_rates: np.ndarray | None = None  # (n_checkpoints, k)

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def _fit_for_k(
        self, dataset: TimeSeriesDataset, n_clusters: int
    ) -> tuple[KMeans, dict[int, GradientBoostingClassifier], np.ndarray, float]:
        """Fit clustering, per-checkpoint classifiers, and error table.

        Returns the fitted pieces plus the mean expected training cost used
        by the ``k`` grid search.
        """
        matrix = dataset.values[:, 0, :]
        n_clusters = min(n_clusters, dataset.n_instances)
        kmeans = KMeans(n_clusters=n_clusters, seed=self.seed)
        kmeans.fit(matrix)

        try:
            fit_part, holdout = train_test_split(
                dataset, self.holdout_fraction, seed=self.seed
            )
            if holdout.n_classes < dataset.n_classes:
                raise DataError("holdout lost a class")
        except DataError:
            fit_part, holdout = dataset, dataset

        checkpoints = self._checkpoints or prefix_lengths(
            dataset.length, self.n_checkpoints
        )
        classifiers: dict[int, GradientBoostingClassifier] = {}
        error_rates = np.zeros((len(checkpoints), n_clusters))
        holdout_matrix = holdout.values[:, 0, :]
        holdout_clusters = kmeans.predict(holdout_matrix)
        for index, checkpoint in enumerate(checkpoints):
            classifier = GradientBoostingClassifier(
                n_estimators=self.n_estimators, seed=self.seed
            )
            classifier.fit(
                fit_part.values[:, 0, :checkpoint], fit_part.labels
            )
            classifiers[checkpoint] = classifier
            predictions = classifier.predict(holdout_matrix[:, :checkpoint])
            wrong = predictions != holdout.labels
            for cluster in range(n_clusters):
                members = holdout_clusters == cluster
                if members.any():
                    error_rates[index, cluster] = wrong[members].mean()
                else:
                    error_rates[index, cluster] = 0.5  # uninformed prior
        # Expected cost if the decision rule is applied to the holdout.
        memberships = kmeans.membership_probabilities(holdout_matrix)
        expected_error = memberships @ error_rates.T  # (n_holdout, n_ckpt)
        costs = (
            self.misclassification_cost * expected_error
            + self.delay_cost * np.asarray(checkpoints)[None, :]
        )
        mean_cost = float(costs.min(axis=1).mean())
        return kmeans, classifiers, error_rates, mean_cost

    def _train(self, dataset: TimeSeriesDataset) -> None:
        validate_univariate(dataset)
        self._checkpoints = prefix_lengths(dataset.length, self.n_checkpoints)
        if self.n_clusters is not None:
            candidates = [self.n_clusters]
        else:
            candidates = [
                k for k in self.cluster_grid if k <= dataset.n_instances
            ] or [1]
        best: tuple | None = None
        for k in candidates:
            fitted = self._fit_for_k(dataset, k)
            if best is None or fitted[3] < best[3]:
                best = fitted
        assert best is not None
        self._kmeans, self._classifiers, self._error_rates, _ = best

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def _expected_costs(
        self,
        prefix: np.ndarray,
        checkpoint_index: int,
        squared_distances: np.ndarray | None = None,
    ) -> np.ndarray:
        """Expected cost of committing at each future checkpoint.

        Memberships are computed against the centroid prefixes of the same
        observed length; error estimates are looked up per future
        checkpoint. Index 0 of the result is "commit now".
        ``squared_distances`` short-circuits the centroid-prefix distance
        computation with values maintained incrementally by a
        :class:`PrefixDistanceCache` (the streaming walk in ``_predict``),
        avoiding the from-scratch ``O(k * t)`` recomputation per
        checkpoint.
        """
        assert self._kmeans is not None and self._kmeans.centroids_ is not None
        assert self._error_rates is not None and self._checkpoints is not None
        if squared_distances is None:
            t = len(prefix)
            centroid_prefixes = self._kmeans.centroids_[:, :t]
            squared_distances = (
                (centroid_prefixes - prefix[None, :]) ** 2
            ).sum(axis=1)
        distances = np.sqrt(squared_distances)
        weights = 1.0 / (distances + 1e-9)
        memberships = weights / weights.sum()
        future = np.arange(checkpoint_index, len(self._checkpoints))
        expected_error = self._error_rates[future] @ memberships
        future_lengths = np.asarray(self._checkpoints)[future]
        return (
            self.misclassification_cost * expected_error
            + self.delay_cost * future_lengths
        )

    def _predict(self, dataset: TimeSeriesDataset) -> list[EarlyPrediction]:
        assert self._classifiers is not None and self._checkpoints is not None
        test_matrix = dataset.values[:, 0, :]
        predictions: list[EarlyPrediction] = []
        reachable = [c for c in self._checkpoints if c <= dataset.length]
        if not reachable:
            reachable = [dataset.length]
        assert self._kmeans is not None and self._kmeans.centroids_ is not None
        centroids = self._kmeans.centroids_
        for row in test_matrix:
            decided: EarlyPrediction | None = None
            # One prefix-distance cache per row, advanced chunk-wise from
            # checkpoint to checkpoint instead of recomputing each
            # centroid-prefix distance from scratch.
            cache = PrefixDistanceCache(centroids)
            for index, checkpoint in enumerate(reachable):
                is_last = index == len(reachable) - 1
                squared = cache.advance_chunk(row[cache.length : checkpoint])
                costs = self._expected_costs(
                    row[:checkpoint], index, squared_distances=squared
                )
                if is_last or costs.argmin() == 0:
                    classifier = self._classifiers.get(checkpoint)
                    if classifier is None:
                        # Prefix ladder trimmed by shorter test series: use
                        # the longest trained checkpoint that fits.
                        usable = [
                            c for c in self._classifiers if c <= checkpoint
                        ]
                        classifier = self._classifiers[max(usable)]
                        checkpoint_used = max(usable)
                    else:
                        checkpoint_used = checkpoint
                    label = int(
                        classifier.predict(row[None, :checkpoint_used])[0]
                    )
                    decided = EarlyPrediction(
                        label=label,
                        prefix_length=checkpoint,
                        series_length=len(row),
                    )
                    break
            assert decided is not None
            predictions.append(decided)
        return predictions
