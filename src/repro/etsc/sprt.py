"""SPRT-style sequential early classification (density-ratio stopping).

SDRE (Ebihara et al., 2023 — the paper's reference [9], listed among the
planned framework additions) grounds early classification in sequential
hypothesis testing: accumulate the log-likelihood ratio of the observed
prefix under the two class hypotheses and stop when it crosses a Wald
boundary. :class:`SPRTClassifier` implements the classical version of that
idea:

* training fits per-time-point class-conditional Gaussians (diagonal, one
  per variable) — the density model;
* prediction accumulates the pointwise log-likelihood ratio
  ``log p(x_t | class 1) - log p(x_t | class 0)`` plus the log-prior odds,
  and commits when the sum crosses ``+threshold`` (class 1) or
  ``-threshold`` (class 0), with a forced maximum-a-posteriori decision at
  the final time-point;
* ``threshold`` defaults to the Wald boundary ``log((1 - error) / error)``
  for a target error rate.

Binary-class only (the likelihood *ratio* is inherently pairwise); the
framework's registry treats it as an extension, and multiclass datasets
should use the other algorithms.
"""

from __future__ import annotations

import numpy as np

from ..core.base import EarlyClassifier
from ..core.prediction import EarlyPrediction
from ..data.dataset import TimeSeriesDataset
from ..exceptions import ConfigurationError, DataError
from .common import validate_univariate

__all__ = ["SPRTClassifier"]


class SPRTClassifier(EarlyClassifier):
    """Sequential probability-ratio early classifier (binary classes).

    Parameters
    ----------
    error_rate:
        Target error probability; the stopping threshold is the symmetric
        Wald boundary ``log((1 - error_rate) / error_rate)``.
    min_std:
        Variance floor for the per-time-point Gaussians (regularisation
        against degenerate training columns).
    max_llr_per_step:
        Clip on each step's log-likelihood-ratio contribution; guards the
        accumulation against single-point outliers under the (deliberately
        simple) Gaussian model.
    """

    supports_multivariate = True

    def __init__(
        self,
        error_rate: float = 0.05,
        min_std: float = 1e-3,
        max_llr_per_step: float = 10.0,
    ) -> None:
        super().__init__()
        if not 0.0 < error_rate < 0.5:
            raise ConfigurationError(
                f"error_rate must be in (0, 0.5), got {error_rate}"
            )
        if min_std <= 0:
            raise ConfigurationError(f"min_std must be positive, got {min_std}")
        if max_llr_per_step <= 0:
            raise ConfigurationError("max_llr_per_step must be positive")
        self.error_rate = error_rate
        self.min_std = min_std
        self.max_llr_per_step = max_llr_per_step
        self._classes: np.ndarray | None = None
        self._means: np.ndarray | None = None  # (2, V, L)
        self._stds: np.ndarray | None = None  # (2, V, L)
        self._log_prior_odds: float = 0.0

    @property
    def threshold(self) -> float:
        """The symmetric Wald stopping boundary."""
        return float(np.log((1.0 - self.error_rate) / self.error_rate))

    # ------------------------------------------------------------------
    def _train(self, dataset: TimeSeriesDataset) -> None:
        if dataset.n_classes != 2:
            raise DataError(
                "SPRTClassifier is binary-class (the likelihood ratio is "
                f"pairwise); got {dataset.n_classes} classes"
            )
        self._classes = dataset.classes
        means = np.empty((2, dataset.n_variables, dataset.length))
        stds = np.empty_like(means)
        for index, label in enumerate(self._classes):
            members = dataset.values[dataset.labels == label]
            means[index] = members.mean(axis=0)
            stds[index] = np.maximum(members.std(axis=0), self.min_std)
        self._means = means
        self._stds = stds
        counts = dataset.class_counts()
        self._log_prior_odds = float(
            np.log(counts[int(self._classes[1])])
            - np.log(counts[int(self._classes[0])])
        )

    def _step_llr(self, point: np.ndarray, t: int) -> float:
        """Log-likelihood ratio of one time-point (class 1 over class 0)."""
        assert self._means is not None and self._stds is not None
        log_likelihoods = []
        for index in range(2):
            mean = self._means[index, :, t]
            std = self._stds[index, :, t]
            log_likelihoods.append(
                float(
                    np.sum(
                        -0.5 * ((point - mean) / std) ** 2 - np.log(std)
                    )
                )
            )
        llr = log_likelihoods[1] - log_likelihoods[0]
        return float(
            np.clip(llr, -self.max_llr_per_step, self.max_llr_per_step)
        )

    def _predict(self, dataset: TimeSeriesDataset) -> list[EarlyPrediction]:
        assert self._classes is not None
        boundary = self.threshold
        predictions: list[EarlyPrediction] = []
        for i in range(dataset.n_instances):
            series = dataset.values[i]
            log_odds = self._log_prior_odds
            decided: EarlyPrediction | None = None
            for t in range(dataset.length):
                log_odds += self._step_llr(series[:, t], t)
                if log_odds >= boundary or log_odds <= -boundary:
                    label = self._classes[1 if log_odds > 0 else 0]
                    confidence = float(1.0 / (1.0 + np.exp(-abs(log_odds))))
                    decided = EarlyPrediction(
                        label=int(label),
                        prefix_length=t + 1,
                        series_length=dataset.length,
                        confidence=confidence,
                    )
                    break
            if decided is None:
                # Forced MAP decision at the final time-point.
                label = self._classes[1 if log_odds > 0 else 0]
                decided = EarlyPrediction(
                    label=int(label),
                    prefix_length=dataset.length,
                    series_length=dataset.length,
                    confidence=float(1.0 / (1.0 + np.exp(-abs(log_odds)))),
                )
            predictions.append(decided)
        return predictions
