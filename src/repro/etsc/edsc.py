"""EDSC — Early Distinctive Shapelet Classification (Xing et al., 2011).

EDSC mines *local shapelets*: triplets ``(subseries, threshold, class)``
such that a series whose best-matching distance to the subseries falls
below the threshold very likely belongs to the class. Thresholds come from
Chebyshev's inequality (the "CHE" variant evaluated in the paper): given
the distances from the candidate to all series of *other* classes, the
threshold is ``max(mean - k * spread, 0)``, placing it ``k`` deviations
below the typical non-target distance.

Candidates are ranked by a utility blending precision and a
weighted recall that rewards matching early within the series, and
selected greedily until the training set is covered.

At prediction time prefixes stream in; whenever any selected shapelet
matches within its threshold (using only windows that fit in the observed
prefix), its class fires. If nothing matches by the full length, the class
of the proportionally closest shapelet is returned.

Exhaustive EDSC enumerates every subsequence of every training series for
every length in ``[min_length, max_length]`` — the ``O(N^2 L^3)`` cost of
Table 5, which the paper found intractable for 'Wide' datasets (48-hour
timeouts). The ``stride`` and ``n_lengths`` knobs below subsample the
candidate grid to keep the same structure tractable; defaults of 1 / full
grid reproduce the exhaustive behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.base import EarlyClassifier
from ..core.prediction import EarlyPrediction
from ..data.dataset import TimeSeriesDataset
from ..exceptions import ConfigurationError
from ..stats.distance import best_match_distances, sliding_window_distances
from .common import validate_univariate

__all__ = ["EDSC", "Shapelet"]


@dataclass(frozen=True)
class Shapelet:
    """A learned shapelet: pattern, matching threshold, class, and utility."""

    pattern: np.ndarray
    threshold: float
    label: int
    utility: float

    @property
    def length(self) -> int:
        """Number of time-points in the pattern."""
        return len(self.pattern)


def _best_match_distances(pattern: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """Best-matching (minimum alignment) distance of a pattern to each row.

    Delegates to the kernel-backend-dispatched
    :func:`~repro.stats.distance.best_match_distances` (the
    ``shapelet_match`` op); ``sqrt`` and ``min`` commute on non-negative
    values, so the result is identical to the historical per-row
    ``sqrt(min(...))`` form.
    """
    return best_match_distances(pattern, matrix)


def _earliest_positions_from(
    window_distances: np.ndarray, width: int, threshold: float
) -> np.ndarray:
    """Earliest match positions given a precomputed window-distance table."""
    hits = window_distances <= threshold
    matched = hits.any(axis=1)
    # argmax finds the first True per row; unmatched rows stay at 0.
    first = hits.argmax(axis=1)
    return np.where(matched, first + width, 0)


def _earliest_match_positions(
    pattern: np.ndarray, matrix: np.ndarray, threshold: float
) -> np.ndarray:
    """Earliest prefix length at which each row matches within threshold.

    Rows that never match get 0 (no match).
    """
    return _earliest_positions_from(
        sliding_window_distances(pattern, matrix), len(pattern), threshold
    )


class EDSC(EarlyClassifier):
    """Early Distinctive Shapelet Classification (CHE thresholds).

    Parameters
    ----------
    k:
        Chebyshev multiplier; larger values give tighter (safer)
        thresholds. Table 4 uses 3.
    min_length, max_length:
        Candidate shapelet lengths; ``max_length=None`` means ``L / 2``
        (the paper's ``maxLen = L/2``).
    n_lengths:
        Number of lengths sampled from ``[min_length, max_length]``
        (``None`` = every length, the exhaustive original).
    stride:
        Step between candidate start positions (1 = exhaustive).
    max_shapelets:
        Cap on the greedy selection.
    """

    supports_multivariate = False

    def __init__(
        self,
        k: float = 3.0,
        min_length: int = 5,
        max_length: int | None = None,
        n_lengths: int | None = 3,
        stride: int = 1,
        max_shapelets: int = 50,
    ) -> None:
        super().__init__()
        if k <= 0:
            raise ConfigurationError(f"k must be positive, got {k}")
        if min_length < 1:
            raise ConfigurationError(
                f"min_length must be >= 1, got {min_length}"
            )
        if stride < 1:
            raise ConfigurationError(f"stride must be >= 1, got {stride}")
        self.k = k
        self.min_length = min_length
        self.max_length = max_length
        self.n_lengths = n_lengths
        self.stride = stride
        self.max_shapelets = max_shapelets
        self.shapelets_: list[Shapelet] | None = None
        self._fallback_label: int | None = None

    # ------------------------------------------------------------------
    def _candidate_lengths(self, length: int) -> list[int]:
        maximum = self.max_length if self.max_length is not None else length // 2
        maximum = max(min(maximum, length), 1)
        minimum = min(self.min_length, maximum)
        lengths = list(range(minimum, maximum + 1))
        if self.n_lengths is not None and len(lengths) > self.n_lengths:
            picks = np.linspace(0, len(lengths) - 1, self.n_lengths)
            lengths = [lengths[int(round(p))] for p in picks]
        return sorted(set(lengths))

    def _score_candidate(
        self,
        pattern: np.ndarray,
        label: int,
        matrix: np.ndarray,
        labels: np.ndarray,
    ) -> Shapelet | None:
        """Chebyshev threshold + utility for one candidate subsequence."""
        window_distances = sliding_window_distances(pattern, matrix)
        distances = window_distances.min(axis=1)
        other = distances[labels != label]
        if other.size == 0:
            return None
        spread = other.std()
        threshold = max(float(other.mean() - self.k * spread), 0.0)
        if threshold <= 0.0:
            return None
        matches = _earliest_positions_from(
            window_distances, len(pattern), threshold
        )
        covered = matches > 0
        if not covered.any():
            return None
        covered_same = covered & (labels == label)
        precision = covered_same.sum() / covered.sum()
        n_same = (labels == label).sum()
        lengths = matrix.shape[1]
        # Weighted recall: earlier matches on same-class series score more.
        weighted = np.where(
            covered_same, 1.0 - (matches - 1) / lengths, 0.0
        ).sum() / max(n_same, 1)
        if precision + weighted == 0:
            return None
        utility = 2.0 * precision * weighted / (precision + weighted)
        return Shapelet(
            pattern=pattern.copy(),
            threshold=threshold,
            label=int(label),
            utility=float(utility),
        )

    def _train(self, dataset: TimeSeriesDataset) -> None:
        matrix = validate_univariate(dataset)
        labels = dataset.labels
        candidates: list[Shapelet] = []
        for width in self._candidate_lengths(dataset.length):
            for i in range(dataset.n_instances):
                row = matrix[i]
                for start in range(0, dataset.length - width + 1, self.stride):
                    shapelet = self._score_candidate(
                        row[start : start + width],
                        int(labels[i]),
                        matrix,
                        labels,
                    )
                    if shapelet is not None:
                        candidates.append(shapelet)
        candidates.sort(key=lambda s: s.utility, reverse=True)

        # Greedy selection: keep adding the best shapelet until the whole
        # training set is covered (or candidates/cap run out).
        selected: list[Shapelet] = []
        covered = np.zeros(dataset.n_instances, dtype=bool)
        for shapelet in candidates:
            if covered.all() or len(selected) >= self.max_shapelets:
                break
            matches = _earliest_match_positions(
                shapelet.pattern, matrix, shapelet.threshold
            )
            newly = (matches > 0) & ~covered
            if newly.any():
                selected.append(shapelet)
                covered |= matches > 0
        self.shapelets_ = selected
        values, counts = np.unique(labels, return_counts=True)
        self._fallback_label = int(values[counts.argmax()])

    # ------------------------------------------------------------------
    def _predict(self, dataset: TimeSeriesDataset) -> list[EarlyPrediction]:
        assert self.shapelets_ is not None and self._fallback_label is not None
        test_matrix = dataset.values[:, 0, :]
        n_series, length = test_matrix.shape
        # For every (shapelet, row) pair, the earliest prefix length at
        # which the shapelet matches — the streamed per-prefix scan is
        # equivalent to "first matching window", so the whole test matrix
        # is handled by the batched matching kernel per shapelet.
        usable = [s for s in self.shapelets_ if s.length <= length]
        if usable:
            earliest = np.stack(
                [
                    _earliest_match_positions(
                        s.pattern, test_matrix, s.threshold
                    )
                    for s in usable
                ]
            )  # (n_shapelets, n_series); 0 = never matches
        else:
            earliest = np.zeros((0, n_series), dtype=int)
        predictions: list[EarlyPrediction] = []
        for i in range(n_series):
            fire_at = earliest[:, i]
            matching = np.flatnonzero(fire_at > 0)
            if matching.size:
                best_t = int(fire_at[matching].min())
                # Ties resolve to the first shapelet in selection order —
                # the order the per-prefix loop consulted them in.
                winner = usable[
                    int(matching[np.argmax(fire_at[matching] == best_t)])
                ]
                decided = EarlyPrediction(
                    label=winner.label,
                    prefix_length=best_t,
                    series_length=length,
                )
            else:
                decided = EarlyPrediction(
                    label=self._nearest_shapelet_label(test_matrix[i]),
                    prefix_length=length,
                    series_length=length,
                )
            predictions.append(decided)
        return predictions

    def _nearest_shapelet_label(self, row: np.ndarray) -> int:
        """Fallback: class of the proportionally closest shapelet."""
        assert self._fallback_label is not None
        best_ratio = np.inf
        best_label = self._fallback_label
        for shapelet in self.shapelets_ or []:
            if shapelet.length > len(row):
                continue
            distance = _best_match_distances(
                shapelet.pattern, row[None, :]
            )[0]
            ratio = distance / max(shapelet.threshold, 1e-12)
            if ratio < best_ratio:
                best_ratio = ratio
                best_label = shapelet.label
        return best_label
