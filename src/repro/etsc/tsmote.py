"""T-SMOTE-style temporal oversampling for imbalanced early classification.

The paper plans to add T-SMOTE (Zhao et al., IJCAI 2022) to the framework:
class imbalance hurts every evaluated algorithm's F1 (Section 6.2.1), and
T-SMOTE counters it by synthesising minority-class series before training.

:func:`temporal_smote` implements the core oversampling: each synthetic
minority instance is a convex combination of a real minority series and one
of its k nearest minority neighbours (computed on the full series,
variable-wise), which preserves temporal structure far better than
value-wise noise. :class:`TSMOTEWrapper` applies the oversampling to the
training data of any wrapped early classifier, leaving prediction untouched
— so any of the framework's algorithms can be made imbalance-aware.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core.base import EarlyClassifier
from ..core.prediction import EarlyPrediction
from ..data.dataset import TimeSeriesDataset
from ..exceptions import ConfigurationError, DataError

__all__ = ["temporal_smote", "TSMOTEWrapper"]


def temporal_smote(
    dataset: TimeSeriesDataset,
    target_ratio: float = 1.0,
    n_neighbors: int = 3,
    seed: int = 0,
) -> TimeSeriesDataset:
    """Oversample minority classes towards ``target_ratio``.

    ``target_ratio`` is the desired (minority size / majority size) after
    oversampling, in ``(0, 1]``; 1.0 fully balances the dataset. Synthetic
    instances interpolate a minority series with one of its ``n_neighbors``
    nearest same-class series at a uniform random mixing weight. Classes
    with a single instance are replicated with small jitter instead (no
    neighbour exists to interpolate with).
    """
    if not 0.0 < target_ratio <= 1.0:
        raise ConfigurationError(
            f"target_ratio must be in (0, 1], got {target_ratio}"
        )
    if n_neighbors < 1:
        raise ConfigurationError(
            f"n_neighbors must be >= 1, got {n_neighbors}"
        )
    rng = np.random.default_rng(seed)
    counts = dataset.class_counts()
    majority_size = max(counts.values())
    target_size = max(1, int(round(target_ratio * majority_size)))

    new_values: list[np.ndarray] = []
    new_labels: list[int] = []
    for label, count in counts.items():
        deficit = target_size - count
        if deficit <= 0:
            continue
        members = np.flatnonzero(dataset.labels == label)
        member_values = dataset.values[members]  # (m, V, L)
        flattened = member_values.reshape(len(members), -1)
        if len(members) == 1:
            scale = float(np.std(flattened)) or 1.0
            for _ in range(deficit):
                jitter = rng.normal(0.0, 0.01 * scale, member_values[0].shape)
                new_values.append(member_values[0] + jitter)
                new_labels.append(int(label))
            continue
        # k nearest same-class neighbours on the flattened series.
        differences = (
            flattened[:, None, :] - flattened[None, :, :]
        )
        distances = np.einsum("ijk,ijk->ij", differences, differences)
        np.fill_diagonal(distances, np.inf)
        k = min(n_neighbors, len(members) - 1)
        neighbor_indices = np.argsort(distances, axis=1)[:, :k]
        for _ in range(deficit):
            anchor = int(rng.integers(len(members)))
            neighbor = int(rng.choice(neighbor_indices[anchor]))
            weight = float(rng.uniform(0.0, 1.0))
            synthetic = (
                (1.0 - weight) * member_values[anchor]
                + weight * member_values[neighbor]
            )
            new_values.append(synthetic)
            new_labels.append(int(label))
    if not new_values:
        return dataset
    values = np.concatenate(
        [dataset.values, np.stack(new_values)], axis=0
    )
    labels = np.concatenate([dataset.labels, np.asarray(new_labels)])
    return TimeSeriesDataset(
        values,
        labels,
        name=dataset.name,
        frequency_seconds=dataset.frequency_seconds,
    )


class TSMOTEWrapper(EarlyClassifier):
    """Train any early classifier on a T-SMOTE-balanced dataset.

    Parameters
    ----------
    base_factory:
        Zero-argument callable producing the wrapped unfitted classifier.
    target_ratio, n_neighbors, seed:
        Forwarded to :func:`temporal_smote`.
    """

    def __init__(
        self,
        base_factory: Callable[[], EarlyClassifier],
        target_ratio: float = 1.0,
        n_neighbors: int = 3,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.base_factory = base_factory
        self.target_ratio = target_ratio
        self.n_neighbors = n_neighbors
        self.seed = seed
        self.base_: EarlyClassifier | None = None

    @property
    def supports_multivariate(self) -> bool:  # type: ignore[override]
        """Mirrors the wrapped classifier's variable support."""
        probe = self.base_ if self.base_ is not None else self.base_factory()
        return probe.supports_multivariate

    def _train(self, dataset: TimeSeriesDataset) -> None:
        balanced = temporal_smote(
            dataset,
            target_ratio=self.target_ratio,
            n_neighbors=self.n_neighbors,
            seed=self.seed,
        )
        self.base_ = self.base_factory()
        self.base_.train(balanced)

    def _predict(self, dataset: TimeSeriesDataset) -> list[EarlyPrediction]:
        if self.base_ is None:
            raise DataError("TSMOTEWrapper used before train")
        return self.base_.predict(dataset)
