"""Helpers shared by the ETSC algorithm implementations."""

from __future__ import annotations

import numpy as np

from ..data.dataset import TimeSeriesDataset
from ..exceptions import DataError

__all__ = ["validate_univariate"]


def validate_univariate(dataset: TimeSeriesDataset) -> np.ndarray:
    """Return the ``(n_instances, length)`` matrix of a univariate dataset.

    The univariate-only algorithms (ECEC, ECONOMY-K, ECTS, EDSC, TEASER)
    call this at the top of training; multivariate input should instead be
    routed through :class:`repro.core.voting.VotingEnsemble`.
    """
    if dataset.n_variables != 1:
        raise DataError(
            "this algorithm is univariate; wrap it in "
            "repro.core.voting.VotingEnsemble for multivariate data"
        )
    return dataset.values[:, 0, :]
