"""Multi-objective configuration search over accuracy and earliness.

MOO-ETSC (Mori et al., 2019 — the paper's reference [29], listed among the
planned framework additions) treats early classification as bi-objective:
maximise accuracy, minimise earliness, and present the user the *Pareto
front* of configurations rather than a single scalarised winner.

This module provides that machinery over any configurable early classifier:

* :func:`pareto_front` — the non-dominated subset of
  ``(accuracy, earliness)`` points;
* :class:`MultiObjectiveETSC` — evaluates a configuration grid by
  cross-validation, keeps the Pareto-optimal configurations, and refits the
  *knee* configuration (the front point closest to the ideal
  ``(accuracy=1, earliness=0)``) for prediction. The full front stays
  available for users with different trade-off preferences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..core.base import EarlyClassifier
from ..core.evaluation import evaluate
from ..core.prediction import EarlyPrediction
from ..core.tuning import parameter_grid
from ..core.voting import wrap_for_dataset
from ..data.dataset import TimeSeriesDataset
from ..exceptions import NotFittedError, ReproError

__all__ = ["pareto_front", "MultiObjectiveETSC", "ConfigurationPoint"]


@dataclass(frozen=True)
class ConfigurationPoint:
    """One evaluated configuration with its bi-objective scores."""

    params: dict[str, Any]
    accuracy: float
    earliness: float

    def dominates(self, other: "ConfigurationPoint") -> bool:
        """Pareto dominance: at least as good on both, better on one."""
        at_least = (
            self.accuracy >= other.accuracy
            and self.earliness <= other.earliness
        )
        strictly = (
            self.accuracy > other.accuracy
            or self.earliness < other.earliness
        )
        return at_least and strictly

    def distance_to_ideal(self) -> float:
        """Euclidean distance to the ideal point (accuracy 1, earliness 0)."""
        return float(
            np.hypot(1.0 - self.accuracy, self.earliness)
        )


def pareto_front(points: Sequence[ConfigurationPoint]) -> list[ConfigurationPoint]:
    """Non-dominated subset, sorted by earliness (earliest first)."""
    front = [
        point
        for point in points
        if not any(other.dominates(point) for other in points)
    ]
    return sorted(front, key=lambda p: (p.earliness, -p.accuracy))


class MultiObjectiveETSC(EarlyClassifier):
    """Pareto search over a configuration grid, predicting from the knee.

    Parameters
    ----------
    factory:
        Callable accepting the grid's keyword arguments and returning an
        unfitted early classifier.
    grid:
        Mapping of parameter name to candidate values.
    n_folds:
        Cross-validation folds per configuration.
    seed:
        Fold seed.
    """

    supports_multivariate = True

    def __init__(
        self,
        factory: Callable[..., EarlyClassifier],
        grid: Mapping[str, Sequence[Any]],
        n_folds: int = 3,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.factory = factory
        self.candidates = parameter_grid(grid)
        self.n_folds = n_folds
        self.seed = seed
        self.points_: list[ConfigurationPoint] = []
        self.front_: list[ConfigurationPoint] = []
        self.knee_: ConfigurationPoint | None = None
        self._model: EarlyClassifier | None = None

    def _train(self, dataset: TimeSeriesDataset) -> None:
        self.points_ = []
        for params in self.candidates:
            try:
                result = evaluate(
                    lambda params=params: self.factory(**params),
                    dataset,
                    algorithm_name=str(params),
                    n_folds=self.n_folds,
                    seed=self.seed,
                )
            except ReproError:
                continue  # untrainable configurations simply drop out
            self.points_.append(
                ConfigurationPoint(
                    params=params,
                    accuracy=result.accuracy,
                    earliness=result.earliness,
                )
            )
        if not self.points_:
            raise ReproError("no configuration could be trained")
        self.front_ = pareto_front(self.points_)
        self.knee_ = min(self.front_, key=lambda p: p.distance_to_ideal())
        self._model = wrap_for_dataset(
            lambda: self.factory(**self.knee_.params), dataset
        )
        self._model.train(dataset)

    def _predict(self, dataset: TimeSeriesDataset) -> list[EarlyPrediction]:
        if self._model is None:
            raise NotFittedError("MultiObjectiveETSC used before train")
        return self._model.predict(dataset)
