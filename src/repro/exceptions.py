"""Exception hierarchy for the :mod:`repro` ETSC evaluation framework.

All errors raised intentionally by this library derive from
:class:`ReproError`, so callers can guard any framework interaction with a
single ``except ReproError`` clause while still letting programming errors
(``TypeError`` and friends) surface normally.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the framework."""


class DataError(ReproError):
    """Raised when an input dataset is malformed or inconsistent.

    Examples include: mismatched number of labels and instances, non-finite
    values where the consumer requires finite input, or an empty dataset
    handed to an estimator.
    """


class DataFormatError(DataError):
    """Raised when a dataset file cannot be parsed (CSV/ARFF loaders)."""


class NotFittedError(ReproError):
    """Raised when ``predict`` is called on an estimator before ``fit``."""


class ConvergenceError(ReproError):
    """Raised when an iterative solver fails to make progress.

    Solvers in :mod:`repro.stats` generally prefer returning their best
    iterate over raising, so this error is reserved for cases where no valid
    iterate exists at all (e.g. k-means asked for more clusters than points).
    """


class ConfigurationError(ReproError):
    """Raised when an algorithm is constructed with invalid hyperparameters."""


class RegistryError(ReproError):
    """Raised on unknown names or duplicate registrations in a registry."""


class TransientError(ReproError):
    """Marks a failure expected to clear on retry (resource pressure,
    flaky I/O). The runner's retry policy re-attempts cells whose failure
    classifies as transient; see :mod:`repro.core.resilience`."""


class CheckpointError(ReproError):
    """Raised when a grid checkpoint file is missing, corrupt, or
    unreadable (see :mod:`repro.core.checkpoint`)."""


class CheckpointMismatchError(CheckpointError):
    """Raised when resuming against a checkpoint whose grid fingerprint
    (seed, folds, budget, algorithm/dataset lists) differs from the
    requested run — resuming would silently mix incompatible results."""
