"""Cheap fallback predictors for degraded serving.

When the primary early classifier cannot answer inside its deadline — or
the circuit breaker has taken it out of rotation — the stream must not
stall: something still has to answer. The predictors here are orders of
magnitude cheaper than any ETSC algorithm and are fitted once from the
same training data, so a degraded answer is cheap, immediate, and at
least as good as guessing:

* :class:`MajorityClassFallback` — the training majority class, with its
  empirical frequency as confidence. O(1) per consultation.
* :class:`PrefixNearestNeighborFallback` — 1-NN under Euclidean distance
  between the observed prefix and the same-length prefixes of (a
  subsample of) the training series. O(reference x t) per consultation.

Fallback answers always carry ``source="fallback"``/``degraded=True``
and a ``prefix_length`` equal to the observed length — they have no
earliness trigger of their own, so a streaming session only ever commits
them as the forced final decision.

The prefix-1-NN consult path runs on
:class:`~repro.stats.distance.PrefixDistanceCache`, which dispatches its
accumulation step to the active kernel backend — backend selection
(``REPRO_KERNEL_BACKEND`` / ``--kernel-backend``) therefore reaches
degraded serving without any code here changing, and the conformance
policy guarantees the ``naive``/``numpy`` backends produce bit-identical
fallback decisions.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..core.prediction import SOURCE_FALLBACK, EarlyPrediction
from ..data.dataset import TimeSeriesDataset
from ..exceptions import ConfigurationError, DataError, NotFittedError
from ..stats.distance import PrefixDistanceCache

__all__ = [
    "FallbackPredictor",
    "MajorityClassFallback",
    "PrefixNearestNeighborFallback",
    "make_fallback",
    "FALLBACK_NAMES",
]


class FallbackPredictor(ABC):
    """A cheap stand-in answering when the primary model cannot."""

    def __init__(self) -> None:
        self._fitted = False

    @abstractmethod
    def _fit(self, dataset: TimeSeriesDataset) -> None:
        """Predictor-specific fitting logic."""

    @abstractmethod
    def _predict_label(self, prefix: np.ndarray) -> tuple[int, float | None]:
        """``(label, confidence)`` for one observed ``(V, t)`` prefix."""

    def fit(self, dataset: TimeSeriesDataset) -> "FallbackPredictor":
        """Fit the fallback on the primary model's training dataset."""
        self._fit(dataset)
        self._fitted = True
        return self

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def predict_prefix(
        self, prefix: np.ndarray, series_length: int
    ) -> EarlyPrediction:
        """A degraded prediction for the ``(V, t)`` observed prefix."""
        if not self._fitted:
            raise NotFittedError(
                f"{type(self).__name__} used before fit"
            )
        prefix = np.atleast_2d(np.asarray(prefix, dtype=float))
        if prefix.ndim != 2 or prefix.shape[1] < 1:
            raise DataError(
                f"fallback prefix must be (n_variables, t>=1), "
                f"got shape {prefix.shape}"
            )
        label, confidence = self._predict_label(prefix)
        return EarlyPrediction(
            label=int(label),
            prefix_length=min(prefix.shape[1], series_length),
            series_length=series_length,
            confidence=confidence,
            degraded=True,
            source=SOURCE_FALLBACK,
        )

    def predict_prefix_batch(
        self, prefixes: "np.ndarray | list[np.ndarray]", series_length: int
    ) -> list[EarlyPrediction]:
        """Degraded predictions for several same-length prefixes at once.

        The serving fleet calls this when load shedding or shard failover
        degrades a whole group of streams in one go: answering them as a
        batch lets distance-based fallbacks go through the all-pairs
        kernels instead of one consultation per stream. ``prefixes`` is
        ``(k, V, t)`` (or a list of ``(V, t)`` arrays of equal shape).
        Results are bit-identical to ``k`` separate
        :meth:`predict_prefix` calls on a fresh predictor — batching is
        a throughput optimisation, never a semantic change.
        """
        stacked = np.asarray(
            [np.atleast_2d(np.asarray(p, dtype=float)) for p in prefixes],
            dtype=float,
        )
        if stacked.ndim != 3 or stacked.shape[0] < 1 or stacked.shape[2] < 1:
            raise DataError(
                f"batched prefixes must be (k>=1, n_variables, t>=1), "
                f"got shape {stacked.shape}"
            )
        return [
            self.predict_prefix(stacked[i], series_length)
            for i in range(stacked.shape[0])
        ]


class MajorityClassFallback(FallbackPredictor):
    """Answer with the training majority class (ties to the first label).

    The cheapest possible degradation: no per-consultation work at all,
    confidence is the class's empirical training frequency.
    """

    def __init__(self) -> None:
        super().__init__()
        self._label: int | None = None
        self._confidence: float | None = None

    def _fit(self, dataset: TimeSeriesDataset) -> None:
        labels, counts = np.unique(dataset.labels, return_counts=True)
        best = int(np.argmax(counts))
        self._label = int(labels[best])
        self._confidence = float(counts[best] / counts.sum())

    def _predict_label(self, prefix: np.ndarray) -> tuple[int, float | None]:
        return self._label, self._confidence


class PrefixNearestNeighborFallback(FallbackPredictor):
    """1-NN on same-length training prefixes under Euclidean distance.

    Keeps (a deterministic stratified-ish subsample of) the training
    series and, per consultation, returns the label of the instance whose
    first ``t`` points are closest to the observed prefix. Confidence is
    the fraction of the ``n_votes`` nearest references agreeing with the
    winner.

    Parameters
    ----------
    max_reference:
        Cap on retained training instances (evenly strided subsample, so
        repeated fits are deterministic). ``None`` keeps everything.
    n_votes:
        Neighbourhood size used only for the confidence estimate; the
        label itself is always the single nearest neighbour's.
    """

    def __init__(
        self, max_reference: int | None = 200, n_votes: int = 5
    ) -> None:
        super().__init__()
        if max_reference is not None and max_reference < 1:
            raise ConfigurationError(
                f"max_reference must be >= 1 or None, got {max_reference}"
            )
        if n_votes < 1:
            raise ConfigurationError(f"n_votes must be >= 1, got {n_votes}")
        self.max_reference = max_reference
        self.n_votes = n_votes
        self._values: np.ndarray | None = None
        self._labels: np.ndarray | None = None
        # Streaming-consult state: squared prefix distances to the
        # references are advanced incrementally while consecutive consults
        # extend the same stream, O(reference) per new point instead of
        # O(reference x t) per consultation.
        self._cache: PrefixDistanceCache | None = None
        self._seen: np.ndarray | None = None

    def _fit(self, dataset: TimeSeriesDataset) -> None:
        values, labels = dataset.values, dataset.labels
        if (
            self.max_reference is not None
            and dataset.n_instances > self.max_reference
        ):
            # Even stride keeps the class mixture roughly intact and is
            # reproducible without an RNG.
            indices = np.linspace(
                0, dataset.n_instances - 1, self.max_reference
            ).astype(int)
            values, labels = values[indices], labels[indices]
        self._values = np.ascontiguousarray(values, dtype=float)
        self._labels = np.asarray(labels)
        self._cache = None
        self._seen = None

    def _predict_label(self, prefix: np.ndarray) -> tuple[int, float | None]:
        t = min(prefix.shape[1], self._values.shape[2])
        clipped = prefix[:, :t]
        cache = self._cache
        if (
            cache is None
            or cache.length > t
            or self._seen is None
            or clipped.shape[0] != self._seen.shape[0]
            or not np.array_equal(clipped[:, : cache.length], self._seen)
        ):
            # New stream (or edited history): start the cache over.
            cache = PrefixDistanceCache(self._values)
            self._cache = cache
        distances = cache.advance_chunk(clipped[:, cache.length :])
        self._seen = clipped.copy()
        label, confidence = self._vote(distances)
        return label, confidence

    def _vote(self, distances: np.ndarray) -> tuple[int, float]:
        """Nearest label + agreement confidence from one distance row."""
        order = np.argsort(distances, kind="stable")
        label = int(self._labels[order[0]])
        votes = self._labels[order[: min(self.n_votes, order.size)]]
        confidence = float((votes == label).mean())
        return label, confidence

    def predict_prefix_batch(
        self, prefixes: "np.ndarray | list[np.ndarray]", series_length: int
    ) -> list[EarlyPrediction]:
        """All-pairs batched consultation: one multi-query cache advance.

        The ``k`` same-length prefixes are pushed through a single
        :class:`PrefixDistanceCache` in ``n_queries=k`` mode, so the
        whole group costs one vectorised pass over the references
        instead of ``k`` scans. The per-pair accumulation order matches
        the single-stream path exactly, so labels and confidences are
        bit-identical to ``k`` separate consultations — and the
        predictor's single-stream continuation state is left untouched.
        """
        if not self._fitted:
            raise NotFittedError(
                f"{type(self).__name__} used before fit"
            )
        stacked = np.asarray(
            [np.atleast_2d(np.asarray(p, dtype=float)) for p in prefixes],
            dtype=float,
        )
        if stacked.ndim != 3 or stacked.shape[0] < 1 or stacked.shape[2] < 1:
            raise DataError(
                f"batched prefixes must be (k>=1, n_variables, t>=1), "
                f"got shape {stacked.shape}"
            )
        t = min(stacked.shape[2], self._values.shape[2])
        clipped = stacked[:, :, :t]
        cache = PrefixDistanceCache(self._values, n_queries=clipped.shape[0])
        distances = cache.advance_chunk(clipped)
        distances = np.atleast_2d(distances)
        predictions: list[EarlyPrediction] = []
        for i in range(clipped.shape[0]):
            label, confidence = self._vote(distances[i])
            predictions.append(
                EarlyPrediction(
                    label=label,
                    prefix_length=min(stacked.shape[2], series_length),
                    series_length=series_length,
                    confidence=confidence,
                    degraded=True,
                    source=SOURCE_FALLBACK,
                )
            )
        return predictions


#: Named fallback constructors for the CLI / serve-sim layer.
FALLBACK_NAMES = ("majority", "prefix-1nn")


def make_fallback(name: str) -> FallbackPredictor:
    """Construct a fallback predictor by CLI name."""
    if name == "majority":
        return MajorityClassFallback()
    if name == "prefix-1nn":
        return PrefixNearestNeighborFallback()
    raise ConfigurationError(
        f"unknown fallback {name!r}; known: {', '.join(FALLBACK_NAMES)}"
    )
