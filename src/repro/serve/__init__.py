"""Resilient online serving layer for streaming early classification.

Wraps any trained :class:`~repro.core.base.EarlyClassifier` into a
production-grade streaming endpoint (``docs/serving.md``):

- :class:`InputGuard` validates every pushed point against train-time
  statistics (non-finite values, out-of-distribution magnitudes) under a
  strict / lenient / reject policy;
- per-consultation deadlines reuse the kill rule's
  :func:`~repro.core.timeouts.time_limit` and degrade to a cheap
  :class:`FallbackPredictor` instead of stalling the stream;
- a per-session :class:`CircuitBreaker` stops hammering a classifier
  that keeps failing and probes for recovery;
- :class:`ServeFaultPlan` injects deterministic push/consult faults so
  the whole failure surface is testable with zero real delays.

The entry points are :class:`GuardedStreamingSession` (wrap one stream)
and :func:`run_serve_sim` / ``repro-cli serve-sim`` (replay a dataset
and report feasibility and degradation).
"""

from .breaker import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
)
from .chaos import STAGE_CONSULT, STAGE_PUSH, ServeFaultPlan, parse_fault_specs
from .fallback import (
    FALLBACK_NAMES,
    FallbackPredictor,
    MajorityClassFallback,
    PrefixNearestNeighborFallback,
    make_fallback,
)
from .guard import (
    GUARD_LENIENT,
    GUARD_POLICIES,
    GUARD_REJECT,
    GUARD_STRICT,
    ChannelStats,
    GuardOutcome,
    GuardStats,
    InputGuard,
)
from .session import ConsultRecord, GuardedStreamingSession
from .simulate import ServeSimReport, run_serve_sim

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CircuitBreaker",
    "STAGE_CONSULT",
    "STAGE_PUSH",
    "ServeFaultPlan",
    "parse_fault_specs",
    "FALLBACK_NAMES",
    "FallbackPredictor",
    "MajorityClassFallback",
    "PrefixNearestNeighborFallback",
    "make_fallback",
    "GUARD_LENIENT",
    "GUARD_POLICIES",
    "GUARD_REJECT",
    "GUARD_STRICT",
    "ChannelStats",
    "GuardOutcome",
    "GuardStats",
    "InputGuard",
    "ConsultRecord",
    "GuardedStreamingSession",
    "ServeSimReport",
    "run_serve_sim",
]
