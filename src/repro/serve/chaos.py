"""Chaos harness: deterministic fault injection for the serving layer.

PR 2's :class:`~repro.core.resilience.FaultPlan` injects failures into
the offline evaluation grid at (stage, algorithm, dataset, attempt)
granularity. The serving layer reuses the exact same machinery at
*stream* granularity: the stage is ``push`` (corrupt the point at
ingestion) or ``consult`` (fail the classifier consultation), the
``dataset`` slot carries the stream name, and the ``attempt`` slot
carries the 1-based push index. Timeouts are injected by *raising*
:class:`~repro.core.timeouts.EvaluationTimeout` — the whole failure
surface (deadline misses, crashing classifiers, breaker trips and
recoveries) is exercised with zero real delays.

Every injection is recorded in ``plan.injected`` (inherited), so tests
assert the exact failure schedule that ran.
"""

from __future__ import annotations

from typing import Callable

from ..core.resilience import Fault, FaultPlan
from ..core.timeouts import EvaluationTimeout
from ..exceptions import ConfigurationError, DataError, TransientError

__all__ = [
    "STAGE_PUSH",
    "STAGE_CONSULT",
    "ServeFaultPlan",
    "parse_fault_specs",
]

#: Serving-layer stages a fault hook is consulted at.
STAGE_PUSH = "push"
STAGE_CONSULT = "consult"


def _timeout() -> BaseException:
    return EvaluationTimeout("injected consultation timeout")


def _corrupt() -> BaseException:
    return DataError("injected corrupt push")


class ServeFaultPlan(FaultPlan):
    """A :class:`FaultPlan` with streaming-granularity helpers.

    ``at`` is a tuple of 1-based push indices that fail (``None`` =
    every push); ``stream`` matches the session's stream name (``"*"``
    matches any stream — the default, since a replay opens one session
    per instance).

    Besides raising faults, a plan can carry *push-time data
    corruption*: :meth:`with_corruption` attaches a
    :class:`~repro.robustness.stream.StreamCorruptor` that transforms
    (rather than rejects) arriving points — NaN gaps, noise, warp —
    so the guard/fallback/breaker stack is measured against data
    faults, not just timing faults. A
    :class:`~repro.serve.session.GuardedStreamingSession` given this
    plan as its ``fault_injector`` picks the corruptor up
    automatically.
    """

    #: Optional push-time corruptor (see :meth:`with_corruption`).
    corruptor = None

    def with_corruption(self, corruptor) -> "ServeFaultPlan":
        """Attach a :class:`StreamCorruptor` applied at push time."""
        self.corruptor = corruptor
        return self

    def corrupt_push(
        self,
        at: tuple[int, ...] | None = (1,),
        stream: str = "*",
        exception: Callable[[], BaseException] = _corrupt,
    ) -> "ServeFaultPlan":
        """Corrupt the point arriving at the given push indices.

        The guarded session treats the raised error as an unusable
        observation: the point is dropped and counted as rejected.
        """
        self.faults.append(
            Fault(
                dataset=stream,
                algorithm="*",
                exception=exception,
                attempts=None if at is None else frozenset(at),
                stage=STAGE_PUSH,
            )
        )
        return self

    def fail_consult(
        self,
        at: tuple[int, ...] | None = (1,),
        stream: str = "*",
        exception: Callable[[], BaseException] = TransientError,
    ) -> "ServeFaultPlan":
        """Make the classifier consultation raise at the given pushes."""
        self.faults.append(
            Fault(
                dataset=stream,
                algorithm="*",
                exception=exception,
                attempts=None if at is None else frozenset(at),
                stage=STAGE_CONSULT,
            )
        )
        return self

    def timeout_consult(
        self,
        at: tuple[int, ...] | None = (1,),
        stream: str = "*",
    ) -> "ServeFaultPlan":
        """Make the consultation miss its deadline at the given pushes.

        Injected as a raised ``EvaluationTimeout`` — no real time passes.
        """
        return self.fail_consult(at=at, stream=stream, exception=_timeout)


def parse_fault_specs(specs: list[str]) -> ServeFaultPlan:
    """Build a :class:`ServeFaultPlan` from CLI fault specs.

    Each spec is ``stage:kind[:indices]`` where stage is ``push`` or
    ``consult``, kind is ``timeout`` / ``error`` / ``corrupt``, and
    indices is a comma-separated list of 1-based push indices (omitted =
    every push). Examples::

        consult:timeout:3,7     # consultations 3 and 7 miss the deadline
        consult:error:5         # consultation 5 raises
        push:corrupt:2          # point 2 arrives unusable
    """
    plan = ServeFaultPlan()
    for spec in specs:
        parts = spec.split(":")
        if len(parts) not in (2, 3):
            raise ConfigurationError(
                f"bad fault spec {spec!r}; expected stage:kind[:indices]"
            )
        stage, kind = parts[0], parts[1]
        at: tuple[int, ...] | None = None
        if len(parts) == 3 and parts[2]:
            try:
                at = tuple(int(i) for i in parts[2].split(","))
            except ValueError:
                raise ConfigurationError(
                    f"bad fault indices in {spec!r}; expected integers"
                ) from None
            if any(i < 1 for i in at):
                raise ConfigurationError(
                    f"fault indices are 1-based, got {at} in {spec!r}"
                )
        if stage == STAGE_PUSH:
            if kind != "corrupt":
                raise ConfigurationError(
                    f"push faults support kind 'corrupt', got {kind!r}"
                )
            plan.corrupt_push(at=at)
        elif stage == STAGE_CONSULT:
            if kind == "timeout":
                plan.timeout_consult(at=at)
            elif kind == "error":
                plan.fail_consult(at=at)
            else:
                raise ConfigurationError(
                    f"consult faults support kinds 'timeout'/'error', "
                    f"got {kind!r}"
                )
        else:
            raise ConfigurationError(
                f"unknown fault stage {stage!r}; expected "
                f"{STAGE_PUSH!r} or {STAGE_CONSULT!r}"
            )
    return plan
