"""Input guard: validate and sanitize every pushed time-point.

No production stream delivers clean, well-shaped observations. The guard
sits in front of a :class:`~repro.serve.session.GuardedStreamingSession`
and decides, per point, whether it is usable and in what form:

* structural problems (non-numeric values, non-1-D points, wrong channel
  count) can never be repaired — no policy invents values. The session
  surfaces them as explicit :class:`~repro.exceptions.DataError`\\ s
  under ``strict`` and drops-and-counts the point otherwise;
* value problems (NaN, Inf, out-of-distribution magnitudes relative to
  train-time statistics) are handled according to the configured
  :data:`GuardPolicy` — ``strict`` raises, ``lenient`` repairs the value
  and carries on, ``reject`` drops the point entirely.

Repairs and rejections are counted in the session's metrics registry
(``serve.sanitized_points`` / ``serve.rejected_points``) and reported
through one counted ``repro.serve`` warning per session, mirroring the
lenient-mode convention of :mod:`repro.data.io`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.dataset import TimeSeriesDataset
from ..exceptions import ConfigurationError, DataError

__all__ = [
    "GUARD_STRICT",
    "GUARD_LENIENT",
    "GUARD_REJECT",
    "GUARD_POLICIES",
    "ChannelStats",
    "GuardStats",
    "GuardOutcome",
    "InputGuard",
]

#: Guard policies. ``strict`` raises on any anomalous value, ``lenient``
#: sanitizes (impute non-finite values, clamp out-of-distribution
#: magnitudes) and continues, ``reject`` drops anomalous points.
GUARD_STRICT = "strict"
GUARD_LENIENT = "lenient"
GUARD_REJECT = "reject"

GUARD_POLICIES = (GUARD_STRICT, GUARD_LENIENT, GUARD_REJECT)


@dataclass(frozen=True)
class ChannelStats:
    """Train-time statistics of one variable (channel) of the stream."""

    mean: float
    std: float
    lo: float  # clamp floor: anything below is out-of-distribution
    hi: float  # clamp ceiling: anything above is out-of-distribution


@dataclass(frozen=True)
class GuardStats:
    """Per-channel train-time statistics backing the magnitude clamp.

    Computed once from the training dataset via :meth:`from_dataset`.
    The clamp band of each channel is
    ``[mean - clamp_sigma * std, mean + clamp_sigma * std]``, widened to
    include the observed training min/max — a value the model saw during
    training is never out-of-distribution.
    """

    channels: tuple[ChannelStats, ...]

    @classmethod
    def from_dataset(
        cls, dataset: TimeSeriesDataset, clamp_sigma: float = 6.0
    ) -> "GuardStats":
        """Compute guard statistics from the training dataset."""
        if clamp_sigma <= 0:
            raise ConfigurationError(
                f"clamp_sigma must be positive, got {clamp_sigma}"
            )
        channels = []
        for v in range(dataset.n_variables):
            values = dataset.values[:, v, :]
            values = values[np.isfinite(values)]
            if values.size == 0:
                raise DataError(
                    f"channel {v} of {dataset.name!r} has no finite "
                    "training values; guard statistics are undefined"
                )
            mean = float(values.mean())
            std = float(values.std())
            # A constant training channel (std == 0) still gets a non-empty
            # band so benign float noise is not flagged as OOD.
            slack = clamp_sigma * std if std > 0 else max(abs(mean), 1.0)
            channels.append(
                ChannelStats(
                    mean=mean,
                    std=std,
                    lo=min(mean - slack, float(values.min())),
                    hi=max(mean + slack, float(values.max())),
                )
            )
        return cls(channels=tuple(channels))

    @property
    def n_variables(self) -> int:
        return len(self.channels)


@dataclass(frozen=True)
class GuardOutcome:
    """What the guard decided about one pushed point.

    ``accepted`` is ``False`` only under the ``reject`` policy (the point
    must be dropped). ``point`` is the value to push when accepted —
    possibly repaired under ``lenient``. ``anomalies`` lists what was
    wrong (empty for a clean point); ``repaired`` flags that at least one
    value was imputed or clamped.
    """

    accepted: bool
    point: np.ndarray | None
    anomalies: tuple[str, ...] = ()
    repaired: bool = False

    @property
    def clean(self) -> bool:
        return not self.anomalies


class InputGuard:
    """Per-point validator/sanitizer configured by a guard policy.

    Parameters
    ----------
    stats:
        Train-time channel statistics (see :meth:`GuardStats.from_dataset`);
        ``None`` disables the out-of-distribution magnitude clamp, leaving
        only the NaN/Inf and shape checks.
    policy:
        One of :data:`GUARD_POLICIES`.

    The guard is stateful per stream: it remembers the last accepted
    value per channel so a non-finite reading can be imputed with the
    most recent good observation (falling back to the channel's training
    mean at stream start).
    """

    def __init__(
        self,
        stats: GuardStats | None = None,
        policy: str = GUARD_LENIENT,
    ) -> None:
        if policy not in GUARD_POLICIES:
            raise ConfigurationError(
                f"policy must be one of {GUARD_POLICIES}, got {policy!r}"
            )
        self.stats = stats
        self.policy = policy
        self._last_good: np.ndarray | None = None
        self.n_rejected = 0
        self.n_sanitized = 0
        self.anomaly_log: list[str] = []

    # ------------------------------------------------------------------
    def _impute_value(self, channel: int) -> float:
        """Replacement for a non-finite reading on ``channel``."""
        if self._last_good is not None:
            return float(self._last_good[channel])
        if self.stats is not None:
            return self.stats.channels[channel].mean
        return 0.0

    def inspect(self, point: np.ndarray) -> GuardOutcome:
        """Apply the guard policy to one already-shaped point.

        ``point`` must be a 1-D float vector whose length matches the
        stream's channel count (the session enforces the structural
        checks before consulting the guard). Returns a
        :class:`GuardOutcome`; under the ``strict`` policy an anomalous
        point raises :class:`~repro.exceptions.DataError` instead.
        """
        point = np.asarray(point, dtype=float)
        if self.stats is not None and point.shape[0] != self.stats.n_variables:
            raise DataError(
                f"point has {point.shape[0]} variables, guard statistics "
                f"cover {self.stats.n_variables}"
            )
        anomalies: list[str] = []
        repaired = point.copy()
        for v in range(point.shape[0]):
            value = point[v]
            if not np.isfinite(value):
                replacement = self._impute_value(v)
                anomalies.append(
                    f"channel {v}: non-finite value {value!r} "
                    f"(imputed {replacement:.6g})"
                )
                repaired[v] = replacement
                continue
            if self.stats is not None:
                band = self.stats.channels[v]
                if value < band.lo or value > band.hi:
                    clamped = float(np.clip(value, band.lo, band.hi))
                    anomalies.append(
                        f"channel {v}: magnitude {value:.6g} outside the "
                        f"train-time band [{band.lo:.6g}, {band.hi:.6g}] "
                        f"(clamped {clamped:.6g})"
                    )
                    repaired[v] = clamped
        if not anomalies:
            self._last_good = point
            return GuardOutcome(accepted=True, point=point)
        self.anomaly_log.extend(anomalies)
        if self.policy == GUARD_STRICT:
            raise DataError(
                "input guard (strict): " + "; ".join(anomalies)
            )
        if self.policy == GUARD_REJECT:
            self.n_rejected += 1
            return GuardOutcome(
                accepted=False, point=None, anomalies=tuple(anomalies)
            )
        # Lenient: push the repaired point. The repaired value also
        # becomes the new imputation source — it is the best available
        # estimate of the channel's current level.
        self.n_sanitized += 1
        self._last_good = repaired
        return GuardOutcome(
            accepted=True,
            point=repaired,
            anomalies=tuple(anomalies),
            repaired=True,
        )
