"""Per-session circuit breaker for classifier consultations.

A classifier that keeps timing out or crashing should stop being asked:
every doomed consultation burns a sampling period the stream does not
have. The breaker implements the classic three-state machine:

* ``closed`` — consultations flow to the model. ``failure_threshold``
  *consecutive* failures trip the breaker.
* ``open`` — consultations are skipped entirely (the session serves the
  fallback) until ``recovery_seconds`` of cool-down have elapsed on the
  injected clock.
* ``half-open`` — after the cool-down, probe consultations are let
  through; ``probe_successes`` consecutive successes close the breaker,
  any failure re-opens it (and restarts the cool-down).

The clock is injectable (default ``time.monotonic``) so tests — and the
chaos harness — drive the full state machine deterministically with zero
real delays. Every transition is recorded in :attr:`transitions` and
forwarded to an optional ``on_transition`` callback (the serving session
uses it to emit span events and bump the ``serve.breaker_trips``
counter).
"""

from __future__ import annotations

import time
from typing import Any, Callable

from ..exceptions import ConfigurationError

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
    "BREAKER_STATES",
    "CircuitBreaker",
]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"

BREAKER_STATES = (BREAKER_CLOSED, BREAKER_OPEN, BREAKER_HALF_OPEN)


class CircuitBreaker:
    """Consecutive-failure circuit breaker with a deterministic clock.

    Parameters
    ----------
    failure_threshold:
        Consecutive consultation failures (timeouts or exceptions) that
        trip the breaker open.
    recovery_seconds:
        Cool-down before an open breaker lets a probe through.
    probe_successes:
        Consecutive successful probes required to close again.
    clock:
        Monotonic time source; injectable for deterministic tests.
    on_transition:
        Optional ``callback(old_state, new_state, reason)`` invoked on
        every state change.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        recovery_seconds: float = 30.0,
        probe_successes: int = 1,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Callable[[str, str, str], Any] | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if recovery_seconds < 0:
            raise ConfigurationError(
                f"recovery_seconds must be >= 0, got {recovery_seconds}"
            )
        if probe_successes < 1:
            raise ConfigurationError(
                f"probe_successes must be >= 1, got {probe_successes}"
            )
        self.failure_threshold = failure_threshold
        self.recovery_seconds = recovery_seconds
        self.probe_successes = probe_successes
        self.clock = clock
        self.on_transition = on_transition
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._probe_streak = 0
        self._opened_at = 0.0
        self.n_trips = 0
        self.transitions: list[tuple[str, str, str, float]] = []

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state (``closed`` / ``open`` / ``half-open``).

        Reading the state never advances the machine; only
        :meth:`allow_request` promotes an expired ``open`` to
        ``half-open``.
        """
        return self._state

    def _transition(self, new_state: str, reason: str) -> None:
        old_state = self._state
        if old_state == new_state:
            return
        self._state = new_state
        self.transitions.append((old_state, new_state, reason, self.clock()))
        if new_state == BREAKER_OPEN:
            self.n_trips += 1
            self._opened_at = self.clock()
        if self.on_transition is not None:
            self.on_transition(old_state, new_state, reason)

    # ------------------------------------------------------------------
    def allow_request(self) -> bool:
        """Whether the next consultation may reach the model.

        ``False`` means route straight to the fallback. An ``open``
        breaker whose cool-down has elapsed moves to ``half-open`` and
        admits the probe.
        """
        if self._state == BREAKER_CLOSED:
            return True
        if self._state == BREAKER_OPEN:
            if self.clock() - self._opened_at >= self.recovery_seconds:
                self._probe_streak = 0
                self._transition(BREAKER_HALF_OPEN, "cool-down elapsed")
                return True
            return False
        return True  # half-open: probes flow

    def record_success(self) -> None:
        """Note a successful (in-deadline, non-raising) consultation."""
        self._consecutive_failures = 0
        if self._state == BREAKER_HALF_OPEN:
            self._probe_streak += 1
            if self._probe_streak >= self.probe_successes:
                self._transition(
                    BREAKER_CLOSED,
                    f"{self._probe_streak} successful probe(s)",
                )

    def record_failure(self, reason: str = "consultation failed") -> None:
        """Note a failed consultation (exception or deadline miss)."""
        if self._state == BREAKER_HALF_OPEN:
            self._consecutive_failures = 0
            self._transition(BREAKER_OPEN, f"probe failed: {reason}")
            return
        self._consecutive_failures += 1
        if (
            self._state == BREAKER_CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._consecutive_failures = 0
            self._transition(
                BREAKER_OPEN,
                f"{self.failure_threshold} consecutive failure(s): {reason}",
            )
