"""Resilient streaming session: guard -> deadline -> breaker -> fallback.

:class:`GuardedStreamingSession` wraps any trained
:class:`~repro.core.base.EarlyClassifier` into a production-grade
streaming endpoint. Relative to the plain
:class:`~repro.core.streaming.StreamingSession` it adds four defences,
applied in order on every push:

1. **Input guard** — every point is validated and (per policy)
   sanitized or dropped before it can reach the classifier
   (:mod:`repro.serve.guard`).
2. **Consultation deadline** — a classifier consultation that exceeds
   ``deadline_seconds`` is preempted via
   :func:`repro.core.timeouts.time_limit`; where SIGALRM is unavailable
   the same budget applies as a cooperative after-the-fact check on the
   injected clock, so a deadline miss is detected either way.
3. **Circuit breaker** — consecutive consultation failures trip the
   breaker and take the model out of rotation until probe consultations
   succeed (:mod:`repro.serve.breaker`).
4. **Fallback degradation** — whenever the model cannot answer (miss,
   crash, open breaker), a cheap fallback predictor answers instead and
   the eventual decision is flagged ``degraded=True`` /
   ``source="fallback"`` (:mod:`repro.serve.fallback`).

With no faults, no deadline, and clean input, the session's decisions
are identical to the plain ``StreamingSession``'s — resilience is free
until something actually goes wrong.

Everything is observable: rejections, sanitizations, degraded decisions,
breaker trips, and consult failures land in the session's
:class:`~repro.obs.metrics.MetricsRegistry` under ``serve.*`` counters,
breaker transitions and consult failures are span events on the ``push``
spans, and stream-level anomaly totals are reported through one counted
``repro.serve`` warning per stream.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.base import EarlyClassifier
from ..core.prediction import EarlyPrediction
from ..core.resilience import TIMEOUT, classify_failure, failure_reason
from ..core.streaming import StreamingDecision, StreamingSession
from ..core.timeouts import time_limit
from ..data.dataset import TimeSeriesDataset
from ..exceptions import ConfigurationError, DataError
from ..obs.logging import get_logger
from ..obs.metrics import MetricsRegistry
from ..obs.trace import current_span
from .breaker import BREAKER_CLOSED, BREAKER_OPEN, CircuitBreaker
from .chaos import STAGE_CONSULT, STAGE_PUSH
from .fallback import FallbackPredictor, make_fallback
from .guard import GUARD_LENIENT, GUARD_STRICT, GuardStats, InputGuard

__all__ = ["ConsultRecord", "GuardedStreamingSession"]

_logger = get_logger("serve")


@dataclass(frozen=True)
class ConsultRecord:
    """What one classifier consultation did, as the session saw it.

    Emitted to the session's ``consult_observer`` hook (and collected in
    ``session.consult_records``) so external harnesses — the SLO
    scenario replay in :mod:`repro.slo` — can account for every
    consultation without re-deriving the session's internal control
    flow. ``elapsed_seconds`` is measured on the session's injectable
    clock, so a virtual-clock replay sees deterministic durations.
    """

    index: int  #: 1-based consultation number within the session
    push_index: int  #: 1-based push that triggered the consultation
    n_observed: int  #: points in the buffer when the model was consulted
    elapsed_seconds: float  #: duration on the session clock
    source: str  #: ``model`` or ``fallback``
    degraded: bool  #: the answer came from the fallback predictor
    deadline_missed: bool  #: the consultation overran ``deadline_seconds``
    failure_kind: str | None  #: ``timeout``/``transient``/... or ``None``
    breaker_open: bool  #: the breaker skipped the model entirely


class GuardedStreamingSession(StreamingSession):
    """A :class:`StreamingSession` hardened for messy production streams.

    Parameters
    ----------
    classifier, series_length, check_every:
        As for :class:`StreamingSession`.
    guard:
        The per-point :class:`~repro.serve.guard.InputGuard`. Defaults to
        a lenient guard without train-time statistics (NaN/Inf imputation
        only; no magnitude clamp).
    fallback:
        A *fitted* :class:`~repro.serve.fallback.FallbackPredictor`
        answering when the model cannot. ``None`` disables degradation:
        consultation failures propagate to the caller (deadline misses in
        cooperative mode then keep the late model answer).
    deadline_seconds:
        Per-consultation wall-clock budget — normally the stream's
        sampling period, so a consultation that would collide with the
        next observation degrades instead of stalling. ``None`` disables
        the deadline.
    breaker:
        The per-session :class:`~repro.serve.breaker.CircuitBreaker`;
        ``None`` disables circuit breaking (every consultation reaches
        the model).
    fault_injector:
        Chaos hook ``(stage, algorithm, stream, push_index)`` consulted
        at every push (``stage="push"``) and model consultation
        (``stage="consult"``); raising injects the failure. See
        :class:`~repro.serve.chaos.ServeFaultPlan`.
    corruptor:
        Optional push-time data corruptor
        (:class:`~repro.robustness.stream.StreamCorruptor`): applied to
        every delivered point *between* coercion and the input guard,
        so the guard sees exactly what a degraded sensor would emit.
        When omitted, a corruptor attached to the ``fault_injector``
        plan (``ServeFaultPlan.with_corruption``) is picked up
        automatically. Every corrupted push is counted
        (``serve.corrupted_points`` plus per-operator
        ``serve.corruption.<op>`` counters) and logged in
        ``session.corruption_events`` — the provenance that says which
        operator degraded which push.
    stream_name, algorithm_name:
        Labels used in warnings, fault matching, and span attributes.
    metrics:
        Registry receiving the ``serve.*`` counters; a fresh one is
        created when omitted (always available as ``session.metrics``).
    clock:
        Monotonic time source for the cooperative deadline check
        (injectable for deterministic tests; default
        ``time.perf_counter``).
    consult_observer:
        Instrumentation hook receiving a :class:`ConsultRecord` after
        every completed consultation (model, fallback, or breaker-open
        skip). The SLO harness uses it to compute response times and
        deadline misses on its own clock; all records are also kept in
        ``session.consult_records``.
    preemptive_deadline:
        When ``False``, the SIGALRM preemption is skipped and only the
        cooperative deadline check on the injected clock applies. Virtual-
        clock replays set this so that simulated service times — not real
        wall time — decide deadline misses.
    """

    def __init__(
        self,
        classifier: EarlyClassifier,
        series_length: int,
        check_every: int = 1,
        *,
        guard: InputGuard | None = None,
        fallback: FallbackPredictor | None = None,
        deadline_seconds: float | None = None,
        breaker: CircuitBreaker | None = None,
        fault_injector: Callable[[str, str, str, int], None] | None = None,
        corruptor=None,
        stream_name: str = "stream",
        algorithm_name: str | None = None,
        metrics: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.perf_counter,
        consult_observer: Callable[["ConsultRecord"], None] | None = None,
        preemptive_deadline: bool = True,
    ) -> None:
        super().__init__(classifier, series_length, check_every=check_every)
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ConfigurationError(
                f"deadline_seconds must be positive or None, "
                f"got {deadline_seconds}"
            )
        if fallback is not None and not fallback.is_fitted:
            raise ConfigurationError(
                "the fallback predictor must be fitted before serving "
                "(call fallback.fit(train_dataset))"
            )
        self.guard = guard if guard is not None else InputGuard()
        self.fallback = fallback
        self.deadline_seconds = deadline_seconds
        self.breaker = breaker
        self.fault_injector = fault_injector
        if corruptor is None:
            # A ServeFaultPlan can carry push-time corruption; one plan
            # object then configures the whole failure surface.
            corruptor = getattr(fault_injector, "corruptor", None)
        self.corruptor = corruptor
        self.stream_name = stream_name
        self.algorithm_name = algorithm_name or type(classifier).__name__
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._clock = clock
        self.consult_observer = consult_observer
        self.preemptive_deadline = preemptive_deadline
        self._pushes = 0
        self._reported = False
        self.rejection_reasons: list[str] = []
        #: (push index, op) pairs for every corrupted delivery — the
        #: degraded-decision provenance of this stream.
        self.corruption_events: list[tuple[int, str]] = []
        self.consult_records: list[ConsultRecord] = []
        self._consult_note: dict[str, object] = {}
        if breaker is not None:
            # Chain (not replace) any caller-installed transition hook so
            # trips/recoveries always reach the span events and counters.
            previous = breaker.on_transition
            breaker.on_transition = (
                self._on_breaker_transition
                if previous is None
                else lambda old, new, reason: (
                    previous(old, new, reason),
                    self._on_breaker_transition(old, new, reason),
                )
            )

    # ------------------------------------------------------------------
    @classmethod
    def for_dataset(
        cls,
        classifier: EarlyClassifier,
        train_dataset: TimeSeriesDataset,
        *,
        policy: str = GUARD_LENIENT,
        clamp_sigma: float = 6.0,
        fallback: FallbackPredictor | str | None = "majority",
        series_length: int | None = None,
        **kwargs,
    ) -> "GuardedStreamingSession":
        """Build a guarded session wired to a training dataset.

        Computes the guard's train-time statistics and fits the fallback
        (named ``"majority"`` / ``"prefix-1nn"``, or a predictor
        instance) on ``train_dataset``; remaining keyword arguments pass
        through to the constructor.
        """
        guard = InputGuard(
            GuardStats.from_dataset(train_dataset, clamp_sigma=clamp_sigma),
            policy=policy,
        )
        if isinstance(fallback, str):
            fallback = make_fallback(fallback).fit(train_dataset)
        elif fallback is not None and not fallback.is_fitted:
            fallback.fit(train_dataset)
        return cls(
            classifier,
            series_length or train_dataset.length,
            guard=guard,
            fallback=fallback,
            **kwargs,
        )

    # ------------------------------------------------------------------
    @property
    def n_pushed(self) -> int:
        """Points the stream delivered (accepted + rejected)."""
        return self._pushes

    @property
    def n_rejected(self) -> int:
        """Points dropped by the guard or by injected push corruption."""
        return self._pushes - self.n_observed

    def _on_breaker_transition(
        self, old_state: str, new_state: str, reason: str
    ) -> None:
        current_span().add_event(
            "breaker_transition",
            from_state=old_state,
            to_state=new_state,
            reason=reason,
        )
        if new_state == BREAKER_OPEN:
            self.metrics.counter("serve.breaker_trips").inc()
            _logger.warning(
                "%s on %s: circuit breaker tripped open (%s)",
                self.algorithm_name, self.stream_name, reason,
            )
        elif new_state == BREAKER_CLOSED:
            _logger.info(
                "%s on %s: circuit breaker closed again (%s)",
                self.algorithm_name, self.stream_name, reason,
            )

    def _note_rejected(self, reason: str) -> None:
        self.metrics.counter("serve.rejected_points").inc()
        self.rejection_reasons.append(reason)

    def _note_corrupted(self, index: int, ops: list[str]) -> None:
        self.metrics.counter("serve.corrupted_points").inc()
        for op in ops:
            self.metrics.counter(f"serve.corruption.{op}").inc()
            self.corruption_events.append((index, op))
        current_span().add_event(
            "corrupted_push", push_index=index, ops=",".join(ops)
        )

    # ------------------------------------------------------------------
    def push(self, point: np.ndarray | float) -> StreamingDecision | None:
        """Guarded push: validate/sanitize the point, then consult.

        Unusable points (non-numeric, wrong shape, injected corruption,
        or value anomalies under the ``reject`` policy) are dropped and
        counted — under the ``strict`` policy they raise instead. The
        stream still advances: the session accounts for every delivered
        point, and a stream that ends short of ``series_length`` because
        of drops is finalized with a forced decision on what arrived.
        """
        if self._pushes >= self.series_length:
            raise DataError("stream already received its full series")
        self._pushes += 1
        index = self._pushes
        try:
            if self.fault_injector is not None:
                self.fault_injector(
                    STAGE_PUSH, self.algorithm_name, self.stream_name, index
                )
            point_array = self._coerce_point(point)
            if self.corruptor is not None:
                point_array, fired = self.corruptor.apply(
                    self.stream_name, index, point_array, self.series_length
                )
                if fired:
                    self._note_corrupted(index, fired)
            outcome = self.guard.inspect(point_array)
        except DataError as error:
            if self.guard.policy == GUARD_STRICT:
                raise
            self._note_rejected(f"push {index}: {failure_reason(error)}")
            if self._pushes == self.series_length:
                self._end_of_stream()
            return self._decision
        if not outcome.accepted:
            self._note_rejected(
                f"push {index}: {'; '.join(outcome.anomalies)}"
            )
            if self._pushes == self.series_length:
                self._end_of_stream()
            return self._decision
        if outcome.repaired:
            self.metrics.counter("serve.sanitized_points").inc()
        self._buffer.append(outcome.point)
        if self._decision is not None:
            return self._decision
        due = (
            self.n_observed % self.check_every == 0
            or self._pushes == self.series_length
        )
        if due:
            if self._pushes == self.series_length:
                # The stream is over even if drops left the buffer short
                # of series_length — force the final commit now.
                self._ended = True
            self._timed_consult()
        if self._pushes == self.series_length:
            self._report_stream()
        return self._decision

    def _end_of_stream(self) -> None:
        """The last delivered point was dropped: force a final decision."""
        if self._decision is None and self._buffer:
            self._ended = True
            self._timed_consult()
        self._report_stream()

    def finalize(self) -> StreamingDecision:
        decision = super().finalize()
        self._report_stream()
        return decision

    def _report_stream(self) -> None:
        """One counted ``repro.serve`` warning per anomalous stream."""
        if self._reported:
            return
        self._reported = True
        dropped = self.n_rejected
        sanitized = self.guard.n_sanitized
        if dropped or sanitized:
            first = (
                self.rejection_reasons[0]
                if self.rejection_reasons
                else self.guard.anomaly_log[0]
            )
            _logger.warning(
                "%s on %s: rejected %d and sanitized %d of %d point(s) "
                "(first: %s)",
                self.algorithm_name, self.stream_name,
                dropped, sanitized, self._pushes, first,
            )

    # ------------------------------------------------------------------
    def _fallback_prediction(self, values: np.ndarray) -> EarlyPrediction:
        self.metrics.counter("serve.fallback_consults").inc()
        return self.fallback.predict_prefix(values, self.series_length)

    def _predict_prefix(self, values: np.ndarray) -> EarlyPrediction:
        """One consultation, measured on the session clock and recorded."""
        note = self._consult_note = {
            "failure_kind": None,
            "deadline_missed": False,
            "breaker_open": False,
        }
        start = self._clock()
        prediction = self._consult_guarded(values)
        record = ConsultRecord(
            index=len(self.consult_records) + 1,
            push_index=self._pushes,
            n_observed=self.n_observed,
            elapsed_seconds=self._clock() - start,
            source=prediction.source,
            degraded=prediction.degraded,
            deadline_missed=bool(note["deadline_missed"]),
            failure_kind=note["failure_kind"],
            breaker_open=bool(note["breaker_open"]),
        )
        self.consult_records.append(record)
        if self.consult_observer is not None:
            self.consult_observer(record)
        return prediction

    def _consult_guarded(self, values: np.ndarray) -> EarlyPrediction:
        """One consultation under chaos, deadline, breaker, and fallback."""
        span = current_span()
        note = self._consult_note
        if self.breaker is not None and not self.breaker.allow_request():
            note["breaker_open"] = True
            span.set_attribute("breaker", self.breaker.state)
            span.set_attribute("source", "fallback")
            return self._fallback_prediction(values)
        start = self._clock()
        try:
            if self.fault_injector is not None:
                self.fault_injector(
                    STAGE_CONSULT,
                    self.algorithm_name,
                    self.stream_name,
                    self._pushes,
                )
            # Preemptive deadline (SIGALRM where available; elsewhere
            # time_limit degrades and the cooperative check below rules).
            # Virtual-clock replays disable the preemption so simulated
            # service times rule instead of real wall time.
            with time_limit(
                self.deadline_seconds if self.preemptive_deadline else None
            ):
                prediction = self.classifier.predict_one(values)
        except Exception as error:
            kind = classify_failure(error)
            reason = failure_reason(error)
            note["failure_kind"] = kind
            if kind == TIMEOUT:
                note["deadline_missed"] = True
            span.add_event("consult_failed", kind=kind, error=reason)
            self.metrics.counter(
                "serve.consult_timeouts"
                if kind == TIMEOUT
                else "serve.consult_failures"
            ).inc()
            if self.breaker is not None:
                self.breaker.record_failure(reason)
            if self.fallback is None:
                raise
            return self._fallback_prediction(values)
        elapsed = self._clock() - start
        if (
            self.deadline_seconds is not None
            and elapsed > self.deadline_seconds
        ):
            # Cooperative after-the-fact deadline check — the only rule
            # in force when SIGALRM is unavailable (non-Unix platform or
            # a worker thread). The model's answer arrived after the
            # stream moved on, so it is discarded for the fallback's.
            note["failure_kind"] = TIMEOUT
            note["deadline_missed"] = True
            span.add_event(
                "consult_failed",
                kind=TIMEOUT,
                error=(
                    f"consultation took {elapsed:.4f}s, deadline "
                    f"{self.deadline_seconds:.4f}s (cooperative check)"
                ),
            )
            self.metrics.counter("serve.consult_timeouts").inc()
            if self.breaker is not None:
                self.breaker.record_failure("deadline exceeded")
            if self.fallback is not None:
                return self._fallback_prediction(values)
            return prediction  # nothing to degrade to: keep the late answer
        if self.breaker is not None:
            self.breaker.record_success()
        return prediction

    def _consult(self) -> None:
        was_decided = self._decision is not None
        super()._consult()
        if (
            not was_decided
            and self._decision is not None
            and self._decision.degraded
        ):
            self.metrics.counter("serve.degraded_decisions").inc()
