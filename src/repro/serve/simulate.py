"""serve-sim: replay a dataset through the guarded serving layer.

``repro-cli serve-sim`` trains one algorithm on a registered dataset,
wraps it in a :class:`~repro.serve.session.GuardedStreamingSession`, and
replays held-out instances point by point — optionally under an injected
:class:`~repro.serve.chaos.ServeFaultPlan` — then prints a feasibility /
degradation report: how many streams decided, how many decisions were
fallback-sourced, what the guard rejected or repaired, how often the
breaker tripped, and whether the consultation latency distribution
(p50/p95/p99, over-budget count) keeps up with the sampling period.

The replay is also available programmatically as :func:`run_serve_sim`
(used by the Figure 13 bench and the chaos tests).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.registry import default_algorithms
from ..core.streaming import LatencySummary, StreamingDecision
from ..core.voting import wrap_for_dataset
from ..data.dataset import TimeSeriesDataset
from ..data.splits import train_test_split
from ..exceptions import ConfigurationError, ReproError
from ..obs.metrics import MetricsRegistry
from .breaker import CircuitBreaker
from .chaos import parse_fault_specs
from .fallback import FALLBACK_NAMES, make_fallback
from .guard import GUARD_LENIENT, GUARD_POLICIES, GuardStats, InputGuard
from .session import GuardedStreamingSession

__all__ = ["ServeSimReport", "run_serve_sim", "main", "build_parser"]


@dataclass
class ServeSimReport:
    """Everything one serve-sim replay produced."""

    algorithm: str
    dataset: str
    policy: str
    deadline_seconds: float | None
    frequency_seconds: float | None
    n_streams: int
    n_points: int
    decisions: list[StreamingDecision] = field(default_factory=list)
    true_labels: list[int] = field(default_factory=list)
    latency: LatencySummary | None = None
    counters: dict[str, int] = field(default_factory=dict)
    breaker_transitions: list[tuple[str, str, str, float]] = field(
        default_factory=list
    )
    corruption_specs: list[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def n_decided(self) -> int:
        return len(self.decisions)

    @property
    def n_degraded(self) -> int:
        return sum(1 for d in self.decisions if d.degraded)

    @property
    def degraded_rate(self) -> float:
        """Fraction of decisions the fallback (not the model) produced."""
        return self.n_degraded / self.n_decided if self.decisions else 0.0

    @property
    def accuracy(self) -> float:
        if not self.decisions:
            return 0.0
        hits = sum(
            1
            for decision, label in zip(self.decisions, self.true_labels)
            if decision.label == label
        )
        return hits / len(self.decisions)

    @property
    def mean_decided_at(self) -> float:
        """Mean number of points observed when decisions fired."""
        if not self.decisions:
            return 0.0
        return float(np.mean([d.decided_at for d in self.decisions]))

    @property
    def n_breaker_trips(self) -> int:
        return self.counters.get("serve.breaker_trips", 0)

    @property
    def n_breaker_recoveries(self) -> int:
        return sum(
            1 for _, to_state, _, _ in self.breaker_transitions
            if to_state == "closed"
        )

    # ------------------------------------------------------------------
    def render(self) -> str:
        """The human-readable feasibility / degradation report."""
        get = self.counters.get
        lines = [
            f"serve-sim: {self.algorithm} on {self.dataset} "
            f"({self.n_streams} stream(s), guard={self.policy}, "
            + (
                f"deadline={self.deadline_seconds:g}s)"
                if self.deadline_seconds is not None
                else "no deadline)"
            ),
            "",
            f"decisions      {self.n_decided}/{self.n_streams} streams "
            "decided",
            f"  accuracy     {self.accuracy:.3f}",
            f"  earliness    mean decision at point "
            f"{self.mean_decided_at:.1f}",
            f"  degraded     {self.n_degraded} "
            f"({100.0 * self.degraded_rate:.1f}%) fallback-sourced",
            f"input guard    rejected {get('serve.rejected_points', 0)}, "
            f"sanitized {get('serve.sanitized_points', 0)} "
            f"of {self.n_points} point(s)",
            f"consultations  {self.latency.count if self.latency else 0} "
            f"total, {get('serve.fallback_consults', 0)} fallback, "
            f"{get('serve.consult_timeouts', 0)} timeout(s), "
            f"{get('serve.consult_failures', 0)} failure(s)",
            f"breaker        {self.n_breaker_trips} trip(s), "
            f"{self.n_breaker_recoveries} recovery(ies)",
        ]
        if self.corruption_specs:
            ops = sorted(
                (name.removeprefix("serve.corruption."), value)
                for name, value in self.counters.items()
                if name.startswith("serve.corruption.")
            )
            fired = ", ".join(f"{op}={n}" for op, n in ops) or "none fired"
            lines.insert(
                len(lines) - 2,
                f"corruption     {get('serve.corrupted_points', 0)} "
                f"corrupted point(s) under "
                f"{' '.join(self.corruption_specs)} ({fired})",
            )
        if self.latency is not None:
            lat = self.latency
            lines += [
                "",
                "consultation latency:",
                "  count | mean | p50 | p95 | p99 | max | over-budget",
                f"  {lat.count} | {lat.mean * 1000:.2f}ms "
                f"| {lat.p50 * 1000:.2f}ms | {lat.p95 * 1000:.2f}ms "
                f"| {lat.p99 * 1000:.2f}ms | {lat.max * 1000:.2f}ms "
                f"| {lat.over_budget_count}",
            ]
            if self.frequency_seconds:
                ratio = lat.mean / self.frequency_seconds
                verdict = "FEASIBLE" if ratio < 1.0 else "TOO-SLOW"
                lines.append(
                    f"  mean latency / sampling period = {ratio:.3g} "
                    f"({verdict})"
                )
        return "\n".join(lines)


def run_serve_sim(
    classifier_factory: Callable,
    dataset: TimeSeriesDataset,
    algorithm_name: str = "classifier",
    *,
    n_streams: int = 10,
    policy: str = GUARD_LENIENT,
    fallback: str | None = "majority",
    deadline_seconds: float | None = None,
    breaker_threshold: int | None = 3,
    breaker_recovery_seconds: float = 0.0,
    check_every: int = 1,
    fault_injector: Callable[[str, str, str, int], None] | None = None,
    corrupt_specs: list[str] | None = None,
    corruption_seed: int | None = None,
    test_fraction: float = 0.3,
    seed: int = 0,
) -> ServeSimReport:
    """Train, then replay held-out instances through the guarded session.

    ``classifier_factory`` builds an untrained early classifier (a
    registry ``info.factory``); ``fallback`` is a name from
    :data:`~repro.serve.fallback.FALLBACK_NAMES` or ``None`` to serve
    without degradation; ``breaker_threshold=None`` disables the
    breaker. ``breaker_recovery_seconds`` defaults to 0 so deterministic
    replays recover via probes rather than wall-clock waits.

    ``corrupt_specs`` (``op:severity[@where]`` strings, see
    docs/robustness.md) applies push-time data corruption to every
    replayed stream via a :class:`~repro.robustness.stream.\
StreamCorruptor` seeded with ``corruption_seed`` (default: ``seed``);
    the additive-noise amplitude is referenced to the train-time channel
    std so severity means the same thing here as in the offline grid.
    """
    train, test = train_test_split(
        dataset, test_fraction=test_fraction, seed=seed
    )
    classifier = wrap_for_dataset(classifier_factory, train)
    classifier.train(train)
    stats = GuardStats.from_dataset(train)
    corruptor = None
    if corrupt_specs:
        from ..robustness.stream import StreamCorruptor

        corruptor = StreamCorruptor(
            corrupt_specs,
            seed=seed if corruption_seed is None else corruption_seed,
            noise_scale=float(
                np.mean([channel.std for channel in stats.channels])
            ),
        )
    fitted_fallback = (
        make_fallback(fallback).fit(train) if fallback else None
    )
    metrics = MetricsRegistry()
    n_streams = min(n_streams, test.n_instances)
    report = ServeSimReport(
        algorithm=algorithm_name,
        dataset=dataset.name,
        policy=policy,
        deadline_seconds=deadline_seconds,
        frequency_seconds=dataset.frequency_seconds,
        n_streams=n_streams,
        n_points=n_streams * dataset.length,
        corruption_specs=corruptor.describe() if corruptor else [],
    )
    latencies: list[float] = []
    for i in range(n_streams):
        breaker = (
            CircuitBreaker(
                failure_threshold=breaker_threshold,
                recovery_seconds=breaker_recovery_seconds,
            )
            if breaker_threshold is not None
            else None
        )
        session = GuardedStreamingSession(
            classifier,
            dataset.length,
            check_every=check_every,
            guard=InputGuard(stats, policy=policy),
            fallback=fitted_fallback,
            deadline_seconds=deadline_seconds,
            breaker=breaker,
            fault_injector=fault_injector,
            corruptor=corruptor,
            stream_name=f"{dataset.name}[{i}]",
            algorithm_name=algorithm_name,
            metrics=metrics,
        )
        decision = session.run(test.values[i])
        report.decisions.append(decision)
        report.true_labels.append(int(test.labels[i]))
        latencies.extend(session.push_latencies)
        if breaker is not None:
            report.breaker_transitions.extend(breaker.transitions)
    if latencies:
        report.latency = LatencySummary.from_latencies(
            latencies, budget_seconds=deadline_seconds
        )
    report.counters = {
        name: value
        for name, value in metrics.snapshot().items()
        if isinstance(value, int)
    }
    return report


# ----------------------------------------------------------------------
# CLI


def build_parser() -> argparse.ArgumentParser:
    """The ``serve-sim`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="etsc-bench serve-sim",
        description=(
            "Replay a dataset through the resilient serving layer and "
            "print a feasibility/degradation report (see docs/serving.md)"
        ),
    )
    parser.add_argument(
        "--algorithm", default="ECTS", metavar="NAME",
        help="registered algorithm to serve (default: ECTS)",
    )
    parser.add_argument(
        "--dataset", default="PowerCons", metavar="NAME",
        help="registered dataset to replay (default: PowerCons)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.1,
        help="dataset size scale factor (1.0 = published sizes)",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--streams", type=int, default=10, metavar="N",
        help="held-out instances to replay (default: 10)",
    )
    parser.add_argument(
        "--policy", choices=GUARD_POLICIES, default=GUARD_LENIENT,
        help="input-guard policy (default: lenient)",
    )
    parser.add_argument(
        "--fallback", choices=FALLBACK_NAMES + ("none",),
        default="majority",
        help="fallback predictor for degraded answers (default: majority)",
    )
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help=(
            "per-consultation deadline; 0 means use the dataset's "
            "sampling period (default: no deadline)"
        ),
    )
    parser.add_argument(
        "--breaker-threshold", type=int, default=3, metavar="N",
        help=(
            "consecutive consult failures that trip the circuit "
            "breaker; 0 disables the breaker (default: 3)"
        ),
    )
    parser.add_argument(
        "--check-every", type=int, default=1, metavar="K",
        help="consult the classifier every K pushes (default: 1)",
    )
    parser.add_argument(
        "--fault", action="append", default=[], metavar="SPEC",
        help=(
            "inject a deterministic fault: stage:kind[:indices], e.g. "
            "consult:timeout:3,7 / consult:error:5 / push:corrupt:2 "
            "(repeatable)"
        ),
    )
    parser.add_argument(
        "--corrupt", action="append", default=[], metavar="SPEC",
        help=(
            "apply push-time data corruption: op:severity[@where], e.g. "
            "missing_blocks:3 / additive_noise:2@tail (repeatable; see "
            "'etsc-bench robustness --list-ops')"
        ),
    )
    parser.add_argument(
        "--corruption-seed", type=int, default=None, metavar="N",
        help="seed of the corruption RNG streams (default: --seed)",
    )
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a JSONL trace of the replay (stream/push spans)",
    )
    parser.add_argument(
        "--log-level", metavar="LEVEL", default=None,
        help="enable repro logging at LEVEL (debug/info/warning/error)",
    )
    return parser


def main(argv: list[str] | None = None, out=None) -> int:
    """``serve-sim`` entry point; returns a process exit code."""
    out = out or sys.stdout
    arguments = build_parser().parse_args(argv)
    if arguments.log_level:
        from ..obs.logging import configure_logging

        configure_logging(arguments.log_level)
    from ..core.registry import default_datasets

    algorithms = default_algorithms(fast=True)
    datasets = default_datasets(scale=arguments.scale, seed=arguments.seed)
    try:
        info = algorithms.get(arguments.algorithm)
        dataset = datasets.load(arguments.dataset)
        fault_plan = (
            parse_fault_specs(arguments.fault) if arguments.fault else None
        )
        deadline = arguments.deadline
        if deadline is not None and deadline == 0:
            deadline = dataset.frequency_seconds
        kwargs = dict(
            n_streams=arguments.streams,
            policy=arguments.policy,
            fallback=(
                None if arguments.fallback == "none" else arguments.fallback
            ),
            deadline_seconds=deadline,
            breaker_threshold=(
                None
                if arguments.breaker_threshold == 0
                else arguments.breaker_threshold
            ),
            check_every=arguments.check_every,
            fault_injector=fault_plan,
            corrupt_specs=arguments.corrupt or None,
            corruption_seed=arguments.corruption_seed,
            seed=arguments.seed,
        )
        if arguments.trace:
            from ..obs.events import TraceWriter
            from ..obs.trace import Tracer, use_tracer

            with TraceWriter(arguments.trace) as writer:
                with use_tracer(Tracer(on_finish=writer.write_span)):
                    report = run_serve_sim(
                        info.factory, dataset, info.name, **kwargs
                    )
            print(
                f"trace written to {arguments.trace} "
                f"({writer.n_spans} spans)",
                file=out,
            )
        else:
            report = run_serve_sim(info.factory, dataset, info.name, **kwargs)
    except ConfigurationError as error:
        print(f"error: {error}", file=out)
        return 2
    except ReproError as error:
        print(f"serve-sim failed: {error}", file=out)
        return 1
    print(report.render(), file=out)
    if report.n_decided < report.n_streams:
        print(
            f"error: {report.n_streams - report.n_decided} stream(s) "
            "ended without a decision",
            file=out,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    raise SystemExit(main())
