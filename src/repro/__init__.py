"""repro — a framework to evaluate Early Time-Series Classification
algorithms (reproduction of Akasiadis et al., EDBT 2024).

Quick start::

    from repro import default_algorithms, default_datasets, evaluate

    datasets = default_datasets(scale=0.1)
    algorithms = default_algorithms()
    dataset = datasets.load("PowerCons")
    result = evaluate(
        algorithms.get("TEASER").factory, dataset, "TEASER", n_folds=5
    )
    print(result.accuracy, result.earliness, result.harmonic_mean)

The public API re-exports the framework core (interfaces, evaluation,
registries), the eight evaluated algorithms, the three full time-series
classifiers, the dataset container, and the Section 2.2 metrics.
"""

from .core import (
    AlgorithmRegistry,
    BenchmarkRunner,
    DatasetRegistry,
    GridSearchETSC,
    StreamingDecision,
    StreamingSession,
    compare_algorithms,
    EarlyClassifier,
    EarlyPrediction,
    EvaluationResult,
    FullTSClassifier,
    RunReport,
    VotingEnsemble,
    canonical_categories,
    categorize,
    collect_predictions,
    default_algorithms,
    default_datasets,
    evaluate,
    wrap_for_dataset,
)
from .data import TimeSeriesDataset, fill_missing, stratified_k_fold, train_test_split
from .etsc import ECEC, ECTS, EDSC, STRUT, TEASER, EconomyK, s_mini, s_mlstm, s_weasel
from .exceptions import ReproError
from .stats import accuracy, earliness, f1_score, harmonic_mean
from .tsc import MLSTMFCN, WEASEL, MiniROCKET

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "TimeSeriesDataset",
    "fill_missing",
    "stratified_k_fold",
    "train_test_split",
    "EarlyClassifier",
    "FullTSClassifier",
    "EarlyPrediction",
    "collect_predictions",
    "EvaluationResult",
    "AlgorithmRegistry",
    "DatasetRegistry",
    "BenchmarkRunner",
    "RunReport",
    "canonical_categories",
    "GridSearchETSC",
    "StreamingDecision",
    "StreamingSession",
    "compare_algorithms",
    "VotingEnsemble",
    "categorize",
    "default_algorithms",
    "default_datasets",
    "evaluate",
    "wrap_for_dataset",
    "ECEC",
    "ECTS",
    "EDSC",
    "STRUT",
    "TEASER",
    "EconomyK",
    "s_mini",
    "s_mlstm",
    "s_weasel",
    "WEASEL",
    "MiniROCKET",
    "MLSTMFCN",
    "accuracy",
    "earliness",
    "f1_score",
    "harmonic_mean",
    "ReproError",
]
