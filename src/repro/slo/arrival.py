"""Deterministic arrival processes for scenario replays.

An arrival process turns a stream spec into concrete per-point arrival
timestamps on the virtual timeline. Three processes cover the load
shapes real-time serving is judged against:

* ``uniform`` — one point every ``period``: the ideal sensor.
* ``poisson`` — exponential inter-arrival gaps with mean ``period``,
  from a seeded generator: memoryless jittered load.
* ``bursty`` — ``burst_size`` points arrive back-to-back at
  ``burst_period`` spacing, then the source idles for ``idle`` seconds:
  the on/off pattern that makes queueing (and therefore tail latency)
  visible.

All processes are pure functions of their parameters and seed, so the
same scenario always produces the same timeline — reproducibility is
what lets ``BENCH_SERVE.json`` gate regressions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["ARRIVAL_PROCESSES", "ArrivalSpec"]

ARRIVAL_UNIFORM = "uniform"
ARRIVAL_POISSON = "poisson"
ARRIVAL_BURSTY = "bursty"

#: Supported arrival processes.
ARRIVAL_PROCESSES = (ARRIVAL_UNIFORM, ARRIVAL_POISSON, ARRIVAL_BURSTY)


@dataclass(frozen=True)
class ArrivalSpec:
    """How a stream's points arrive on the virtual timeline.

    ``period_seconds`` is the mean inter-arrival gap (exact for
    ``uniform``, the exponential mean for ``poisson``, the in-burst
    spacing for ``bursty``). ``burst_size``/``idle_seconds`` only apply
    to the bursty process.
    """

    process: str = ARRIVAL_UNIFORM
    period_seconds: float = 1.0
    burst_size: int = 8
    idle_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.process not in ARRIVAL_PROCESSES:
            raise ConfigurationError(
                f"unknown arrival process {self.process!r}; expected one "
                f"of {', '.join(ARRIVAL_PROCESSES)}"
            )
        if self.period_seconds <= 0:
            raise ConfigurationError(
                f"arrival period must be positive, got {self.period_seconds}"
            )
        if self.burst_size < 1:
            raise ConfigurationError(
                f"burst_size must be >= 1, got {self.burst_size}"
            )
        if self.idle_seconds < 0:
            raise ConfigurationError(
                f"idle_seconds must be >= 0, got {self.idle_seconds}"
            )
        if self.process == ARRIVAL_BURSTY and self.idle_seconds == 0:
            raise ConfigurationError(
                "bursty arrivals need idle_seconds > 0 (the off period "
                "between bursts); use the uniform process for steady load"
            )

    # ------------------------------------------------------------------
    def generate(
        self, n_points: int, seed: int, start: float = 0.0
    ) -> np.ndarray:
        """Arrival timestamps for ``n_points`` points of one stream.

        Strictly increasing, starting at ``start``. ``seed`` feeds the
        Poisson process; the uniform and bursty processes are
        deterministic without it (it is still accepted so call sites
        need not special-case).
        """
        if n_points < 1:
            raise ConfigurationError(
                f"n_points must be >= 1, got {n_points}"
            )
        if self.process == ARRIVAL_UNIFORM:
            gaps = np.full(n_points - 1, self.period_seconds)
        elif self.process == ARRIVAL_POISSON:
            rng = np.random.default_rng(np.random.SeedSequence(seed))
            gaps = rng.exponential(self.period_seconds, size=n_points - 1)
        else:  # bursty
            # Position k within its burst: in-burst spacing everywhere,
            # plus the idle gap before each burst after the first.
            positions = np.arange(1, n_points)
            gaps = np.full(n_points - 1, self.period_seconds)
            gaps[positions % self.burst_size == 0] += self.idle_seconds
        return float(start) + np.concatenate(([0.0], np.cumsum(gaps)))
