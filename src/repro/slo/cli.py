"""serve-slo: run SLO scenarios through the serving layer.

``etsc-bench serve-slo`` loads one or more scenario configs (bundled
names or file paths), replays each through the guarded serving session
on the scenario's clock, prints the per-scenario SLO report, and
optionally writes the combined JSON (the same shape
``benchmarks/bench_serve.py`` commits as ``BENCH_SERVE.json``).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path

from ..exceptions import ConfigurationError, ReproError
from .harness import run_scenario
from .scenario import CorruptionBlock, bundled_scenarios, resolve_scenario

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``serve-slo`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="etsc-bench serve-slo",
        description=(
            "Replay scenario-driven serve workloads and report "
            "latency/jitter/deadline-miss SLOs (see docs/slo.md)"
        ),
    )
    parser.add_argument(
        "--scenario",
        action="append",
        default=[],
        metavar="NAME-OR-PATH",
        help=(
            "scenario to run: a bundled name (see --list) or a YAML/JSON "
            "file path; repeatable (default: all bundled scenarios)"
        ),
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list bundled scenarios, then exit",
    )
    parser.add_argument(
        "--corrupt",
        action="append",
        default=[],
        metavar="SPEC",
        help=(
            "override every scenario's corruption block with this "
            "push-time pipeline: op:severity[@where], repeatable (see "
            "'etsc-bench robustness --list-ops' and docs/robustness.md)"
        ),
    )
    parser.add_argument(
        "--corruption-seed",
        type=int,
        default=None,
        metavar="N",
        help=(
            "seed of the --corrupt RNG streams (default: each "
            "scenario's own seed)"
        ),
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="write the combined scenario reports as JSON to PATH",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help=(
            "write a JSONL span trace of the replays; SLO counters are "
            "recomputable from it via python -m repro.obs.summary"
        ),
    )
    parser.add_argument(
        "--log-level",
        metavar="LEVEL",
        default=None,
        help="enable repro logging at LEVEL (debug/info/warning/error)",
    )
    return parser


def _run_all(names: list[str], out, corruption=None) -> dict:
    reports = {}
    for name in names:
        scenario = resolve_scenario(name)
        if corruption is not None:
            scenario = replace(scenario, corruption=corruption)
        report = run_scenario(scenario)
        print(report.render(), file=out)
        print("", file=out)
        reports[scenario.name] = report.as_dict()
    return reports


def main(argv: list[str] | None = None, out=None) -> int:
    """``serve-slo`` entry point; returns a process exit code."""
    out = out or sys.stdout
    arguments = build_parser().parse_args(argv)
    if arguments.log_level:
        from ..obs.logging import configure_logging

        configure_logging(arguments.log_level)
    bundled = bundled_scenarios()
    if arguments.list:
        print("bundled scenarios:", file=out)
        for name, path in bundled.items():
            print(f"  {name:12s} {path}", file=out)
        return 0
    names = arguments.scenario or sorted(bundled)
    if not names:
        print("error: no scenarios bundled and none given", file=out)
        return 2
    try:
        corruption = None
        if arguments.corrupt:
            corruption = CorruptionBlock(
                ops=tuple(arguments.corrupt),
                seed=arguments.corruption_seed,
            )
        if arguments.trace:
            from ..obs.events import TraceWriter
            from ..obs.trace import Tracer, use_tracer

            with TraceWriter(arguments.trace) as writer:
                with use_tracer(Tracer(on_finish=writer.write_span)):
                    reports = _run_all(names, out, corruption)
            print(
                f"trace written to {arguments.trace} "
                f"({writer.n_spans} spans)",
                file=out,
            )
        else:
            reports = _run_all(names, out, corruption)
    except ConfigurationError as error:
        print(f"error: {error}", file=out)
        return 2
    except ReproError as error:
        print(f"serve-slo failed: {error}", file=out)
        return 1
    if arguments.output:
        payload = {"scenarios": reports}
        Path(arguments.output).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"reports written to {arguments.output}", file=out)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    raise SystemExit(main())
