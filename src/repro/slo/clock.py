"""Virtual time for deterministic serve replays.

A :class:`VirtualClock` is a monotonic counter that only moves when the
harness says so: to an arrival timestamp (``advance_to``) or forward by
a simulated service duration (``advance``). Injected as the
``clock`` of a :class:`~repro.serve.session.GuardedStreamingSession`
and its :class:`~repro.serve.breaker.CircuitBreaker`, it makes deadline
misses, breaker cool-downs, and every latency in an SLO report a pure
function of the scenario config and seed — identical on any machine,
at any load.
"""

from __future__ import annotations

from ..exceptions import ConfigurationError

__all__ = ["VirtualClock"]


class VirtualClock:
    """A manually advanced monotonic clock (seconds)."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    __call__ = now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` (must be >= 0)."""
        if seconds < 0:
            raise ConfigurationError(
                f"virtual time cannot run backwards (advance by {seconds})"
            )
        self._now += float(seconds)
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Jump forward to ``timestamp``; earlier timestamps are a no-op.

        Monotonicity is preserved by construction: an event that was
        queued behind a long service period starts late, it does not
        rewind the clock.
        """
        if timestamp > self._now:
            self._now = float(timestamp)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now:.6f})"
