"""Real-time SLO harness: scenario-driven serve workloads.

The paper frames evaluation of early time-series classifiers as a
*framework* question; this package extends that framing to the serving
layer's real-time behaviour. A **scenario** is a declarative YAML/JSON
config — arrival process, stream mix across datasets/algorithms, service
model, consult deadline, fault spec — and the harness replays it through
:class:`~repro.serve.session.GuardedStreamingSession` on a virtual (or
wall) clock, reporting throughput, latency quantiles up to p99.9,
jitter, deadline-miss rate, degraded-decision rate, and breaker
behaviour per scenario (``docs/slo.md``).

Scenario diversity is *data*, not code: the bundled ``scenarios/``
directory ships baseline / bursty / faulty configs, ``etsc-bench
serve-slo --scenario <file-or-name>`` runs any of them, and
``benchmarks/bench_serve.py`` maintains the committed, CI-gated
``BENCH_SERVE.json`` trajectory alongside ``BENCH_PERF.json``.

Virtual-clock replays are fully deterministic: arrival times and
simulated service times come from seeded generators, deadlines are
enforced on the session's injected clock (never SIGALRM), and two runs
of the same scenario produce identical reports byte for byte.
"""

from .arrival import ARRIVAL_PROCESSES, ArrivalSpec
from .clock import VirtualClock
from .harness import (
    ScenarioBundle,
    SimulatedClassifier,
    derive_seed,
    run_scenario,
    train_scenario_bundles,
)
from .report import ScenarioReport
from .scenario import (
    CLOCK_MODES,
    BreakerSpec,
    Scenario,
    ServiceModel,
    StreamSpec,
    bundled_scenarios,
    load_scenario,
    parse_scenario,
    resolve_scenario,
)

__all__ = [
    "ARRIVAL_PROCESSES",
    "ArrivalSpec",
    "VirtualClock",
    "run_scenario",
    "derive_seed",
    "SimulatedClassifier",
    "ScenarioBundle",
    "train_scenario_bundles",
    "ScenarioReport",
    "CLOCK_MODES",
    "BreakerSpec",
    "Scenario",
    "ServiceModel",
    "StreamSpec",
    "bundled_scenarios",
    "load_scenario",
    "parse_scenario",
    "resolve_scenario",
]
