"""Per-scenario SLO reports.

One :class:`ScenarioReport` per replay: the latency distribution of
consultation *response times* (queueing wait + service, the number a
client actually experiences), its jitter (stddev and IQR), throughput
over the scenario makespan, and the three SLO verdict rates — deadline
misses, degraded decisions, breaker trips. The deterministic core is
separated from the ``environment`` section (peak RSS, real wall time,
host facts), so two virtual-clock runs of the same scenario compare
equal on :meth:`ScenarioReport.deterministic_dict` byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..core.streaming import LatencySummary, StreamingDecision
from .scenario import Scenario

__all__ = ["ScenarioReport"]


def _round(value: float, digits: int = 9) -> float:
    """Stabilize floats for JSON round-trips and cross-run comparison."""
    return round(float(value), digits)


@dataclass
class ScenarioReport:
    """Everything one scenario replay produced."""

    scenario: Scenario
    n_streams: int = 0
    n_points: int = 0
    n_consults: int = 0
    decisions: list[StreamingDecision] = field(default_factory=list)
    true_labels: list[int] = field(default_factory=list)
    latency: LatencySummary | None = None
    iqr_seconds: float = 0.0
    makespan_seconds: float = 0.0
    deadline_misses: int = 0
    degraded_decisions: int = 0
    breaker_trips: int = 0
    breaker_recoveries: int = 0
    counters: dict[str, int] = field(default_factory=dict)
    environment: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def n_decided(self) -> int:
        return len(self.decisions)

    @property
    def accuracy(self) -> float:
        if not self.decisions:
            return 0.0
        hits = sum(
            1
            for decision, label in zip(self.decisions, self.true_labels)
            if decision.label == label
        )
        return hits / len(self.decisions)

    @property
    def mean_decided_at(self) -> float:
        if not self.decisions:
            return 0.0
        return sum(d.decided_at for d in self.decisions) / len(self.decisions)

    @property
    def deadline_miss_rate(self) -> float:
        """Fraction of consultations that missed the scenario deadline."""
        return self.deadline_misses / self.n_consults if self.n_consults else 0.0

    @property
    def degraded_decision_rate(self) -> float:
        """Fraction of decisions the fallback (not the model) produced."""
        return self.degraded_decisions / self.n_decided if self.n_decided else 0.0

    @property
    def throughput_per_second(self) -> float:
        """Consultations completed per second of scenario makespan."""
        if self.makespan_seconds <= 0:
            return 0.0
        return self.n_consults / self.makespan_seconds

    # ------------------------------------------------------------------
    def deterministic_dict(self) -> dict[str, Any]:
        """The reproducible core: identical across same-seed replays."""
        latency = None
        if self.latency is not None:
            latency = {
                key: (_round(value) if isinstance(value, float) else value)
                for key, value in self.latency.as_dict().items()
            }
        return {
            "scenario": {
                "name": self.scenario.name,
                "seed": self.scenario.seed,
                "clock": self.scenario.clock,
                "deadline_ms": self.scenario.deadline_ms,
                "n_streams": self.scenario.n_streams,
            },
            "streams": {
                "total": self.n_streams,
                "decided": self.n_decided,
                "accuracy": _round(self.accuracy),
                "mean_decided_at": _round(self.mean_decided_at),
            },
            "load": {
                "points": self.n_points,
                "consults": self.n_consults,
                "makespan_seconds": _round(self.makespan_seconds),
                "throughput_per_second": _round(self.throughput_per_second),
            },
            "latency": latency,
            "jitter": {
                "stddev_seconds": _round(
                    self.latency.jitter if self.latency else 0.0
                ),
                "iqr_seconds": _round(self.iqr_seconds),
            },
            "slo": {
                "deadline_misses": self.deadline_misses,
                "deadline_miss_rate": _round(self.deadline_miss_rate),
                "degraded_decisions": self.degraded_decisions,
                "degraded_decision_rate": _round(self.degraded_decision_rate),
                "breaker_trips": self.breaker_trips,
                "breaker_recoveries": self.breaker_recoveries,
            },
            "counters": dict(sorted(self.counters.items())),
        }

    def as_dict(self) -> dict[str, Any]:
        """Deterministic core plus the per-run ``environment`` section."""
        out = self.deterministic_dict()
        out["environment"] = dict(self.environment)
        return out

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Human-readable scenario report."""
        scenario = self.scenario
        deadline = (
            f"deadline={scenario.deadline_ms:g}ms"
            if scenario.deadline_ms is not None
            else "no deadline"
        )
        lines = [
            f"scenario {scenario.name!r}: {self.n_streams} stream(s), "
            f"{scenario.clock} clock, {deadline}, "
            f"arrival={scenario.arrival.process}"
            + (f" — {scenario.description}" if scenario.description else ""),
            "",
            f"streams        {self.n_decided}/{self.n_streams} decided, "
            f"accuracy {self.accuracy:.3f}, "
            f"mean decision at point {self.mean_decided_at:.1f}",
            f"load           {self.n_points} point(s), {self.n_consults} "
            f"consultation(s) over {self.makespan_seconds:.3f}s makespan "
            f"({self.throughput_per_second:.1f} consults/s)",
        ]
        if self.latency is not None:
            lat = self.latency
            lines += [
                "response latency (queueing wait + service):",
                "  p50 | p95 | p99 | p99.9 | max | jitter(std) | IQR",
                f"  {lat.p50 * 1000:.2f}ms | {lat.p95 * 1000:.2f}ms "
                f"| {lat.p99 * 1000:.2f}ms | {lat.p999 * 1000:.2f}ms "
                f"| {lat.max * 1000:.2f}ms | {lat.jitter * 1000:.2f}ms "
                f"| {self.iqr_seconds * 1000:.2f}ms",
            ]
        lines += [
            f"slo            {self.deadline_misses} deadline miss(es) "
            f"({100.0 * self.deadline_miss_rate:.1f}% of consults), "
            f"{self.degraded_decisions} degraded decision(s) "
            f"({100.0 * self.degraded_decision_rate:.1f}%)",
            f"breaker        {self.breaker_trips} trip(s), "
            f"{self.breaker_recoveries} recovery(ies)",
            f"input guard    rejected "
            f"{self.counters.get('serve.rejected_points', 0)}, sanitized "
            f"{self.counters.get('serve.sanitized_points', 0)} point(s)",
        ]
        if scenario.corruption is not None:
            fired = ", ".join(
                f"{name.removeprefix('serve.corruption.')}={value}"
                for name, value in sorted(self.counters.items())
                if name.startswith("serve.corruption.")
            )
            lines.append(
                f"corruption     "
                f"{self.counters.get('serve.corrupted_points', 0)} "
                f"corrupted point(s) under "
                f"{' '.join(scenario.corruption.ops)} "
                f"({fired or 'none fired'})"
            )
        if self.environment:
            peak = self.environment.get("peak_rss_kb")
            wall = self.environment.get("wall_seconds")
            facts = []
            if peak is not None:
                facts.append(f"peak RSS {peak / 1024.0:.1f} MiB")
            if wall is not None:
                facts.append(f"replay wall time {wall:.2f}s")
            if facts:
                lines.append(f"environment    {', '.join(facts)}")
        return "\n".join(lines)
