"""Scenario replay: serve a configured workload and measure its SLOs.

The harness turns a :class:`~repro.slo.scenario.Scenario` into a replay
through :class:`~repro.serve.session.GuardedStreamingSession`:

1. Train each distinct (algorithm, dataset) pair once on its training
   split; fit guard statistics and the fallback predictor from the same
   split.
2. Generate every stream's per-point arrival timestamps from the
   scenario's seeded arrival process and merge them into one global
   timeline.
3. Replay the timeline through a single simulated server: a consultation
   starts at ``max(arrival, server_free)`` and occupies the server for
   its service time, so bursts queue and queueing shows up in response
   latency — exactly the mechanism that makes real-time deadlines hard.

Under the ``virtual`` clock, service times come from the scenario's
seeded :class:`~repro.slo.scenario.ServiceModel` (the wrapped classifier
advances the clock instead of consuming wall time), deadlines are
enforced by the session's cooperative check on the same clock, and the
whole report is a deterministic function of the scenario. Under the
``wall`` clock the replay measures real consultation latencies, like
``serve-sim`` — useful for profiling, not for committed trajectories.

Every consultation's response time and deadline verdict are also
stamped onto the session's ``push`` span, so when a replay is traced the
report's SLO counters are recomputable from the trace alone via
:func:`repro.obs.metrics.metrics_from_spans`.
"""

from __future__ import annotations

import sys
import time
import zlib
from dataclasses import dataclass, field

import numpy as np

from ..core.registry import default_algorithms, default_datasets
from ..core.resilience import TIMEOUT
from ..core.streaming import LatencySummary
from ..core.voting import wrap_for_dataset
from ..data.splits import train_test_split
from ..obs.metrics import MetricsRegistry
from ..obs.trace import current_span
from ..serve.breaker import CircuitBreaker
from ..serve.guard import GuardStats, InputGuard
from ..serve.fallback import make_fallback
from ..serve.session import ConsultRecord, GuardedStreamingSession
from .clock import VirtualClock
from .report import ScenarioReport
from .scenario import CLOCK_VIRTUAL, Scenario


__all__ = [
    "run_scenario",
    "derive_seed",
    "SimulatedClassifier",
    "ScenarioBundle",
    "train_scenario_bundles",
]


def derive_seed(*parts) -> int:
    """Deterministic cross-process seed from structured parts (crc32 —
    the hash() pitfall PR 2 fixed must not come back here)."""
    key = ":".join(str(part) for part in parts).encode("utf-8")
    return zlib.crc32(key)


# Historical private alias (kept for older call sites/tests).
_derive_seed = derive_seed


class SimulatedClassifier:
    """Wrap a trained classifier so consultations cost *virtual* time.

    ``predict_one`` advances the shared virtual clock by a seeded
    service-model sample before delegating, so the session's cooperative
    deadline check — reading the same clock — sees exactly that
    duration. Everything else proxies to the trained classifier.

    Shared by the single-server SLO harness and the fleet's shard
    workers (each shard wraps the bundle classifier around its *own*
    clock, so a shard is one simulated server).
    """

    def __init__(self, inner, clock: VirtualClock, service, rng) -> None:
        self._inner = inner
        self._vclock = clock
        self._service = service
        self._rng = rng

    def predict_one(self, values: np.ndarray):
        self._vclock.advance(
            self._service.sample(self._rng, int(values.shape[-1]))
        )
        return self._inner.predict_one(values)

    def __getattr__(self, name):
        return getattr(self._inner, name)


_SimulatedClassifier = SimulatedClassifier


@dataclass
class ScenarioBundle:
    """One trained (algorithm, dataset) pair and its serving artefacts.

    What a scenario's streams share: the trained classifier, the guard
    statistics and fitted fallback derived from the same training split,
    and the held-out test split the streams replay. Training happens
    once per distinct pair — in the parent, before any shard forks, so
    fleet workers inherit bundles by copy-on-write.
    """

    algorithm: str
    dataset: str
    classifier: object
    stats: GuardStats
    fallback: object | None
    test: object

    @property
    def key(self) -> tuple[str, str]:
        return (self.algorithm, self.dataset)


def train_scenario_bundles(
    scenario: Scenario,
    algorithms=None,
    datasets=None,
) -> dict[tuple[str, str], ScenarioBundle]:
    """Train every distinct (algorithm, dataset) pair a scenario uses."""
    if algorithms is None:
        algorithms = default_algorithms(fast=True)
    if datasets is None:
        datasets = default_datasets(scale=scenario.scale, seed=scenario.seed)
    bundles: dict[tuple[str, str], ScenarioBundle] = {}
    for spec in scenario.streams:
        key = (spec.algorithm, spec.dataset)
        if key in bundles:
            continue
        info = algorithms.get(spec.algorithm)
        dataset = datasets.load(spec.dataset)
        train, test = train_test_split(
            dataset,
            test_fraction=scenario.test_fraction,
            seed=scenario.seed,
        )
        classifier = wrap_for_dataset(info.factory, train)
        classifier.train(train)
        bundles[key] = ScenarioBundle(
            algorithm=spec.algorithm,
            dataset=spec.dataset,
            classifier=classifier,
            stats=GuardStats.from_dataset(train),
            fallback=(
                make_fallback(scenario.fallback).fit(train)
                if scenario.fallback
                else None
            ),
            test=test,
        )
    return bundles


@dataclass
class _Stream:
    """One replaying stream and its per-stream collection state."""

    name: str
    session: GuardedStreamingSession
    breaker: CircuitBreaker | None
    values: np.ndarray  # (n_variables, length) held-out instance
    true_label: int
    arrivals: np.ndarray  # per-point arrival timestamps (seconds)
    pending_arrival: float = 0.0
    responses: list[float] = field(default_factory=list)
    records: list[ConsultRecord] = field(default_factory=list)


def run_scenario(
    scenario: Scenario,
    *,
    algorithms=None,
    datasets=None,
) -> ScenarioReport:
    """Replay ``scenario`` and return its :class:`ScenarioReport`.

    ``algorithms``/``datasets`` default to the standard registries at
    the scenario's scale and seed; tests inject tiny custom registries.
    """
    wall_start = time.perf_counter()
    if algorithms is None:
        algorithms = default_algorithms(fast=True)
    if datasets is None:
        datasets = default_datasets(scale=scenario.scale, seed=scenario.seed)

    virtual = scenario.clock == CLOCK_VIRTUAL
    clock = VirtualClock() if virtual else None
    deadline = scenario.deadline_seconds
    metrics = MetricsRegistry()
    fault_plan = scenario.fault_plan()

    # -- train each distinct (algorithm, dataset) pair once ------------
    bundles = train_scenario_bundles(scenario, algorithms, datasets)

    # -- build streams, sessions, and arrival timelines ----------------
    streams: list[_Stream] = []
    misses = 0
    responses: list[float] = []
    last_completion = 0.0

    def make_observer(stream: _Stream):
        def observe(record: ConsultRecord) -> None:
            nonlocal misses, last_completion
            if virtual:
                if (
                    record.failure_kind == TIMEOUT
                    and deadline is not None
                    and record.elapsed_seconds < deadline
                ):
                    # A timed-out consultation occupies the server for
                    # the full deadline before being preempted; injected
                    # timeouts raise instantly, so charge the remainder.
                    clock.advance(deadline - record.elapsed_seconds)
                response = clock.now() - stream.pending_arrival
            else:
                response = record.elapsed_seconds
            missed = bool(
                record.deadline_missed
                or record.failure_kind == TIMEOUT
                or (deadline is not None and response > deadline + 1e-12)
            )
            misses += missed
            stream.responses.append(response)
            stream.records.append(record)
            responses.append(response)
            if virtual:
                last_completion = max(last_completion, clock.now())
            span = current_span()
            span.set_attribute("slo.response_seconds", response)
            span.set_attribute("slo.deadline_missed", missed)

        return observe

    # One corruptor per trained pair: additive noise is referenced to
    # that pair's train-time channel std, so scenario severities mean
    # the same thing as in the offline robustness grid. None when the
    # scenario declares no (or only severity-0) corruption.
    corruptors: dict[tuple[str, str], object] = {
        key: scenario.corruptor(
            noise_scale=float(
                np.mean([channel.std for channel in bundle.stats.channels])
            )
        )
        for key, bundle in bundles.items()
    }

    global_index = 0
    for spec in scenario.streams:
        bundle = bundles[(spec.algorithm, spec.dataset)]
        classifier, stats, fallback, test = (
            bundle.classifier,
            bundle.stats,
            bundle.fallback,
            bundle.test,
        )
        for i in range(spec.count):
            instance = i % test.n_instances
            name = f"{spec.dataset}[{instance}]@{spec.algorithm}"
            length = test.values.shape[2]
            arrivals = scenario.arrival.generate(
                length,
                seed=_derive_seed(scenario.seed, global_index, "arrival"),
                start=global_index * scenario.stagger_ms / 1000.0,
            )
            breaker = None
            if scenario.breaker is not None:
                breaker = CircuitBreaker(
                    failure_threshold=scenario.breaker.threshold,
                    recovery_seconds=scenario.breaker.recovery_ms / 1000.0,
                    probe_successes=scenario.breaker.probe_successes,
                    clock=clock.now if virtual else time.monotonic,
                )
            serving_classifier = classifier
            if virtual:
                serving_classifier = _SimulatedClassifier(
                    classifier,
                    clock,
                    scenario.service,
                    np.random.default_rng(
                        np.random.SeedSequence(
                            _derive_seed(scenario.seed, global_index, "service")
                        )
                    ),
                )
            stream = _Stream(
                name=name,
                session=None,  # filled below (observer needs the stream)
                breaker=breaker,
                values=test.values[instance],
                true_label=int(test.labels[instance]),
                arrivals=arrivals,
            )
            stream.session = GuardedStreamingSession(
                serving_classifier,
                length,
                check_every=scenario.check_every,
                guard=InputGuard(stats, policy=scenario.guard),
                fallback=fallback,
                deadline_seconds=deadline,
                breaker=breaker,
                fault_injector=fault_plan,
                corruptor=corruptors[(spec.algorithm, spec.dataset)],
                stream_name=name,
                algorithm_name=spec.algorithm,
                metrics=metrics,
                clock=clock.now if virtual else time.perf_counter,
                consult_observer=make_observer(stream),
                preemptive_deadline=not virtual,
            )
            streams.append(stream)
            global_index += 1

    # -- merge per-stream arrivals into one global timeline ------------
    events = sorted(
        (float(stream.arrivals[point]), index, point)
        for index, stream in enumerate(streams)
        for point in range(len(stream.arrivals))
    )
    first_arrival = events[0][0] if events else 0.0

    # -- replay through one simulated server ---------------------------
    for timestamp, stream_index, point in events:
        stream = streams[stream_index]
        if virtual:
            # The consultation starts when both the point has arrived
            # and the server is free; the clock never runs backwards.
            clock.advance_to(timestamp)
        stream.pending_arrival = timestamp
        stream.session.push(stream.values[:, point])

    decisions, true_labels = [], []
    for stream in streams:
        decision = stream.session.decision
        if decision is None and stream.session.n_observed:
            decision = stream.session.finalize()
        if decision is not None:
            decisions.append(decision)
            true_labels.append(stream.true_label)

    # -- aggregate ------------------------------------------------------
    wall_seconds = time.perf_counter() - wall_start
    makespan = (
        last_completion - first_arrival
        if virtual
        else wall_seconds
    )
    latency = iqr = None
    if responses:
        sample = np.asarray(responses, dtype=float)
        latency = LatencySummary.from_latencies(sample, budget_seconds=deadline)
        iqr = float(np.quantile(sample, 0.75) - np.quantile(sample, 0.25))
    counters = {
        name: value
        for name, value in metrics.snapshot().items()
        if isinstance(value, int)
    }
    recoveries = sum(
        1
        for stream in streams
        if stream.breaker is not None
        for _, to_state, _, _ in stream.breaker.transitions
        if to_state == "closed"
    )
    report = ScenarioReport(
        scenario=scenario,
        n_streams=len(streams),
        n_points=sum(len(stream.arrivals) for stream in streams),
        n_consults=len(responses),
        decisions=decisions,
        true_labels=true_labels,
        latency=latency,
        iqr_seconds=iqr or 0.0,
        makespan_seconds=max(makespan, 0.0),
        deadline_misses=misses,
        degraded_decisions=sum(1 for d in decisions if d.degraded),
        breaker_trips=counters.get("serve.breaker_trips", 0),
        breaker_recoveries=recoveries,
        counters=counters,
        environment=_environment(wall_seconds),
    )
    return report


def _environment(wall_seconds: float) -> dict:
    """Non-deterministic per-run facts, reported but never compared."""
    environment = {
        "wall_seconds": round(wall_seconds, 3),
        "python": sys.version.split()[0],
    }
    try:
        import resource

        environment["peak_rss_kb"] = int(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        )
    except (ImportError, OSError):  # pragma: no cover - non-Unix
        environment["peak_rss_kb"] = None
    return environment
