"""Scenario configs: the declarative input of the SLO harness.

A scenario file (YAML or JSON) describes one serve workload end to end —
which datasets and algorithms serve how many streams, how points arrive,
how long consultations take under the virtual clock, what the deadline
is, and which faults are injected. The harness turns that description
into a replay; adding a scenario to the committed trajectory is adding a
file, not code (``docs/slo.md`` documents the schema).

Parsing is strict: unknown keys are rejected with the full list of valid
keys, time quantities carry an explicit ``_ms`` suffix, and fault specs
are validated at load time via
:func:`~repro.serve.chaos.parse_fault_specs` — a malformed scenario
fails before anything is trained.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from ..exceptions import ConfigurationError
from ..robustness.stream import StreamCorruptor
from ..serve.chaos import parse_fault_specs
from ..serve.fallback import FALLBACK_NAMES
from ..serve.guard import GUARD_LENIENT, GUARD_POLICIES
from .arrival import ArrivalSpec

__all__ = [
    "CLOCK_MODES",
    "CLOCK_VIRTUAL",
    "CLOCK_WALL",
    "ServiceModel",
    "StreamSpec",
    "BreakerSpec",
    "CorruptionBlock",
    "Scenario",
    "parse_scenario",
    "load_scenario",
    "bundled_scenarios",
]

CLOCK_VIRTUAL = "virtual"
CLOCK_WALL = "wall"

#: Clock modes a scenario can replay under.
CLOCK_MODES = (CLOCK_VIRTUAL, CLOCK_WALL)

#: Directory holding the bundled scenario files.
SCENARIO_DIR = Path(__file__).resolve().parent / "scenarios"


@dataclass(frozen=True)
class ServiceModel:
    """Deterministic per-consultation service time (virtual clock only).

    ``base_ms + per_point_ms * n_observed`` plus a seeded exponential
    jitter with mean ``jitter_ms`` — linear-in-prefix cost is the shape
    of every 1-NN-style consult in this codebase, and the exponential
    tail is what gives p99.9 something to measure.
    """

    base_ms: float = 1.0
    per_point_ms: float = 0.0
    jitter_ms: float = 0.0

    def __post_init__(self) -> None:
        for name in ("base_ms", "per_point_ms", "jitter_ms"):
            if getattr(self, name) < 0:
                raise ConfigurationError(
                    f"service.{name} must be >= 0, got {getattr(self, name)}"
                )
        if self.base_ms == 0 and self.per_point_ms == 0:
            raise ConfigurationError(
                "service model needs base_ms > 0 or per_point_ms > 0 "
                "(zero-cost consultations make every SLO trivially pass)"
            )

    def sample(self, rng, n_observed: int) -> float:
        """One service duration in *seconds* for a ``n_observed`` prefix."""
        seconds = (self.base_ms + self.per_point_ms * n_observed) / 1000.0
        if self.jitter_ms > 0:
            seconds += float(rng.exponential(self.jitter_ms / 1000.0))
        return seconds


@dataclass(frozen=True)
class StreamSpec:
    """``count`` streams replaying held-out ``dataset`` instances
    through a trained ``algorithm``."""

    dataset: str
    algorithm: str
    count: int = 1

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigurationError(
                f"stream count must be >= 1, got {self.count}"
            )


@dataclass(frozen=True)
class BreakerSpec:
    """Circuit-breaker settings (virtual-clock cool-down)."""

    threshold: int = 3
    recovery_ms: float = 0.0
    probe_successes: int = 1


@dataclass(frozen=True)
class CorruptionBlock:
    """Push-time data corruption applied to every replayed stream.

    ``ops`` is a pipeline of ``op:severity[@where]`` specs (see
    ``docs/robustness.md``); ``seed`` defaults to the scenario seed so
    a scenario is still one self-contained deterministic description.
    Severity-0 pipelines are valid and are a bit-identical no-op — the
    degraded scenario's control case.
    """

    ops: tuple[str, ...]
    seed: int | None = None

    def __post_init__(self) -> None:
        if not self.ops:
            raise ConfigurationError(
                "corruption.ops must be a non-empty list of "
                "op:severity[@where] specs"
            )
        # Fail fast on malformed or stream-incompatible specs — the
        # constructor runs the full spec grammar + stream checks.
        StreamCorruptor(list(self.ops))

    def build(self, seed: int, noise_scale: float = 1.0) -> StreamCorruptor:
        """A fresh corruptor for one replay (corruptors record state).

        ``seed`` is the scenario seed, used when the block does not pin
        its own; ``noise_scale`` references additive noise to the
        bundle's train-time channel std.
        """
        return StreamCorruptor(
            list(self.ops),
            seed=self.seed if self.seed is not None else seed,
            noise_scale=noise_scale,
        )


@dataclass(frozen=True)
class Scenario:
    """One fully described serve workload."""

    name: str
    streams: tuple[StreamSpec, ...]
    description: str = ""
    seed: int = 0
    clock: str = CLOCK_VIRTUAL
    scale: float = 0.08
    deadline_ms: float | None = None
    check_every: int = 1
    guard: str = GUARD_LENIENT
    fallback: str | None = "majority"
    test_fraction: float = 0.3
    stagger_ms: float = 0.0
    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)
    service: ServiceModel = field(default_factory=ServiceModel)
    breaker: BreakerSpec | None = field(default_factory=BreakerSpec)
    faults: tuple[str, ...] = ()
    corruption: CorruptionBlock | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario needs a non-empty name")
        if not self.streams:
            raise ConfigurationError(
                f"scenario {self.name!r} declares no streams"
            )
        if self.clock not in CLOCK_MODES:
            raise ConfigurationError(
                f"unknown clock {self.clock!r}; expected one of "
                f"{', '.join(CLOCK_MODES)}"
            )
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ConfigurationError(
                f"deadline_ms must be positive or null, got {self.deadline_ms}"
            )
        if self.guard not in GUARD_POLICIES:
            raise ConfigurationError(
                f"unknown guard policy {self.guard!r}; expected one of "
                f"{', '.join(GUARD_POLICIES)}"
            )
        if self.fallback is not None and self.fallback not in FALLBACK_NAMES:
            raise ConfigurationError(
                f"unknown fallback {self.fallback!r}; expected one of "
                f"{', '.join(FALLBACK_NAMES)} or null"
            )
        if self.stagger_ms < 0:
            raise ConfigurationError(
                f"stagger_ms must be >= 0, got {self.stagger_ms}"
            )
        # Fail fast on malformed fault specs — before any training runs.
        parse_fault_specs(list(self.faults))

    # ------------------------------------------------------------------
    @property
    def deadline_seconds(self) -> float | None:
        return None if self.deadline_ms is None else self.deadline_ms / 1000.0

    @property
    def n_streams(self) -> int:
        return sum(spec.count for spec in self.streams)

    def fault_plan(self):
        """A fresh fault injector for one replay (plans record state)."""
        return parse_fault_specs(list(self.faults)) if self.faults else None

    def corruptor(self, noise_scale: float = 1.0) -> StreamCorruptor | None:
        """A fresh push-time corruptor, or ``None`` when the scenario
        declares no corruption or only severity-0 specs (the
        bit-identical control case)."""
        if self.corruption is None:
            return None
        corruptor = self.corruption.build(self.seed, noise_scale)
        return corruptor if corruptor.active else None


# ----------------------------------------------------------------------
# Strict mapping -> dataclass parsing.


def _require_mapping(value: Any, where: str) -> dict:
    if not isinstance(value, Mapping):
        raise ConfigurationError(
            f"{where} must be a mapping, got {type(value).__name__}"
        )
    return dict(value)


def _reject_unknown(leftover: Mapping, where: str, valid: tuple[str, ...]):
    if leftover:
        unknown = ", ".join(sorted(str(k) for k in leftover))
        raise ConfigurationError(
            f"unknown key(s) in {where}: {unknown}; valid keys are "
            f"{', '.join(valid)}"
        )


_ARRIVAL_KEYS = ("process", "period_ms", "burst_size", "idle_ms")
_SERVICE_KEYS = ("base_ms", "per_point_ms", "jitter_ms")
_STREAM_KEYS = ("dataset", "algorithm", "count")
_BREAKER_KEYS = ("threshold", "recovery_ms", "probe_successes")
_CORRUPTION_KEYS = ("ops", "seed")
_SCENARIO_KEYS = (
    "name",
    "description",
    "seed",
    "clock",
    "scale",
    "deadline_ms",
    "check_every",
    "guard",
    "fallback",
    "test_fraction",
    "stagger_ms",
    "arrival",
    "service",
    "streams",
    "breaker",
    "faults",
    "corruption",
)


def _parse_arrival(raw: Any, where: str) -> ArrivalSpec:
    mapping = _require_mapping(raw, where)
    spec = ArrivalSpec(
        process=str(mapping.pop("process", "uniform")),
        period_seconds=float(mapping.pop("period_ms", 1000.0)) / 1000.0,
        burst_size=int(mapping.pop("burst_size", 8)),
        idle_seconds=float(mapping.pop("idle_ms", 0.0)) / 1000.0,
    )
    _reject_unknown(mapping, where, _ARRIVAL_KEYS)
    return spec


def _parse_service(raw: Any, where: str) -> ServiceModel:
    mapping = _require_mapping(raw, where)
    model = ServiceModel(
        base_ms=float(mapping.pop("base_ms", 1.0)),
        per_point_ms=float(mapping.pop("per_point_ms", 0.0)),
        jitter_ms=float(mapping.pop("jitter_ms", 0.0)),
    )
    _reject_unknown(mapping, where, _SERVICE_KEYS)
    return model


def _parse_stream(raw: Any, where: str) -> StreamSpec:
    mapping = _require_mapping(raw, where)
    for key in ("dataset", "algorithm"):
        if key not in mapping:
            raise ConfigurationError(f"{where} is missing required {key!r}")
    spec = StreamSpec(
        dataset=str(mapping.pop("dataset")),
        algorithm=str(mapping.pop("algorithm")),
        count=int(mapping.pop("count", 1)),
    )
    _reject_unknown(mapping, where, _STREAM_KEYS)
    return spec


def _parse_corruption(raw: Any, where: str) -> CorruptionBlock | None:
    if raw is None:
        return None
    mapping = _require_mapping(raw, where)
    raw_ops = mapping.pop("ops", [])
    if not isinstance(raw_ops, (list, tuple)) or not raw_ops:
        raise ConfigurationError(
            f"{where}: ops must be a non-empty list of "
            "op:severity[@where] specs"
        )
    seed = mapping.pop("seed", None)
    block = CorruptionBlock(
        ops=tuple(str(spec) for spec in raw_ops),
        seed=None if seed is None else int(seed),
    )
    _reject_unknown(mapping, where, _CORRUPTION_KEYS)
    return block


def _parse_breaker(raw: Any, where: str) -> BreakerSpec | None:
    if raw is None:
        return None
    mapping = _require_mapping(raw, where)
    spec = BreakerSpec(
        threshold=int(mapping.pop("threshold", 3)),
        recovery_ms=float(mapping.pop("recovery_ms", 0.0)),
        probe_successes=int(mapping.pop("probe_successes", 1)),
    )
    _reject_unknown(mapping, where, _BREAKER_KEYS)
    return spec


def parse_scenario(raw: Any, source: str = "scenario") -> Scenario:
    """Build a :class:`Scenario` from a parsed mapping, strictly.

    ``source`` names the config in error messages (the file path when
    loaded from disk).
    """
    mapping = _require_mapping(raw, source)
    if "name" not in mapping:
        raise ConfigurationError(f"{source} is missing required 'name'")
    if "streams" not in mapping:
        raise ConfigurationError(f"{source} is missing required 'streams'")
    raw_streams = mapping.pop("streams")
    if not isinstance(raw_streams, (list, tuple)) or not raw_streams:
        raise ConfigurationError(
            f"{source}: streams must be a non-empty list of "
            "{dataset, algorithm, count} entries"
        )
    streams = tuple(
        _parse_stream(entry, f"{source}: streams[{i}]")
        for i, entry in enumerate(raw_streams)
    )
    raw_faults = mapping.pop("faults", [])
    if not isinstance(raw_faults, (list, tuple)):
        raise ConfigurationError(
            f"{source}: faults must be a list of stage:kind[:indices] specs"
        )
    deadline_ms = mapping.pop("deadline_ms", None)
    scenario = Scenario(
        name=str(mapping.pop("name")),
        description=str(mapping.pop("description", "")),
        seed=int(mapping.pop("seed", 0)),
        clock=str(mapping.pop("clock", CLOCK_VIRTUAL)),
        scale=float(mapping.pop("scale", 0.08)),
        deadline_ms=None if deadline_ms is None else float(deadline_ms),
        check_every=int(mapping.pop("check_every", 1)),
        guard=str(mapping.pop("guard", GUARD_LENIENT)),
        fallback=(
            None
            if (fallback := mapping.pop("fallback", "majority")) in (None, "none")
            else str(fallback)
        ),
        test_fraction=float(mapping.pop("test_fraction", 0.3)),
        stagger_ms=float(mapping.pop("stagger_ms", 0.0)),
        arrival=_parse_arrival(
            mapping.pop("arrival", {}), f"{source}: arrival"
        ),
        service=_parse_service(
            mapping.pop("service", {}), f"{source}: service"
        ),
        breaker=_parse_breaker(
            mapping.pop("breaker", {}), f"{source}: breaker"
        ),
        streams=streams,
        faults=tuple(str(spec) for spec in raw_faults),
        corruption=_parse_corruption(
            mapping.pop("corruption", None), f"{source}: corruption"
        ),
    )
    _reject_unknown(mapping, source, _SCENARIO_KEYS)
    return scenario


# ----------------------------------------------------------------------
# File loading (JSON natively; YAML when PyYAML is installed).


def load_scenario(path: str | Path) -> Scenario:
    """Load and strictly parse one scenario file (``.json``/``.yaml``)."""
    path = Path(path)
    if not path.is_file():
        known = ", ".join(sorted(bundled_scenarios())) or "(none)"
        raise ConfigurationError(
            f"scenario file not found: {path} (bundled scenarios: {known})"
        )
    text = path.read_text(encoding="utf-8")
    if path.suffix.lower() in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError:
            raise ConfigurationError(
                f"{path} is YAML but PyYAML is not installed; install "
                "pyyaml or convert the scenario to JSON"
            ) from None
        try:
            raw = yaml.safe_load(text)
        except yaml.YAMLError as error:
            raise ConfigurationError(
                f"{path} is not valid YAML: {error}"
            ) from error
    else:
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"{path} is not valid JSON: {error}"
            ) from error
    return parse_scenario(raw, source=str(path))


def bundled_scenarios() -> dict[str, Path]:
    """Name -> path of the scenario files shipped with the package."""
    if not SCENARIO_DIR.is_dir():  # pragma: no cover - packaging error
        return {}
    return {
        candidate.stem: candidate
        for candidate in sorted(SCENARIO_DIR.iterdir())
        if candidate.suffix.lower() in (".json", ".yaml", ".yml")
    }


def resolve_scenario(name_or_path: str | Path) -> Scenario:
    """Load a scenario by bundled name or by file path."""
    bundled = bundled_scenarios()
    key = str(name_or_path)
    if key in bundled:
        return load_scenario(bundled[key])
    return load_scenario(name_or_path)
