"""The MLSTM-FCN network assembly and its training loop.

MLSTM-FCN (Karim et al., 2019) runs two branches over the same multivariate
series and concatenates them before a dense softmax head:

* the *FCN* branch — three Conv1D/BatchNorm/ReLU blocks, the first two
  followed by squeeze-and-excite, closed by global average pooling;
* the *LSTM* branch — the series transposed to ``(batch, time, variables)``
  through an LSTM, keeping the final hidden state, then dropout.

The reference model uses an attention-augmented LSTM and 128/256/128
filters; this implementation uses a plain LSTM and smaller defaults so that
training in pure numpy stays tractable (documented in DESIGN.md). The class
here is the raw network; the :class:`~repro.tsc.mlstm_fcn.MLSTMFCN`
classifier wraps it in the :class:`~repro.core.base.FullTSClassifier`
interface.
"""

from __future__ import annotations

import numpy as np

from ..data.preprocessing import LabelEncoder
from ..exceptions import DataError, NotFittedError
from .layers import (
    BatchNorm1D,
    Conv1D,
    Dense,
    Dropout,
    GlobalAveragePooling1D,
    Layer,
    ReLU,
    SqueezeExcite,
)
from .losses import softmax_cross_entropy
from .lstm import LSTM

__all__ = ["MLSTMFCNNetwork"]


class MLSTMFCNNetwork:
    """Trainable MLSTM-FCN graph over ``(batch, variables, length)`` input.

    Parameters
    ----------
    n_variables, n_classes:
        Input and output dimensions.
    filters:
        Channel counts of the three convolution blocks.
    kernel_sizes:
        Kernel widths of the three convolution blocks (paper: 8, 5, 3).
    lstm_units:
        Hidden size of the recurrent branch (paper grid: 8, 64, 128).
    dropout:
        Dropout rate after the LSTM.
    seed:
        Initialisation and shuffling seed.
    """

    def __init__(
        self,
        n_variables: int,
        n_classes: int,
        filters: tuple[int, int, int] = (16, 32, 16),
        kernel_sizes: tuple[int, int, int] = (8, 5, 3),
        lstm_units: int = 8,
        dropout: float = 0.2,
        seed: int = 0,
    ) -> None:
        if n_classes < 2:
            raise DataError(f"n_classes must be >= 2, got {n_classes}")
        self.n_variables = n_variables
        self.n_classes = n_classes
        f1, f2, f3 = filters
        k1, k2, k3 = kernel_sizes
        self.conv1 = Conv1D(n_variables, f1, k1, seed=seed)
        self.bn1 = BatchNorm1D(f1)
        self.relu1 = ReLU()
        self.se1 = SqueezeExcite(f1, seed=seed + 1)
        self.conv2 = Conv1D(f1, f2, k2, seed=seed + 2)
        self.bn2 = BatchNorm1D(f2)
        self.relu2 = ReLU()
        self.se2 = SqueezeExcite(f2, seed=seed + 3)
        self.conv3 = Conv1D(f2, f3, k3, seed=seed + 4)
        self.bn3 = BatchNorm1D(f3)
        self.relu3 = ReLU()
        self.pool = GlobalAveragePooling1D()
        self.lstm = LSTM(n_variables, lstm_units, seed=seed + 5)
        self.lstm_dropout = Dropout(dropout, seed=seed + 6)
        self.head = Dense(f3 + lstm_units, n_classes, seed=seed + 7)
        self._fcn_layers: list[Layer] = [
            self.conv1,
            self.bn1,
            self.relu1,
            self.se1,
            self.conv2,
            self.bn2,
            self.relu2,
            self.se2,
            self.conv3,
            self.bn3,
            self.relu3,
            self.pool,
        ]
        self._fcn_width = f3
        self._seed = seed

    def layers(self) -> list[Layer]:
        """All layers with trainable parameters, in forward order."""
        return self._fcn_layers + [self.lstm, self.lstm_dropout, self.head]

    # ------------------------------------------------------------------
    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Logits of shape ``(batch, n_classes)``."""
        if inputs.ndim != 3 or inputs.shape[1] != self.n_variables:
            raise DataError(
                f"expected (batch, {self.n_variables}, length), "
                f"got {inputs.shape}"
            )
        fcn = inputs
        for layer in self._fcn_layers:
            fcn = layer.forward(fcn, training)
        recurrent = self.lstm.forward(
            np.transpose(inputs, (0, 2, 1)), training
        )
        recurrent = self.lstm_dropout.forward(recurrent, training)
        combined = np.concatenate([fcn, recurrent], axis=1)
        return self.head.forward(combined, training)

    def backward(self, logit_gradient: np.ndarray) -> None:
        """Backpropagate through both branches (gradients land in layers)."""
        combined_gradient = self.head.backward(logit_gradient)
        fcn_gradient = combined_gradient[:, : self._fcn_width]
        recurrent_gradient = combined_gradient[:, self._fcn_width :]
        recurrent_gradient = self.lstm_dropout.backward(recurrent_gradient)
        self.lstm.backward(recurrent_gradient)
        gradient = fcn_gradient
        for layer in reversed(self._fcn_layers):
            gradient = layer.backward(gradient)

    # ------------------------------------------------------------------
    def train_epochs(
        self,
        inputs: np.ndarray,
        one_hot: np.ndarray,
        optimizer,
        n_epochs: int,
        batch_size: int,
    ) -> list[float]:
        """Mini-batch training; returns the mean loss per epoch."""
        rng = np.random.default_rng(self._seed)
        n = inputs.shape[0]
        losses = []
        layers = self.layers()
        for _ in range(n_epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            n_batches = 0
            for start in range(0, n, batch_size):
                batch = order[start : start + batch_size]
                if len(batch) < 2:
                    continue  # BatchNorm needs more than one sample
                logits = self.forward(inputs[batch], training=True)
                loss, gradient = softmax_cross_entropy(logits, one_hot[batch])
                self.backward(gradient)
                optimizer.step(layers)
                epoch_loss += loss
                n_batches += 1
            losses.append(epoch_loss / max(n_batches, 1))
        return losses
