"""Losses for the neural-network substrate."""

from __future__ import annotations

import numpy as np

from ..exceptions import DataError
from ..stats.linear import softmax

__all__ = ["softmax_cross_entropy"]


def softmax_cross_entropy(
    logits: np.ndarray, one_hot: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy of softmax(logits) against one-hot targets.

    Returns ``(loss, gradient)`` where the gradient is w.r.t. the logits —
    the fused form ``(softmax - one_hot) / batch`` that avoids the unstable
    intermediate Jacobian.
    """
    logits = np.asarray(logits, dtype=float)
    one_hot = np.asarray(one_hot, dtype=float)
    if logits.shape != one_hot.shape:
        raise DataError(
            f"logits {logits.shape} and targets {one_hot.shape} differ"
        )
    batch = logits.shape[0]
    probabilities = softmax(logits)
    log_probabilities = np.log(np.clip(probabilities, 1e-12, None))
    loss = float(-np.sum(one_hot * log_probabilities) / batch)
    gradient = (probabilities - one_hot) / batch
    return loss, gradient
