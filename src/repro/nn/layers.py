"""Minimal neural-network layers with manual backpropagation.

Just enough of a framework to express MLSTM-FCN (Karim et al., 2019): 1-D
convolutions, batch normalisation, ReLU, dropout, squeeze-and-excite blocks,
global average pooling, and dense heads. Every layer implements

* ``forward(inputs, training)`` — returns outputs and caches what backward
  needs;
* ``backward(gradient)`` — returns the gradient w.r.t. the inputs and fills
  ``self.gradients``;
* ``parameters()`` — ``{name: array}`` of trainable tensors, mirrored by
  ``self.gradients`` after a backward pass.

Convolutional tensors are channels-first: ``(batch, channels, length)``.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DataError

__all__ = [
    "Layer",
    "Dense",
    "Conv1D",
    "BatchNorm1D",
    "ReLU",
    "Dropout",
    "GlobalAveragePooling1D",
    "SqueezeExcite",
]


class Layer:
    """Base class: parameter bookkeeping plus the forward/backward contract."""

    def __init__(self) -> None:
        self.weights: dict[str, np.ndarray] = {}
        self.gradients: dict[str, np.ndarray] = {}

    def parameters(self) -> dict[str, np.ndarray]:
        """Trainable tensors by name."""
        return self.weights

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute outputs (and cache for backward when training)."""
        raise NotImplementedError

    def backward(self, gradient: np.ndarray) -> np.ndarray:
        """Backpropagate; returns gradient w.r.t. the forward inputs."""
        raise NotImplementedError


def _glorot(rng: np.random.Generator, shape: tuple[int, ...], fan_in: int, fan_out: int) -> np.ndarray:
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


class Dense(Layer):
    """Affine layer ``y = x @ W + b`` on 2-D inputs."""

    def __init__(self, n_inputs: int, n_outputs: int, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.weights = {
            "W": _glorot(rng, (n_inputs, n_outputs), n_inputs, n_outputs),
            "b": np.zeros(n_outputs),
        }
        self._inputs: np.ndarray | None = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        self._inputs = inputs if training else None
        return inputs @ self.weights["W"] + self.weights["b"]

    def backward(self, gradient: np.ndarray) -> np.ndarray:
        assert self._inputs is not None, "backward before training forward"
        self.gradients = {
            "W": self._inputs.T @ gradient,
            "b": gradient.sum(axis=0),
        }
        return gradient @ self.weights["W"].T


class Conv1D(Layer):
    """Same-padded 1-D convolution on ``(batch, channels, length)`` tensors.

    Implemented by im2col: the padded input unfolds into a
    ``(batch, in_channels * kernel, length)`` tensor so both passes are
    matrix products.
    """

    def __init__(
        self, in_channels: int, out_channels: int, kernel_size: int, seed: int = 0
    ) -> None:
        super().__init__()
        if kernel_size < 1:
            raise DataError(f"kernel_size must be >= 1, got {kernel_size}")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        rng = np.random.default_rng(seed)
        fan_in = in_channels * kernel_size
        self.weights = {
            "W": _glorot(
                rng,
                (out_channels, in_channels, kernel_size),
                fan_in,
                out_channels,
            ),
            "b": np.zeros(out_channels),
        }
        self._columns: np.ndarray | None = None
        self._input_shape: tuple[int, ...] | None = None

    def _im2col(self, inputs: np.ndarray) -> np.ndarray:
        batch, channels, length = inputs.shape
        pad_left = (self.kernel_size - 1) // 2
        pad_right = self.kernel_size - 1 - pad_left
        padded = np.pad(inputs, ((0, 0), (0, 0), (pad_left, pad_right)))
        columns = np.empty((batch, channels, self.kernel_size, length))
        for offset in range(self.kernel_size):
            columns[:, :, offset, :] = padded[:, :, offset : offset + length]
        return columns.reshape(batch, channels * self.kernel_size, length)

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        if inputs.ndim != 3 or inputs.shape[1] != self.in_channels:
            raise DataError(
                f"Conv1D expected (batch, {self.in_channels}, length), "
                f"got {inputs.shape}"
            )
        columns = self._im2col(inputs)
        if training:
            self._columns = columns
            self._input_shape = inputs.shape
        kernel = self.weights["W"].reshape(self.out_channels, -1)
        return np.einsum("of,bfl->bol", kernel, columns) + self.weights["b"][
            None, :, None
        ]

    def backward(self, gradient: np.ndarray) -> np.ndarray:
        assert self._columns is not None and self._input_shape is not None
        kernel = self.weights["W"].reshape(self.out_channels, -1)
        weight_gradient = np.einsum("bol,bfl->of", gradient, self._columns)
        self.gradients = {
            "W": weight_gradient.reshape(self.weights["W"].shape),
            "b": gradient.sum(axis=(0, 2)),
        }
        column_gradient = np.einsum("of,bol->bfl", kernel, gradient)
        # col2im: scatter-add the unfolded gradients back to input positions.
        batch, channels, length = self._input_shape
        pad_left = (self.kernel_size - 1) // 2
        pad_right = self.kernel_size - 1 - pad_left
        padded = np.zeros((batch, channels, length + pad_left + pad_right))
        column_gradient = column_gradient.reshape(
            batch, channels, self.kernel_size, length
        )
        for offset in range(self.kernel_size):
            padded[:, :, offset : offset + length] += column_gradient[
                :, :, offset, :
            ]
        return padded[:, :, pad_left : pad_left + length]


class BatchNorm1D(Layer):
    """Per-channel batch normalisation for ``(batch, channels, length)``.

    Keeps exponential running statistics for inference mode.
    """

    def __init__(self, channels: int, momentum: float = 0.9, epsilon: float = 1e-5) -> None:
        super().__init__()
        self.momentum = momentum
        self.epsilon = epsilon
        self.weights = {"gamma": np.ones(channels), "beta": np.zeros(channels)}
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)
        self._cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            mean = inputs.mean(axis=(0, 2))
            var = inputs.var(axis=(0, 2))
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            )
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            )
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.epsilon)
        normalised = (inputs - mean[None, :, None]) * inv_std[None, :, None]
        if training:
            self._cache = (normalised, inv_std, inputs)
        return (
            self.weights["gamma"][None, :, None] * normalised
            + self.weights["beta"][None, :, None]
        )

    def backward(self, gradient: np.ndarray) -> np.ndarray:
        assert self._cache is not None
        normalised, inv_std, inputs = self._cache
        n = inputs.shape[0] * inputs.shape[2]
        self.gradients = {
            "gamma": (gradient * normalised).sum(axis=(0, 2)),
            "beta": gradient.sum(axis=(0, 2)),
        }
        gamma = self.weights["gamma"][None, :, None]
        grad_normalised = gradient * gamma
        sum_grad = grad_normalised.sum(axis=(0, 2), keepdims=True)
        sum_grad_norm = (grad_normalised * normalised).sum(
            axis=(0, 2), keepdims=True
        )
        return (
            inv_std[None, :, None]
            / n
            * (n * grad_normalised - sum_grad - normalised * sum_grad_norm)
        )


class ReLU(Layer):
    """Elementwise rectifier."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        mask = inputs > 0
        if training:
            self._mask = mask
        return inputs * mask

    def backward(self, gradient: np.ndarray) -> np.ndarray:
        assert self._mask is not None
        return gradient * self._mask


class Dropout(Layer):
    """Inverted dropout (identity at inference)."""

    def __init__(self, rate: float, seed: int = 0) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise DataError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = np.random.default_rng(seed)
        self._mask: np.ndarray | None = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return inputs
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(inputs.shape) < keep) / keep
        return inputs * self._mask

    def backward(self, gradient: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return gradient
        return gradient * self._mask


class GlobalAveragePooling1D(Layer):
    """Mean over the time axis: ``(B, C, L) -> (B, C)``."""

    def __init__(self) -> None:
        super().__init__()
        self._length: int | None = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        self._length = inputs.shape[2]
        return inputs.mean(axis=2)

    def backward(self, gradient: np.ndarray) -> np.ndarray:
        assert self._length is not None
        return np.repeat(
            gradient[:, :, None] / self._length, self._length, axis=2
        )


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return np.where(x >= 0, 1.0 / (1.0 + np.exp(-x)), np.exp(x) / (1.0 + np.exp(x)))


class SqueezeExcite(Layer):
    """Squeeze-and-Excite channel recalibration (Hu et al., 2018).

    ``(B, C, L)`` -> global average over L -> Dense(C -> C/r) -> ReLU ->
    Dense(C/r -> C) -> sigmoid -> channel-wise rescale of the input.
    """

    def __init__(self, channels: int, reduction: int = 4, seed: int = 0) -> None:
        super().__init__()
        hidden = max(1, channels // reduction)
        rng = np.random.default_rng(seed)
        self.weights = {
            "W1": _glorot(rng, (channels, hidden), channels, hidden),
            "b1": np.zeros(hidden),
            "W2": _glorot(rng, (hidden, channels), hidden, channels),
            "b2": np.zeros(channels),
        }
        self._cache: tuple | None = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        squeezed = inputs.mean(axis=2)  # (B, C)
        hidden_pre = squeezed @ self.weights["W1"] + self.weights["b1"]
        hidden = np.maximum(hidden_pre, 0.0)
        excite = _sigmoid(hidden @ self.weights["W2"] + self.weights["b2"])
        if training:
            self._cache = (inputs, squeezed, hidden_pre, hidden, excite)
        return inputs * excite[:, :, None]

    def backward(self, gradient: np.ndarray) -> np.ndarray:
        assert self._cache is not None
        inputs, squeezed, hidden_pre, hidden, excite = self._cache
        length = inputs.shape[2]
        input_gradient = gradient * excite[:, :, None]
        excite_gradient = (gradient * inputs).sum(axis=2)  # (B, C)
        pre_sigmoid = excite_gradient * excite * (1.0 - excite)
        self.gradients = {
            "W2": hidden.T @ pre_sigmoid,
            "b2": pre_sigmoid.sum(axis=0),
        }
        hidden_gradient = (pre_sigmoid @ self.weights["W2"].T) * (
            hidden_pre > 0
        )
        self.gradients["W1"] = squeezed.T @ hidden_gradient
        self.gradients["b1"] = hidden_gradient.sum(axis=0)
        squeeze_gradient = hidden_gradient @ self.weights["W1"].T  # (B, C)
        input_gradient += squeeze_gradient[:, :, None] / length
        return input_gradient
