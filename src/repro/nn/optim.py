"""Optimisers for the neural-network substrate."""

from __future__ import annotations

import numpy as np

from ..exceptions import DataError
from .layers import Layer

__all__ = ["Adam", "SGD"]


class SGD:
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0) -> None:
        if learning_rate <= 0:
            raise DataError(f"learning_rate must be positive, got {learning_rate}")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity: dict[tuple[int, str], np.ndarray] = {}

    def step(self, layers: list[Layer]) -> None:
        """Apply one update to every layer's parameters from its gradients."""
        for layer in layers:
            for name, value in layer.parameters().items():
                gradient = layer.gradients.get(name)
                if gradient is None:
                    continue
                key = (id(layer), name)
                velocity = self._velocity.get(key, np.zeros_like(value))
                velocity = self.momentum * velocity - self.learning_rate * gradient
                self._velocity[key] = velocity
                value += velocity


class Adam:
    """Adam optimiser (Kingma & Ba, 2015) over layer parameter dicts."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        if learning_rate <= 0:
            raise DataError(f"learning_rate must be positive, got {learning_rate}")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._first: dict[tuple[int, str], np.ndarray] = {}
        self._second: dict[tuple[int, str], np.ndarray] = {}
        self._step_count = 0

    def step(self, layers: list[Layer]) -> None:
        """Apply one Adam update to every layer's parameters."""
        self._step_count += 1
        correction1 = 1.0 - self.beta1**self._step_count
        correction2 = 1.0 - self.beta2**self._step_count
        for layer in layers:
            for name, value in layer.parameters().items():
                gradient = layer.gradients.get(name)
                if gradient is None:
                    continue
                key = (id(layer), name)
                first = self._first.get(key, np.zeros_like(value))
                second = self._second.get(key, np.zeros_like(value))
                first = self.beta1 * first + (1.0 - self.beta1) * gradient
                second = self.beta2 * second + (1.0 - self.beta2) * gradient**2
                self._first[key] = first
                self._second[key] = second
                update = (first / correction1) / (
                    np.sqrt(second / correction2) + self.epsilon
                )
                value -= self.learning_rate * update
