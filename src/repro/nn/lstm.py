"""An LSTM layer with full backpropagation through time.

MLSTM-FCN's recurrent branch consumes the series as ``(batch, time,
features)`` and passes the final hidden state onwards. This implementation
backpropagates from that final state through every timestep (no truncation),
with the usual fused gate parameterisation: a single ``(D + H, 4H)`` weight
matrix producing input/forget/cell/output pre-activations.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DataError
from .layers import Layer, _sigmoid

__all__ = ["LSTM"]


class LSTM(Layer):
    """Single-layer LSTM returning the last hidden state.

    Parameters
    ----------
    n_inputs:
        Feature dimension ``D`` of each timestep.
    n_units:
        Hidden dimension ``H``.
    seed:
        Weight-initialisation seed.
    """

    def __init__(self, n_inputs: int, n_units: int, seed: int = 0) -> None:
        super().__init__()
        if n_units < 1:
            raise DataError(f"n_units must be >= 1, got {n_units}")
        self.n_inputs = n_inputs
        self.n_units = n_units
        rng = np.random.default_rng(seed)
        scale = 1.0 / np.sqrt(n_inputs + n_units)
        bias = np.zeros(4 * n_units)
        # Standard trick: forget-gate bias starts at 1 so gradients flow
        # early in training.
        bias[n_units : 2 * n_units] = 1.0
        self.weights = {
            "W": rng.uniform(
                -scale, scale, size=(n_inputs + n_units, 4 * n_units)
            ),
            "b": bias,
        }
        self._cache: dict | None = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the recurrence; returns the final hidden state ``(B, H)``."""
        if inputs.ndim != 3 or inputs.shape[2] != self.n_inputs:
            raise DataError(
                f"LSTM expected (batch, time, {self.n_inputs}), "
                f"got {inputs.shape}"
            )
        batch, n_steps, _ = inputs.shape
        hidden = np.zeros((batch, self.n_units))
        cell = np.zeros((batch, self.n_units))
        steps: list[dict] = []
        h = self.n_units
        for t in range(n_steps):
            combined = np.concatenate([inputs[:, t, :], hidden], axis=1)
            gates = combined @ self.weights["W"] + self.weights["b"]
            input_gate = _sigmoid(gates[:, :h])
            forget_gate = _sigmoid(gates[:, h : 2 * h])
            candidate = np.tanh(gates[:, 2 * h : 3 * h])
            output_gate = _sigmoid(gates[:, 3 * h :])
            previous_cell = cell
            cell = forget_gate * cell + input_gate * candidate
            tanh_cell = np.tanh(cell)
            hidden = output_gate * tanh_cell
            if training:
                steps.append(
                    {
                        "combined": combined,
                        "i": input_gate,
                        "f": forget_gate,
                        "g": candidate,
                        "o": output_gate,
                        "c_prev": previous_cell,
                        "tanh_c": tanh_cell,
                    }
                )
        self._cache = {"steps": steps, "shape": inputs.shape} if training else None
        return hidden

    def backward(self, gradient: np.ndarray) -> np.ndarray:
        """BPTT from the final-hidden-state gradient ``(B, H)``.

        Returns the gradient w.r.t. the input sequence ``(B, T, D)``.
        """
        assert self._cache is not None, "backward before training forward"
        steps = self._cache["steps"]
        batch, n_steps, n_inputs = self._cache["shape"]
        h = self.n_units
        weight_gradient = np.zeros_like(self.weights["W"])
        bias_gradient = np.zeros_like(self.weights["b"])
        input_gradient = np.zeros((batch, n_steps, n_inputs))
        hidden_gradient = gradient
        cell_gradient = np.zeros((batch, h))
        for t in range(n_steps - 1, -1, -1):
            step = steps[t]
            cell_gradient = cell_gradient + hidden_gradient * step["o"] * (
                1.0 - step["tanh_c"] ** 2
            )
            gate_gradients = np.concatenate(
                [
                    cell_gradient * step["g"] * step["i"] * (1.0 - step["i"]),
                    cell_gradient
                    * step["c_prev"]
                    * step["f"]
                    * (1.0 - step["f"]),
                    cell_gradient * step["i"] * (1.0 - step["g"] ** 2),
                    hidden_gradient
                    * step["tanh_c"]
                    * step["o"]
                    * (1.0 - step["o"]),
                ],
                axis=1,
            )
            weight_gradient += step["combined"].T @ gate_gradients
            bias_gradient += gate_gradients.sum(axis=0)
            combined_gradient = gate_gradients @ self.weights["W"].T
            input_gradient[:, t, :] = combined_gradient[:, :n_inputs]
            hidden_gradient = combined_gradient[:, n_inputs:]
            cell_gradient = cell_gradient * step["f"]
        self.gradients = {"W": weight_gradient, "b": bias_gradient}
        return input_gradient
