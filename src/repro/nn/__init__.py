"""Minimal neural-network framework (layers, LSTM, losses, optimisers)."""

from .layers import (
    BatchNorm1D,
    Conv1D,
    Dense,
    Dropout,
    GlobalAveragePooling1D,
    Layer,
    ReLU,
    SqueezeExcite,
)
from .losses import softmax_cross_entropy
from .lstm import LSTM
from .network import MLSTMFCNNetwork
from .optim import SGD, Adam

__all__ = [
    "Layer",
    "Dense",
    "Conv1D",
    "BatchNorm1D",
    "ReLU",
    "Dropout",
    "GlobalAveragePooling1D",
    "SqueezeExcite",
    "LSTM",
    "MLSTMFCNNetwork",
    "softmax_cross_entropy",
    "Adam",
    "SGD",
]
