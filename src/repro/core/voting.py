"""Per-variable voting for univariate algorithms on multivariate data.

Section 6.1 of the paper: *"each univariate classifier is trained and tested
separately for each variable of the input time-series. Upon collecting the
output predictions (one per variable), the most popular one among the voters
is chosen, nevertheless assigned with the worst earliness among them. In the
case of equal votes, we select the first class label."* That is the
``"majority"`` scheme and the default.

The paper's future work proposes analysing alternative voting schemes; two
are provided:

* ``"confidence"`` — votes are weighted by each member's reported
  confidence (members without one count as 0.5); earliness is still the
  worst among the voters.
* ``"earliest"`` — the decision of the earliest-committing voter wins
  (ties by confidence), and the ensemble inherits *that* voter's earliness,
  trading robustness for speed.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..data.dataset import TimeSeriesDataset
from ..exceptions import ConfigurationError
from .base import EarlyClassifier
from .prediction import EarlyPrediction

__all__ = ["VotingEnsemble", "wrap_for_dataset"]


_SCHEMES = ("majority", "confidence", "earliest")


class VotingEnsemble(EarlyClassifier):
    """Train one univariate early classifier per variable; vote per instance.

    Parameters
    ----------
    member_factory:
        Zero-argument callable producing an unfitted univariate
        :class:`~repro.core.base.EarlyClassifier` for each variable.
    scheme:
        ``"majority"`` (the paper's Section 6.1 rule, default),
        ``"confidence"``, or ``"earliest"`` — see the module docstring.
    """

    supports_multivariate = True

    def __init__(
        self,
        member_factory: Callable[[], EarlyClassifier],
        scheme: str = "majority",
    ) -> None:
        super().__init__()
        if scheme not in _SCHEMES:
            raise ConfigurationError(
                f"scheme must be one of {_SCHEMES}, got {scheme!r}"
            )
        self.member_factory = member_factory
        self.scheme = scheme
        self.members_: list[EarlyClassifier] | None = None

    def _train(self, dataset: TimeSeriesDataset) -> None:
        members = []
        for variable in range(dataset.n_variables):
            member = self.member_factory()
            if member.supports_multivariate is True and not hasattr(
                member, "_train"
            ):
                raise ConfigurationError(
                    "member_factory must produce EarlyClassifier instances"
                )
            member.train(dataset.variable(variable))
            members.append(member)
        self.members_ = members

    @staticmethod
    def _majority_vote(votes: list[EarlyPrediction]) -> EarlyPrediction:
        """Majority label; ties break to the first (lowest) label; the
        ensemble pays the worst earliness among its voters (Section 6.1)."""
        labels = np.asarray([vote.label for vote in votes])
        values, counts = np.unique(labels, return_counts=True)
        winner = int(values[counts.argmax()])
        worst_prefix = max(vote.prefix_length for vote in votes)
        return EarlyPrediction(
            label=winner,
            prefix_length=worst_prefix,
            series_length=votes[0].series_length,
        )

    @staticmethod
    def _confidence_vote(votes: list[EarlyPrediction]) -> EarlyPrediction:
        """Confidence-weighted label; worst earliness among the voters."""
        weights: dict[int, float] = {}
        for vote in votes:
            confidence = 0.5 if vote.confidence is None else vote.confidence
            weights[vote.label] = weights.get(vote.label, 0.0) + confidence
        best = max(weights.items(), key=lambda item: (item[1], -item[0]))
        worst_prefix = max(vote.prefix_length for vote in votes)
        return EarlyPrediction(
            label=int(best[0]),
            prefix_length=worst_prefix,
            series_length=votes[0].series_length,
        )

    @staticmethod
    def _earliest_vote(votes: list[EarlyPrediction]) -> EarlyPrediction:
        """The earliest voter's decision, with that voter's earliness."""
        chosen = min(
            votes,
            key=lambda vote: (
                vote.prefix_length,
                -(vote.confidence if vote.confidence is not None else 0.5),
                vote.label,
            ),
        )
        return EarlyPrediction(
            label=chosen.label,
            prefix_length=chosen.prefix_length,
            series_length=chosen.series_length,
            confidence=chosen.confidence,
        )

    def _vote(self, votes: list[EarlyPrediction]) -> EarlyPrediction:
        if self.scheme == "confidence":
            return self._confidence_vote(votes)
        if self.scheme == "earliest":
            return self._earliest_vote(votes)
        return self._majority_vote(votes)

    def _predict(self, dataset: TimeSeriesDataset) -> list[EarlyPrediction]:
        assert self.members_ is not None
        per_variable = [
            member.predict(dataset.variable(variable))
            for variable, member in enumerate(self.members_)
        ]
        return [
            self._vote([column[i] for column in per_variable])
            for i in range(dataset.n_instances)
        ]


def wrap_for_dataset(
    factory: Callable[[], EarlyClassifier], dataset: TimeSeriesDataset
) -> EarlyClassifier:
    """Build a classifier suited to ``dataset``'s variable count.

    Univariate datasets get a bare instance; multivariate datasets get the
    instance itself when it supports multivariate input, or a
    :class:`VotingEnsemble` over per-variable copies otherwise — exactly the
    dispatch rule of the paper's evaluation harness.
    """
    instance = factory()
    if dataset.is_univariate or instance.supports_multivariate:
        return instance
    return VotingEnsemble(factory)
