"""Hyperparameter tuning for ETSC algorithms (the paper's future work).

Section 7 plans to "incorporate hyper parameter tuning techniques as in
[MultiETSC]" — i.e. to select ETSC configurations automatically by their
accuracy/earliness trade-off. :class:`GridSearchETSC` provides that:
exhaustive search over a parameter grid, scoring each configuration by
cross-validated harmonic mean (or accuracy/F1/earliness), then refitting
the best configuration on the full training data.

Example
-------
>>> from repro.etsc import TEASER
>>> search = GridSearchETSC(
...     lambda **kw: TEASER(**kw),
...     {"n_prefixes": [5, 10], "nu": [0.05, 0.1]},
... )
>>> search.fit(dataset)                            # doctest: +SKIP
>>> search.best_params_, search.best_score_        # doctest: +SKIP
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..data.dataset import TimeSeriesDataset
from ..exceptions import ConfigurationError, NotFittedError, ReproError
from .base import EarlyClassifier
from .evaluation import evaluate
from .prediction import EarlyPrediction
from .voting import wrap_for_dataset

__all__ = ["GridSearchETSC", "parameter_grid"]

_METRICS = {
    "harmonic_mean": True,  # metric name -> higher is better
    "accuracy": True,
    "f1": True,
    "earliness": False,
}


def parameter_grid(
    grid: Mapping[str, Sequence[Any]]
) -> list[dict[str, Any]]:
    """Expand ``{name: candidates}`` into the list of all combinations."""
    if not grid:
        return [{}]
    names = list(grid)
    for name in names:
        if not isinstance(grid[name], (list, tuple)):
            raise ConfigurationError(
                f"grid entry {name!r} must be a list or tuple of candidates"
            )
        if len(grid[name]) == 0:
            raise ConfigurationError(f"grid entry {name!r} is empty")
    return [
        dict(zip(names, combination))
        for combination in itertools.product(*(grid[name] for name in names))
    ]


class GridSearchETSC:
    """Exhaustive configuration search for an early classifier.

    Parameters
    ----------
    factory:
        Callable accepting the grid's keyword arguments and returning an
        unfitted :class:`~repro.core.base.EarlyClassifier`.
    grid:
        Mapping of parameter name to candidate values.
    metric:
        Selection metric: ``"harmonic_mean"`` (default, the MultiETSC
        objective), ``"accuracy"``, ``"f1"``, or ``"earliness"``.
    n_folds:
        Cross-validation folds per configuration.
    seed:
        Fold seed.
    """

    def __init__(
        self,
        factory: Callable[..., EarlyClassifier],
        grid: Mapping[str, Sequence[Any]],
        metric: str = "harmonic_mean",
        n_folds: int = 3,
        seed: int = 0,
    ) -> None:
        if metric not in _METRICS:
            raise ConfigurationError(
                f"metric must be one of {sorted(_METRICS)}, got {metric!r}"
            )
        self.factory = factory
        self.candidates = parameter_grid(grid)
        self.metric = metric
        self.n_folds = n_folds
        self.seed = seed
        self.results_: list[tuple[dict[str, Any], float]] = []
        self.best_params_: dict[str, Any] | None = None
        self.best_score_: float | None = None
        self.best_estimator_: EarlyClassifier | None = None

    def fit(self, dataset: TimeSeriesDataset) -> "GridSearchETSC":
        """Score every configuration by CV, refit the best on all data."""
        higher_is_better = _METRICS[self.metric]
        self.results_ = []
        for params in self.candidates:
            try:
                result = evaluate(
                    lambda params=params: self.factory(**params),
                    dataset,
                    algorithm_name=str(params),
                    n_folds=self.n_folds,
                    seed=self.seed,
                )
            except ReproError:
                # Configurations that cannot train simply score worst.
                score = -np.inf if higher_is_better else np.inf
            else:
                score = float(getattr(result, self.metric))
            self.results_.append((params, score))
        ordered = sorted(
            self.results_,
            key=lambda item: item[1],
            reverse=higher_is_better,
        )
        self.best_params_, self.best_score_ = ordered[0]
        if not np.isfinite(self.best_score_):
            raise ReproError("no configuration could be trained")
        self.best_estimator_ = wrap_for_dataset(
            lambda: self.factory(**self.best_params_), dataset
        )
        self.best_estimator_.train(dataset)
        return self

    def predict(self, dataset: TimeSeriesDataset) -> list[EarlyPrediction]:
        """Early-classify with the refitted best configuration."""
        if self.best_estimator_ is None:
            raise NotFittedError("GridSearchETSC used before fit")
        return self.best_estimator_.predict(dataset)
