"""Result types produced by early classifiers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import DataError

__all__ = [
    "EarlyPrediction",
    "collect_predictions",
    "SOURCE_MODEL",
    "SOURCE_FALLBACK",
    "PREDICTION_SOURCES",
]

#: Where a prediction came from. ``model`` is the trained early
#: classifier; ``fallback`` marks answers produced by a cheap stand-in
#: predictor after a consultation deadline miss, failure, or an open
#: circuit breaker (see :mod:`repro.serve`).
SOURCE_MODEL = "model"
SOURCE_FALLBACK = "fallback"

PREDICTION_SOURCES = (SOURCE_MODEL, SOURCE_FALLBACK)


@dataclass(frozen=True)
class EarlyPrediction:
    """An early classification decision for one time-series instance.

    Attributes
    ----------
    label:
        Predicted class label.
    prefix_length:
        Number of time-points the classifier consumed before committing.
    series_length:
        Full length of the instance (for the earliness ratio).
    confidence:
        Optional classifier confidence in ``[0, 1]``; ``None`` when the
        algorithm does not expose one.
    degraded:
        ``True`` when the serving layer could not obtain this answer from
        the primary model (deadline miss, consultation failure, open
        circuit breaker) and degraded to a fallback predictor.
    source:
        ``"model"`` for a primary-classifier answer, ``"fallback"`` for a
        degraded one. ``degraded`` and ``source`` must agree.
    """

    label: int
    prefix_length: int
    series_length: int
    confidence: float | None = None
    degraded: bool = False
    source: str = SOURCE_MODEL

    def __post_init__(self) -> None:
        if not 1 <= self.prefix_length <= self.series_length:
            raise DataError(
                f"prefix_length {self.prefix_length} outside "
                f"[1, {self.series_length}]"
            )
        if self.confidence is not None and not 0.0 <= self.confidence <= 1.0:
            raise DataError(
                f"confidence must be in [0, 1], got {self.confidence}"
            )
        if self.source not in PREDICTION_SOURCES:
            raise DataError(
                f"source must be one of {PREDICTION_SOURCES}, "
                f"got {self.source!r}"
            )
        if self.degraded != (self.source == SOURCE_FALLBACK):
            raise DataError(
                f"degraded={self.degraded} contradicts source="
                f"{self.source!r}: fallback answers are degraded, model "
                "answers are not"
            )

    @property
    def earliness(self) -> float:
        """Observed fraction ``l / L`` of the series (lower is better)."""
        return self.prefix_length / self.series_length


def collect_predictions(
    predictions: list[EarlyPrediction],
) -> tuple[np.ndarray, np.ndarray]:
    """Split a prediction list into ``(labels, prefix_lengths)`` arrays."""
    if not predictions:
        raise DataError("no predictions to collect")
    labels = np.asarray([p.label for p in predictions])
    prefixes = np.asarray([p.prefix_length for p in predictions])
    return labels, prefixes
