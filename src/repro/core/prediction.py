"""Result types produced by early classifiers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import DataError

__all__ = ["EarlyPrediction", "collect_predictions"]


@dataclass(frozen=True)
class EarlyPrediction:
    """An early classification decision for one time-series instance.

    Attributes
    ----------
    label:
        Predicted class label.
    prefix_length:
        Number of time-points the classifier consumed before committing.
    series_length:
        Full length of the instance (for the earliness ratio).
    confidence:
        Optional classifier confidence in ``[0, 1]``; ``None`` when the
        algorithm does not expose one.
    """

    label: int
    prefix_length: int
    series_length: int
    confidence: float | None = None

    def __post_init__(self) -> None:
        if not 1 <= self.prefix_length <= self.series_length:
            raise DataError(
                f"prefix_length {self.prefix_length} outside "
                f"[1, {self.series_length}]"
            )
        if self.confidence is not None and not 0.0 <= self.confidence <= 1.0:
            raise DataError(
                f"confidence must be in [0, 1], got {self.confidence}"
            )

    @property
    def earliness(self) -> float:
        """Observed fraction ``l / L`` of the series (lower is better)."""
        return self.prefix_length / self.series_length


def collect_predictions(
    predictions: list[EarlyPrediction],
) -> tuple[np.ndarray, np.ndarray]:
    """Split a prediction list into ``(labels, prefix_lengths)`` arrays."""
    if not predictions:
        raise DataError("no predictions to collect")
    labels = np.asarray([p.label for p in predictions])
    prefixes = np.asarray([p.prefix_length for p in predictions])
    return labels, prefixes
