"""Abstract interfaces of the evaluation framework (Section 5.5).

The paper's extensibility contract is: *"To add a new algorithm, one needs
to create a Python interface that implements the abstract class
EarlyClassifier, and provide the algorithm functionality for train and
predict methods."* :class:`EarlyClassifier` is that class. Full time-series
classifiers (used inside STRUT, ECEC, TEASER) implement the smaller
:class:`FullTSClassifier` interface.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..data.dataset import TimeSeriesDataset
from ..exceptions import DataError, NotFittedError
from .prediction import EarlyPrediction

__all__ = ["EarlyClassifier", "FullTSClassifier"]


class FullTSClassifier(ABC):
    """A classifier for complete (fixed-length) time-series.

    Implementations must accept any series length at ``train`` time and
    classify series of the same length at ``predict`` time. STRUT retrains a
    fresh instance per truncation length via :meth:`clone`.
    """

    @abstractmethod
    def train(self, dataset: TimeSeriesDataset) -> "FullTSClassifier":
        """Fit the classifier on the full-length training dataset."""

    @abstractmethod
    def predict(self, dataset: TimeSeriesDataset) -> np.ndarray:
        """Predict one label per instance (same length as training series)."""

    @abstractmethod
    def clone(self) -> "FullTSClassifier":
        """Return an unfitted copy with identical hyperparameters."""

    def predict_proba(self, dataset: TimeSeriesDataset) -> np.ndarray:
        """Per-class probabilities; default is a one-hot of ``predict``.

        Columns follow ``self.classes_`` for implementations that expose it.
        """
        predictions = self.predict(dataset)
        classes = getattr(self, "classes_", None)
        if classes is None:
            classes = np.unique(predictions)
        classes = np.asarray(classes)
        probabilities = np.zeros((len(predictions), len(classes)))
        for i, label in enumerate(predictions):
            probabilities[i, int(np.flatnonzero(classes == label)[0])] = 1.0
        return probabilities


class EarlyClassifier(ABC):
    """An early time-series classifier.

    The lifecycle is: construct with hyperparameters, :meth:`train` once on
    a labelled dataset, then :meth:`predict` on (possibly incomplete) test
    series. ``predict`` simulates the streaming setting: for each test
    instance the classifier observes growing prefixes and commits at the
    earliest point its internal trigger fires, returning an
    :class:`EarlyPrediction` that records both the label and the consumed
    prefix length.
    """

    #: Whether the algorithm natively consumes multivariate series. The
    #: evaluation harness wraps univariate-only algorithms in the voting
    #: ensemble of Section 6.1.
    supports_multivariate: bool = False

    def __init__(self) -> None:
        self._trained_length: int | None = None
        self._trained_variables: int | None = None

    # ------------------------------------------------------------------
    @abstractmethod
    def _train(self, dataset: TimeSeriesDataset) -> None:
        """Algorithm-specific fitting logic."""

    @abstractmethod
    def _predict(self, dataset: TimeSeriesDataset) -> list[EarlyPrediction]:
        """Algorithm-specific early prediction for each instance."""

    # ------------------------------------------------------------------
    def train(self, dataset: TimeSeriesDataset) -> "EarlyClassifier":
        """Fit the classifier on the labelled training dataset."""
        if dataset.n_classes < 2:
            raise DataError(
                "training dataset must contain at least two classes"
            )
        if dataset.has_missing():
            raise DataError(
                "training dataset contains missing values; fill them first "
                "with repro.data.fill_missing (the paper's Section 5.1 rule)"
            )
        if not self.supports_multivariate and dataset.n_variables != 1:
            raise DataError(
                f"{type(self).__name__} supports univariate input only; "
                "wrap it in repro.core.voting.VotingEnsemble for "
                "multivariate data"
            )
        self._train(dataset)
        self._trained_length = dataset.length
        self._trained_variables = dataset.n_variables
        return self

    def predict(self, dataset: TimeSeriesDataset) -> list[EarlyPrediction]:
        """Early-classify every instance of ``dataset``.

        The test series may be full length (the streaming simulation feeds
        prefixes internally) but must match the training variable count and
        must not be longer than the training series.
        """
        if self._trained_length is None:
            raise NotFittedError(f"{type(self).__name__} used before train")
        if dataset.n_variables != self._trained_variables:
            raise DataError(
                f"trained on {self._trained_variables} variables, "
                f"got {dataset.n_variables}"
            )
        if dataset.length > self._trained_length:
            raise DataError(
                f"trained on length {self._trained_length}, got longer "
                f"series of length {dataset.length}"
            )
        predictions = self._predict(dataset)
        if len(predictions) != dataset.n_instances:
            raise DataError(
                f"{type(self).__name__} returned {len(predictions)} "
                f"predictions for {dataset.n_instances} instances"
            )
        return predictions

    def predict_one(self, series: np.ndarray) -> EarlyPrediction:
        """Early-classify a single ``(n_variables, length)`` series.

        Convenience wrapper around :meth:`predict` used by the streaming
        and serving layers, which consult the classifier one observed
        prefix at a time. A 1-D input is treated as univariate.
        """
        series = np.atleast_2d(np.asarray(series, dtype=float))
        if series.ndim != 2:
            raise DataError(
                f"predict_one expects one (n_variables, length) series, "
                f"got shape {series.shape}"
            )
        prefix = TimeSeriesDataset(
            series[np.newaxis, :, :], np.zeros(1, dtype=int)
        )
        return self.predict(prefix)[0]

    # ------------------------------------------------------------------
    @property
    def is_trained(self) -> bool:
        """Whether :meth:`train` has completed."""
        return self._trained_length is not None

    @property
    def trained_length(self) -> int:
        """Series length seen during training."""
        if self._trained_length is None:
            raise NotFittedError(f"{type(self).__name__} used before train")
        return self._trained_length

    @property
    def trained_variables(self) -> int:
        """Number of variables seen during training.

        The streaming/serving input guards validate every pushed point
        against this count instead of letting a shape mismatch surface as
        a raw numpy error deep inside the classifier.
        """
        if self._trained_variables is None:
            raise NotFittedError(f"{type(self).__name__} used before train")
        return self._trained_variables
