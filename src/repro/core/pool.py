"""Forked request/reply workers: the process plumbing under the fleet.

The evaluation grid's pool (:mod:`repro.core.runner`) schedules
independent one-shot cells onto a ``ProcessPoolExecutor``. The serving
fleet needs something the executor cannot give it: *stateful* workers
that hold live sessions between requests, answer over an explicit
duplex channel, and whose death — SIGKILL, hard crash, or hang — is a
detectable, recoverable event rather than a broken pool.

:class:`WorkerHandle` wraps one forked process plus its pipe endpoint
and normalises every failure mode into :class:`WorkerDied`:

* the peer process exited or was SIGKILLed → ``recv`` raises
  ``WorkerDied`` (EOF / reset on the pipe);
* the peer hangs → ``recv(timeout=...)`` raises ``WorkerDied`` after
  the timeout (the caller decides whether to ``kill()`` it);
* the pipe's buffer is gone mid-``send`` → ``WorkerDied``.

Workers are forked (never spawned), so they inherit the parent's
trained models and datasets by copy-on-write — the request channel only
ever carries small control messages and picklable outcomes, mirroring
the runner's execution/commitment split. On platforms without the
``fork`` start method :func:`fork_available` returns ``False`` and
callers degrade to in-process execution.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
from typing import Any, Callable

from ..obs.logging import get_logger

__all__ = [
    "WorkerDied",
    "WorkerHandle",
    "available_cores",
    "fork_available",
    "spawn_worker",
    "request_reply_loop",
]

_logger = get_logger("core.pool")


class WorkerDied(RuntimeError):
    """The peer worker is gone: killed, crashed, or unresponsive."""

    def __init__(self, worker: int, reason: str) -> None:
        super().__init__(f"worker {worker}: {reason}")
        self.worker = worker
        self.reason = reason


def fork_available() -> bool:
    """Whether fork-based stateful workers can run on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def available_cores() -> int:
    """Cores this process may actually be scheduled on, never below 1.

    ``os.cpu_count()`` reports the machine, not the cgroup/affinity mask
    a container confines us to — trusting it on a 1-core box is how the
    grid ended up 4x *slower* at ``--workers 4`` (see BENCH_PERF.json).
    ``os.sched_getaffinity(0)`` reports the schedulable set; platforms
    without it (macOS) fall back to ``cpu_count``. Clamped to >= 1.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def request_reply_loop(
    conn, handler: Callable[[dict], dict], *, worker: int = 0
) -> None:
    """Serve requests on ``conn`` until a ``{"cmd": "stop"}`` arrives.

    The worker-side half of the protocol: each received mapping is
    passed to ``handler`` and the returned mapping sent back. A handler
    exception is shipped to the parent as ``{"error": repr, "cmd": ...}``
    instead of killing the worker — the parent chooses whether that is
    fatal. ``{"cmd": "hang"}`` parks the worker forever (chaos testing:
    the parent's heartbeat timeout must catch it).
    """
    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError):
            return  # parent is gone; nothing left to serve
        command = request.get("cmd")
        if command == "stop":
            try:
                conn.send({"cmd": "stop", "ok": True})
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
            return
        if command == "hang":  # pragma: no cover - killed by the parent
            signal.pause() if hasattr(signal, "pause") else None
            while True:
                pass
        try:
            reply = handler(request)
        except Exception as error:  # noqa: BLE001 - shipped to the parent
            reply = {"cmd": command, "error": repr(error)}
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return


class WorkerHandle:
    """Parent-side endpoint of one forked request/reply worker."""

    def __init__(self, index: int, process, conn) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self._dead_reason: str | None = None

    # ------------------------------------------------------------------
    @property
    def pid(self) -> int | None:
        return self.process.pid

    @property
    def alive(self) -> bool:
        """Not yet declared dead by this handle (process may still run)."""
        return self._dead_reason is None

    @property
    def dead_reason(self) -> str | None:
        return self._dead_reason

    def _die(self, reason: str) -> WorkerDied:
        if self._dead_reason is None:
            self._dead_reason = reason
        return WorkerDied(self.index, self._dead_reason)

    # ------------------------------------------------------------------
    def send(self, message: dict) -> None:
        """Ship one request; raises :class:`WorkerDied` if the peer is gone."""
        if self._dead_reason is not None:
            raise WorkerDied(self.index, self._dead_reason)
        try:
            self.conn.send(message)
        except (BrokenPipeError, ConnectionResetError, OSError) as error:
            raise self._die(f"send failed: {error}") from error

    def recv(self, timeout: float | None = None) -> dict:
        """Receive one reply, waiting at most ``timeout`` seconds.

        Raises :class:`WorkerDied` on EOF (the process died) or when no
        reply arrives within the timeout (the process hangs — the caller
        should :meth:`kill` it before reusing the pipe).
        """
        if self._dead_reason is not None:
            raise WorkerDied(self.index, self._dead_reason)
        try:
            if timeout is not None and not self.conn.poll(timeout):
                raise self._die(
                    f"no reply within {timeout:g}s (heartbeat timeout)"
                )
            reply = self.conn.recv()
        except WorkerDied:
            raise
        except (EOFError, ConnectionResetError, OSError) as error:
            raise self._die(f"connection lost: {error}") from error
        return reply

    def request(self, message: dict, timeout: float | None = None) -> dict:
        """``send`` + ``recv`` in one call."""
        self.send(message)
        return self.recv(timeout)

    # ------------------------------------------------------------------
    def kill(self, reason: str = "killed by parent") -> None:
        """SIGKILL the worker process and mark the handle dead."""
        self._die(reason)
        if self.process.is_alive():
            try:
                os.kill(self.process.pid, signal.SIGKILL)
            except (ProcessLookupError, OSError):  # pragma: no cover
                pass
        self.process.join(timeout=5.0)

    def stop(self, timeout: float = 5.0) -> None:
        """Graceful shutdown: send ``stop``, wait, then escalate to kill."""
        if self._dead_reason is None:
            try:
                self.send({"cmd": "stop"})
                self.recv(timeout)
            except WorkerDied:
                pass
        self.process.join(timeout=timeout)
        if self.process.is_alive():  # pragma: no cover - stubborn worker
            self.kill("did not stop in time")
        self.conn.close()


def spawn_worker(
    index: int,
    main: Callable[[Any, int], None],
    *,
    name: str = "worker",
) -> WorkerHandle:
    """Fork one request/reply worker running ``main(conn, index)``.

    ``main`` receives the child end of a duplex pipe and the worker
    index; any state it needs beyond that should be parked in a module
    global before the fork (the runner's ``_WORKER_STATE`` idiom) so it
    arrives by copy-on-write instead of through the pipe.
    """
    if not fork_available():
        raise WorkerDied(index, "fork start method unavailable")
    context = multiprocessing.get_context("fork")
    parent_conn, child_conn = context.Pipe(duplex=True)
    process = context.Process(
        target=main,
        args=(child_conn, index),
        name=f"{name}-{index}",
        daemon=True,
    )
    process.start()
    child_conn.close()  # the child holds its own copy
    return WorkerHandle(index, process, parent_conn)
