"""Cell-level checkpointing for grid runs: kill a 48-hour run, resume it.

The checkpoint is an append-only JSONL file written *as the grid runs*,
one line per completed unit of work, flushed eagerly so a ``SIGKILL``
loses at most the line being written. Three record kinds::

    {"type": "meta", "version": 1, "fingerprint": {...}}
    {"type": "dataset", "name": "PowerCons",
     "categories": ["Common", "Univariate"], "frequency_seconds": null}
    {"type": "cell", "algorithm": "ECTS", "dataset": "PowerCons",
     "outcome": "result", "folds": [...]}            # or
    {"type": "cell", ..., "outcome": "failure",
     "reason": "...", "kind": "permanent", "attempts": 1}

Fold payloads reuse the :mod:`repro.core.results` serialisation, so a
checkpointed cell restores to exactly the ``EvaluationResult`` the live
run produced — the resumed report is equal (same keys, same metric
values) to an uninterrupted run's.

The ``meta`` line carries a **grid fingerprint** (seed, folds, budget,
algorithm/dataset lists, thresholds). Resuming validates it against the
new run's fingerprint and refuses a mismatch
(:class:`~repro.exceptions.CheckpointMismatchError`) — mixing cells from
two different grids would silently corrupt the comparison.

Corruption policy: a malformed *final* line is tolerated with a warning
(that is what a kill mid-write leaves behind); a malformed earlier line,
a missing/foreign ``meta`` line, or an unsupported version raise
:class:`~repro.exceptions.CheckpointError`.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any

from ..exceptions import CheckpointError, CheckpointMismatchError
from ..obs.logging import get_logger
from .categorization import DatasetCategories
from .evaluation import EvaluationResult
from .results import categories_from_names, fold_from_dict, fold_to_dict

__all__ = [
    "CHECKPOINT_VERSION",
    "grid_fingerprint",
    "CheckpointState",
    "CheckpointWriter",
    "load_checkpoint",
]

_logger = get_logger("core.checkpoint")

CHECKPOINT_VERSION = 1


def grid_fingerprint(
    seed: int,
    n_folds: int,
    time_budget_seconds: float,
    algorithms: list[str],
    datasets: list[str],
    wide_threshold: int | None = None,
    large_threshold: int | None = None,
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """The identity of one grid configuration, as a JSON-safe dict.

    Two runs may share a checkpoint exactly when their fingerprints are
    equal. ``extra`` lets callers fold in context the runner cannot see
    (the CLI adds ``scale`` and the registry profile).
    """
    budget = time_budget_seconds
    fingerprint: dict[str, Any] = {
        "seed": int(seed),
        "n_folds": int(n_folds),
        # inf is not valid strict JSON; store the string form.
        "time_budget_seconds": (
            float(budget) if math.isfinite(budget) else str(budget)
        ),
        "algorithms": list(algorithms),
        "datasets": list(datasets),
        "wide_threshold": wide_threshold,
        "large_threshold": large_threshold,
    }
    if extra:
        fingerprint["extra"] = dict(sorted(extra.items()))
    return fingerprint


@dataclass
class CheckpointState:
    """Everything recovered from a checkpoint file."""

    fingerprint: dict[str, Any]
    results: dict[tuple[str, str], EvaluationResult] = field(
        default_factory=dict
    )
    failures: dict[tuple[str, str], str] = field(default_factory=dict)
    failure_kinds: dict[tuple[str, str], str] = field(default_factory=dict)
    failure_attempts: dict[tuple[str, str], int] = field(
        default_factory=dict
    )
    categories: dict[str, DatasetCategories] = field(default_factory=dict)
    frequencies: dict[str, float] = field(default_factory=dict)
    #: Per-cell ``{"wall_seconds": ..., "cpu_seconds": ...}`` (whichever
    #: of the two the row carried). Seeds the scheduler's cost model on
    #: resume; empty for checkpoints written before the fields existed.
    timings: dict[tuple[str, str], dict[str, float]] = field(
        default_factory=dict
    )
    truncated: bool = False

    def completed_keys(self) -> set[tuple[str, str]]:
        """Cells with a recorded outcome (result *or* failure)."""
        return set(self.results) | set(self.failures)

    def dataset_restored(self, name: str) -> bool:
        """Whether the dataset's categorisation was checkpointed."""
        return name in self.categories

    def validate_fingerprint(self, fingerprint: dict[str, Any]) -> None:
        """Refuse to resume a grid that differs from the checkpointed one."""
        if self.fingerprint == fingerprint:
            return
        differing = []
        for key in sorted(set(self.fingerprint) | set(fingerprint)):
            ours, theirs = self.fingerprint.get(key), fingerprint.get(key)
            if ours == theirs:
                continue
            # Nested mappings (the 'extra' blob carries e.g. the
            # corruption spec/seed) are diffed per key so the message
            # names the actual knob that changed, not just 'extra'.
            if isinstance(ours, dict) and isinstance(theirs, dict):
                for sub in sorted(set(ours) | set(theirs)):
                    if ours.get(sub) != theirs.get(sub):
                        differing.append(
                            f"{key}.{sub} (checkpoint {ours.get(sub)!r} "
                            f"!= run {theirs.get(sub)!r})"
                        )
            else:
                differing.append(
                    f"{key} (checkpoint {ours!r} != run {theirs!r})"
                )
        raise CheckpointMismatchError(
            "checkpoint fingerprint does not match this run "
            f"(differing: {'; '.join(differing)}); resuming would mix "
            "results from incompatible grids — use a fresh checkpoint path"
        )


def load_checkpoint(path: str | os.PathLike) -> CheckpointState:
    """Parse a checkpoint file into a :class:`CheckpointState`.

    Tolerates a malformed final line (a kill mid-write); any earlier
    corruption raises :class:`~repro.exceptions.CheckpointError`.
    """
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"checkpoint file not found: {path}")
    with path.open("r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    records: list[dict[str, Any]] = []
    truncated = False
    for line_number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as error:
            if line_number == len(lines):
                # The run was killed mid-write; the cell on this line
                # re-runs after resume.
                truncated = True
                _logger.warning(
                    "%s: dropping truncated final line %d (killed "
                    "mid-write); the interrupted cell will re-run",
                    path,
                    line_number,
                )
                break
            raise CheckpointError(
                f"{path}:{line_number}: corrupt checkpoint line ({error})"
            ) from error
    if not records or records[0].get("type") != "meta":
        raise CheckpointError(f"{path}: missing checkpoint meta line")
    meta = records[0]
    if meta.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path}: unsupported checkpoint version {meta.get('version')!r}"
        )
    state = CheckpointState(
        fingerprint=meta.get("fingerprint", {}), truncated=truncated
    )
    for record in records[1:]:
        kind = record.get("type")
        if kind == "dataset":
            state.categories[record["name"]] = categories_from_names(
                record.get("categories", [])
            )
            if record.get("frequency_seconds") is not None:
                state.frequencies[record["name"]] = float(
                    record["frequency_seconds"]
                )
        elif kind == "cell":
            key = (record["algorithm"], record["dataset"])
            if record.get("outcome") == "result":
                folds = tuple(
                    fold_from_dict(fold) for fold in record["folds"]
                )
                state.results[key] = EvaluationResult(key[0], key[1], folds)
                state.failures.pop(key, None)
            else:
                state.failures[key] = record.get("reason", "unknown failure")
                state.failure_kinds[key] = record.get("kind", "permanent")
                if record.get("attempts") is not None:
                    state.failure_attempts[key] = int(record["attempts"])
                state.results.pop(key, None)
            # Optional timing fields (added in PR 10); rows written by
            # older versions simply lack them and load unchanged.
            timings = {
                field_name: float(record[field_name])
                for field_name in ("wall_seconds", "cpu_seconds")
                if record.get(field_name) is not None
            }
            if timings:
                state.timings[key] = timings
            else:
                state.timings.pop(key, None)
        # Unknown record types are skipped (forward compatibility).
    return state


class CheckpointWriter:
    """Append outcome records to a checkpoint file, flushing every line.

    ``append=False`` starts a fresh checkpoint (writing the ``meta``
    line); ``append=True`` continues an existing one after resume — the
    caller is responsible for having validated the fingerprint first.
    A context manager; ``close()`` is idempotent.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        fingerprint: dict[str, Any],
        append: bool = False,
    ) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        mode = "a" if append else "w"
        self._file: IO[str] | None = self.path.open(mode, encoding="utf-8")
        if not append:
            self._write_line(
                {
                    "type": "meta",
                    "version": CHECKPOINT_VERSION,
                    "fingerprint": fingerprint,
                }
            )

    def _write_line(self, record: dict[str, Any]) -> None:
        if self._file is None:
            raise CheckpointError(
                f"checkpoint writer for {self.path} is closed"
            )
        self._file.write(
            json.dumps(record, separators=(",", ":"), sort_keys=True) + "\n"
        )
        self._file.flush()
        os.fsync(self._file.fileno())

    def write_dataset(
        self,
        name: str,
        categories: DatasetCategories,
        frequency_seconds: float | None,
    ) -> None:
        """Record a dataset's categorisation (restored without reloading)."""
        self._write_line(
            {
                "type": "dataset",
                "name": name,
                "categories": categories.names(),
                "frequency_seconds": frequency_seconds,
            }
        )

    def write_result(
        self,
        algorithm: str,
        dataset: str,
        result: EvaluationResult,
        wall_seconds: float | None = None,
        cpu_seconds: float | None = None,
    ) -> None:
        """Record one successfully evaluated cell.

        The optional wall/CPU timings seed the scheduler's cost model on
        ``--resume``; omitted fields are omitted from the row, so files
        stay loadable by older readers (unknown keys are ignored).
        """
        record = {
            "type": "cell",
            "algorithm": algorithm,
            "dataset": dataset,
            "outcome": "result",
            "folds": [fold_to_dict(fold) for fold in result.folds],
        }
        if wall_seconds is not None:
            record["wall_seconds"] = float(wall_seconds)
        if cpu_seconds is not None:
            record["cpu_seconds"] = float(cpu_seconds)
        self._write_line(record)

    def write_failure(
        self,
        algorithm: str,
        dataset: str,
        reason: str,
        kind: str,
        attempts: int = 1,
        wall_seconds: float | None = None,
        cpu_seconds: float | None = None,
    ) -> None:
        """Record one failed cell (classified, with attempt count)."""
        record = {
            "type": "cell",
            "algorithm": algorithm,
            "dataset": dataset,
            "outcome": "failure",
            "reason": reason,
            "kind": kind,
            "attempts": attempts,
        }
        if wall_seconds is not None:
            record["wall_seconds"] = float(wall_seconds)
        if cpu_seconds is not None:
            record["cpu_seconds"] = float(cpu_seconds)
        self._write_line(record)

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "CheckpointWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
