"""Wall-clock preemption for long-running evaluations.

The paper terminated any experiment that exceeded 48 hours (EDSC never
finished the 'Wide' datasets). :func:`time_limit` provides that kill rule
as a context manager built on ``SIGALRM``: entering arms a timer, and a
running evaluation that exceeds it is interrupted with
:class:`EvaluationTimeout`.

``SIGALRM`` is only available on Unix and only in the main thread; outside
those conditions the context manager degrades to a no-op (the runner then
falls back to its cooperative after-the-fact budget check).
"""

from __future__ import annotations

import contextlib
import signal
import threading
from typing import Iterator

from ..exceptions import ReproError

__all__ = ["EvaluationTimeout", "time_limit"]


class EvaluationTimeout(ReproError):
    """Raised inside :func:`time_limit` when the wall-clock budget expires."""


def _alarm_supported() -> bool:
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


@contextlib.contextmanager
def time_limit(seconds: float | None) -> Iterator[None]:
    """Run the enclosed block under a wall-clock limit.

    ``None`` or non-positive / infinite budgets disable the limit. Nested
    use restores the previous handler and remaining timer on exit.
    """
    no_limit = (
        seconds is None
        or seconds <= 0
        or seconds == float("inf")
        or not _alarm_supported()
    )
    if no_limit:
        yield
        return

    def _on_alarm(signum, frame):
        raise EvaluationTimeout(
            f"evaluation exceeded the {seconds:.0f}s budget"
        )

    previous_handler = signal.signal(signal.SIGALRM, _on_alarm)
    # setitimer accepts fractional seconds, unlike alarm().
    previous_timer = signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, *(previous_timer or (0.0, 0.0)))
        signal.signal(signal.SIGALRM, previous_handler)
