"""Wall-clock preemption for long-running evaluations.

The paper terminated any experiment that exceeded 48 hours (EDSC never
finished the 'Wide' datasets). :func:`time_limit` provides that kill rule
as a context manager built on ``SIGALRM``: entering arms a timer, and a
running evaluation that exceeds it is interrupted with
:class:`EvaluationTimeout`.

``SIGALRM`` is only available on Unix and only in the main thread; outside
those conditions the context manager degrades to a cooperative
after-the-fact budget check in the runner. That degradation used to be
silent — it is now announced once per process through the ``repro``
logger and annotated on the active trace span, so a grid run's record
shows *which* kill rule was actually in force.
"""

from __future__ import annotations

import contextlib
import signal
import threading
from typing import Iterator

from ..exceptions import ReproError
from ..obs.logging import get_logger, warn_once
from ..obs.trace import current_span

__all__ = ["EvaluationTimeout", "time_limit"]

_logger = get_logger("core.timeouts")


class EvaluationTimeout(ReproError):
    """Raised inside :func:`time_limit` when the wall-clock budget expires."""


def _alarm_supported() -> bool:
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


@contextlib.contextmanager
def time_limit(seconds: float | None) -> Iterator[None]:
    """Run the enclosed block under a wall-clock limit.

    ``None`` or non-positive / infinite budgets disable the limit. Nested
    use restores the previous handler and remaining timer on exit.
    """
    limit_requested = not (
        seconds is None or seconds <= 0 or seconds == float("inf")
    )
    if limit_requested and not _alarm_supported():
        # Degraded mode: the budget still applies, but only as the
        # runner's between-cells check — a runaway fit is not preempted.
        warn_once(
            "timeouts.degraded",
            "SIGALRM unavailable (non-Unix platform or non-main thread): "
            "time budgets degrade to cooperative after-the-fact checks; "
            "running evaluations will not be preempted mid-cell",
            logger=_logger,
        )
        current_span().set_attribute("time_limit_degraded", True)
        limit_requested = False
    if not limit_requested:
        yield
        return

    def _on_alarm(signum, frame):
        raise EvaluationTimeout(
            f"evaluation exceeded the {seconds:.0f}s budget"
        )

    previous_handler = signal.signal(signal.SIGALRM, _on_alarm)
    # setitimer accepts fractional seconds, unlike alarm().
    previous_timer = signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, *(previous_timer or (0.0, 0.0)))
        signal.signal(signal.SIGALRM, previous_handler)
