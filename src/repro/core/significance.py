"""Statistical comparison of algorithms across datasets.

The time-series bake-off studies the paper builds on ([4], [36]) compare
classifiers by *average ranks* across datasets with the Friedman test and
Nemenyi critical-difference analysis (Demsar, JMLR 2006). This module
provides that toolchain for :class:`~repro.core.runner.RunReport` objects:

* :func:`rank_matrix` — per-dataset ranks of each algorithm on a metric;
* :func:`friedman_test` — the Friedman chi-squared statistic, the
  Iman-Davenport F correction, and its p-value;
* :func:`nemenyi_critical_difference` — the rank gap above which two
  algorithms differ significantly;
* :func:`compare_algorithms` — the full analysis in one call, rendered as
  the familiar "average ranks + CD" summary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

from ..exceptions import DataError
from .runner import RunReport

__all__ = [
    "rank_matrix",
    "friedman_test",
    "nemenyi_critical_difference",
    "compare_algorithms",
    "SignificanceReport",
]

# Studentised-range q_alpha / sqrt(2) values for the Nemenyi test at
# alpha = 0.05, indexed by the number of compared algorithms (Demsar 2006,
# Table 5.b).
_NEMENYI_Q05 = {
    2: 1.960,
    3: 2.343,
    4: 2.569,
    5: 2.728,
    6: 2.850,
    7: 2.949,
    8: 3.031,
    9: 3.102,
    10: 3.164,
}


def rank_matrix(
    scores: np.ndarray, higher_is_better: bool = True
) -> np.ndarray:
    """Per-row ranks (1 = best) with ties sharing the average rank.

    ``scores`` is ``(n_datasets, n_algorithms)``; NaN entries (failed
    pairs) are ranked worst.
    """
    scores = np.asarray(scores, dtype=float)
    if scores.ndim != 2:
        raise DataError(f"scores must be 2-D, got shape {scores.shape}")
    oriented = -scores if higher_is_better else scores.copy()
    worst = np.nanmax(oriented) if np.isfinite(oriented).any() else 0.0
    oriented = np.where(np.isnan(oriented), worst + 1.0, oriented)
    return np.apply_along_axis(
        lambda row: scipy_stats.rankdata(row, method="average"), 1, oriented
    )


def friedman_test(ranks: np.ndarray) -> tuple[float, float, float]:
    """Friedman chi-squared, Iman-Davenport F, and the F-test p-value.

    ``ranks`` is the output of :func:`rank_matrix`. Requires at least two
    datasets and two algorithms.
    """
    ranks = np.asarray(ranks, dtype=float)
    n_datasets, n_algorithms = ranks.shape
    if n_datasets < 2 or n_algorithms < 2:
        raise DataError(
            "Friedman test needs >= 2 datasets and >= 2 algorithms"
        )
    mean_ranks = ranks.mean(axis=0)
    chi_squared = (
        12.0
        * n_datasets
        / (n_algorithms * (n_algorithms + 1))
        * (
            float(np.sum(mean_ranks**2))
            - n_algorithms * (n_algorithms + 1) ** 2 / 4.0
        )
    )
    denominator = n_datasets * (n_algorithms - 1) - chi_squared
    if denominator <= 0:
        # Perfectly consistent rankings: the F statistic diverges.
        return chi_squared, float("inf"), 0.0
    iman_davenport = (n_datasets - 1) * chi_squared / denominator
    p_value = float(
        scipy_stats.f.sf(
            iman_davenport,
            n_algorithms - 1,
            (n_algorithms - 1) * (n_datasets - 1),
        )
    )
    return float(chi_squared), float(iman_davenport), p_value


def nemenyi_critical_difference(
    n_algorithms: int, n_datasets: int, alpha: float = 0.05
) -> float:
    """The Nemenyi critical difference in average ranks at ``alpha=0.05``."""
    if alpha != 0.05:
        raise DataError("only alpha=0.05 critical values are tabulated")
    if n_algorithms not in _NEMENYI_Q05:
        raise DataError(
            f"critical values tabulated for 2..10 algorithms, "
            f"got {n_algorithms}"
        )
    if n_datasets < 2:
        raise DataError("need >= 2 datasets")
    q_alpha = _NEMENYI_Q05[n_algorithms]
    return float(
        q_alpha
        * np.sqrt(n_algorithms * (n_algorithms + 1) / (6.0 * n_datasets))
    )


@dataclass(frozen=True)
class SignificanceReport:
    """Result of :func:`compare_algorithms`."""

    algorithms: tuple[str, ...]
    average_ranks: tuple[float, ...]
    chi_squared: float
    iman_davenport: float
    p_value: float
    critical_difference: float

    def significantly_different(self, first: str, second: str) -> bool:
        """Whether two algorithms' average ranks differ by more than CD."""
        ranks = dict(zip(self.algorithms, self.average_ranks))
        return abs(ranks[first] - ranks[second]) > self.critical_difference

    def to_markdown(self) -> str:
        """Render as the classic average-ranks summary."""
        ordered = sorted(
            zip(self.algorithms, self.average_ranks), key=lambda kv: kv[1]
        )
        lines = [
            "| algorithm | average rank |",
            "|---|---|",
        ]
        for name, rank in ordered:
            lines.append(f"| {name} | {rank:.2f} |")
        lines.append("")
        lines.append(
            f"Friedman chi2 = {self.chi_squared:.2f}, Iman-Davenport F = "
            f"{self.iman_davenport:.2f}, p = {self.p_value:.4f}; Nemenyi "
            f"CD (alpha=0.05) = {self.critical_difference:.2f}"
        )
        return "\n".join(lines)

    def cd_diagram(self, width: int = 60) -> str:
        """Text rendering of the Demsar critical-difference diagram.

        An axis spans rank 1 to the number of algorithms; each algorithm's
        marker sits at its average rank, and the CD bar in the first line
        shows the rank gap below which differences are not significant.
        """
        n = len(self.algorithms)
        span = max(n - 1, 1)

        def column(rank: float) -> int:
            return int(round((rank - 1.0) / span * (width - 1)))

        cd_cells = max(1, int(round(self.critical_difference / span * (width - 1))))
        lines = [
            "CD " + "-" * min(cd_cells, width - 3),
            "1" + " " * (width - 2) + f"{n}",
        ]
        axis = ["-"] * width
        for rank in self.average_ranks:
            axis[column(rank)] = "+"
        lines.append("".join(axis))
        for name, rank in sorted(
            zip(self.algorithms, self.average_ranks), key=lambda kv: kv[1]
        ):
            pointer = [" "] * width
            pointer[column(rank)] = "|"
            lines.append("".join(pointer) + f" {name} ({rank:.2f})")
        return "\n".join(lines)


def compare_algorithms(
    report: RunReport,
    metric: str = "harmonic_mean",
    higher_is_better: bool | None = None,
) -> SignificanceReport:
    """Average-rank significance analysis of one campaign's results.

    Only algorithms evaluated on every dataset are comparable; pairs that
    failed are ranked worst on that dataset (the standard treatment of
    timeouts in the bake-off studies).
    """
    if higher_is_better is None:
        higher_is_better = metric not in ("earliness", "train_seconds",
                                          "test_seconds")
    algorithms = report.algorithms()
    datasets = report.datasets()
    if len(algorithms) < 2 or len(datasets) < 2:
        raise DataError(
            "significance analysis needs >= 2 algorithms and >= 2 datasets"
        )
    scores = np.full((len(datasets), len(algorithms)), np.nan)
    for i, dataset in enumerate(datasets):
        for j, algorithm in enumerate(algorithms):
            result = report.results.get((algorithm, dataset))
            if result is not None:
                scores[i, j] = float(getattr(result, metric))
    ranks = rank_matrix(scores, higher_is_better)
    chi_squared, iman_davenport, p_value = friedman_test(ranks)
    critical = nemenyi_critical_difference(len(algorithms), len(datasets))
    return SignificanceReport(
        algorithms=tuple(algorithms),
        average_ranks=tuple(float(r) for r in ranks.mean(axis=0)),
        chi_squared=chi_squared,
        iman_davenport=iman_davenport,
        p_value=p_value,
        critical_difference=critical,
    )
