"""Failure taxonomy, retry policy, and deterministic fault injection.

The paper's empirical comparison is a multi-day grid run governed by a
48-hour kill rule; a credible benchmark records *every* cell's outcome
rather than dying on the first bad fit. This module gives the runner the
vocabulary for that:

* :func:`classify_failure` sorts an exception into one of four
  :data:`FailureKind` buckets — ``timeout`` (the kill rule fired; never
  retried), ``data-format`` (the input file is bad; retrying cannot
  help), ``transient`` (resource pressure / flaky I/O; worth retrying),
  and ``permanent`` (everything else, including programming errors in an
  algorithm — isolated, recorded, not retried).
* :class:`RetryPolicy` decides how many attempts a cell gets and how
  long to wait between them: exponential backoff with deterministic
  jitter (seeded from the cell key, so two runs of the same grid sleep
  the same amount), with the clock injectable for tests.
* :class:`FaultPlan` is a deterministic fault-injection harness: "fail
  algorithm X on dataset Y with exception Z on attempt N". The runner
  accepts any callable hook with the same signature; the plan records
  every injection so tests can assert exactly which attempts fired.
"""

from __future__ import annotations

import random
import time
import traceback
import zlib
from dataclasses import dataclass, field
from typing import Callable

from ..exceptions import DataFormatError, ReproError, TransientError
from .timeouts import EvaluationTimeout

__all__ = [
    "TIMEOUT",
    "TRANSIENT",
    "PERMANENT",
    "DATA_FORMAT",
    "FAILURE_KINDS",
    "classify_failure",
    "failure_reason",
    "format_traceback",
    "RetryPolicy",
    "Fault",
    "FaultPlan",
]

#: Failure kinds — the taxonomy every recorded cell failure carries.
TIMEOUT = "timeout"
TRANSIENT = "transient"
PERMANENT = "permanent"
DATA_FORMAT = "data-format"

FAILURE_KINDS = (TIMEOUT, TRANSIENT, PERMANENT, DATA_FORMAT)

#: Kinds worth another attempt. Timeouts are excluded by design: a cell
#: that burnt its whole budget once will burn it again.
RETRYABLE_KINDS = frozenset({TRANSIENT})


def classify_failure(error: BaseException) -> str:
    """Sort ``error`` into one of :data:`FAILURE_KINDS`.

    ``EvaluationTimeout`` -> ``timeout``; ``DataFormatError`` ->
    ``data-format``; :class:`~repro.exceptions.TransientError`,
    ``OSError`` and ``MemoryError`` -> ``transient`` (resource pressure
    or flaky I/O may clear on a later attempt); anything else ->
    ``permanent``.
    """
    if isinstance(error, EvaluationTimeout):
        return TIMEOUT
    if isinstance(error, DataFormatError):
        return DATA_FORMAT
    if isinstance(error, (TransientError, OSError, MemoryError)):
        return TRANSIENT
    return PERMANENT


def failure_reason(error: BaseException) -> str:
    """The string recorded in ``RunReport.failures`` for ``error``.

    Framework errors read naturally on their own; foreign exceptions
    (``ValueError``, ``LinAlgError``, ...) keep their class name so a
    report line identifies the failure without the traceback.
    """
    if isinstance(error, ReproError):
        return str(error)
    return f"{type(error).__name__}: {error}"


def format_traceback(error: BaseException, limit: int = 12) -> str:
    """Compact traceback (innermost ``limit`` frames) for span context."""
    lines = traceback.format_exception(type(error), error, error.__traceback__)
    text = "".join(lines).rstrip()
    tail = text.splitlines()[-limit:]
    return "\n".join(tail)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    Attempt ``n`` (1-based) failing transiently waits
    ``min(base_delay * backoff**(n-1), max_delay)`` scaled by a jitter
    factor in ``[1, 1 + jitter]`` before attempt ``n + 1``. The jitter is
    drawn from an RNG seeded with the cell key and attempt number, so a
    re-run of the same grid produces identical delays — determinism the
    checkpoint/resume equality guarantee depends on.

    ``sleep`` is the injectable clock (tests pass a recorder instead of
    ``time.sleep``); ``classify`` maps exceptions to failure kinds and
    defaults to :func:`classify_failure`.
    """

    max_attempts: int = 1
    base_delay: float = 1.0
    backoff: float = 2.0
    max_delay: float = 60.0
    jitter: float = 0.1
    classify: Callable[[BaseException], str] = classify_failure
    sleep: Callable[[float], None] = time.sleep

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ReproError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ReproError("delays must be non-negative")

    def should_retry(self, error: BaseException, attempt: int) -> bool:
        """Whether attempt ``attempt`` failing with ``error`` gets another."""
        if attempt >= self.max_attempts:
            return False
        return self.classify(error) in RETRYABLE_KINDS

    def delay(self, attempt: int, key: str = "") -> float:
        """Seconds to wait after failed attempt ``attempt`` (1-based)."""
        base = min(
            self.base_delay * self.backoff ** (attempt - 1), self.max_delay
        )
        if self.jitter <= 0 or base <= 0:
            return base
        seed = zlib.crc32(key.encode("utf-8")) ^ attempt
        factor = 1.0 + random.Random(seed).uniform(0.0, self.jitter)
        return min(base * factor, self.max_delay)

    def wait(self, attempt: int, key: str = "") -> float:
        """Sleep the backoff delay for ``attempt``; returns the delay."""
        delay = self.delay(attempt, key)
        if delay > 0:
            self.sleep(delay)
        return delay


#: Stage names a fault hook is consulted at.
STAGE_EVALUATE = "evaluate"
STAGE_LOAD = "load"


@dataclass(frozen=True)
class Fault:
    """One planned failure: match a grid cell attempt, raise an exception.

    ``algorithm`` / ``dataset`` match exactly or via ``"*"`` (load-stage
    faults have no algorithm; they match ``"*"`` or ``""``).
    ``attempts`` is the set of 1-based attempt numbers that fail —
    ``None`` means every attempt (retry exhaustion). ``exception`` is an
    exception class or zero-argument factory producing the raised error.
    """

    dataset: str
    algorithm: str = "*"
    exception: Callable[[], BaseException] = TransientError
    attempts: frozenset[int] | None = frozenset({1})
    stage: str = STAGE_EVALUATE

    def matches(
        self, stage: str, algorithm: str, dataset: str, attempt: int
    ) -> bool:
        if stage != self.stage:
            return False
        if self.dataset not in ("*", dataset):
            return False
        if self.algorithm not in ("*", algorithm):
            return False
        return self.attempts is None or attempt in self.attempts

    def build(self) -> BaseException:
        error = self.exception()
        if not isinstance(error, BaseException):
            raise ReproError(
                f"fault exception factory returned {type(error).__name__}, "
                "not an exception"
            )
        if not error.args:
            error.args = (
                f"injected fault ({self.stage} {self.algorithm} "
                f"on {self.dataset})",
            )
        return error


@dataclass
class FaultPlan:
    """Deterministic fault-injection harness for the grid runner.

    Pass an instance as ``BenchmarkRunner(fault_injector=plan)``; the
    runner consults it before every dataset load and every evaluation
    attempt. Matching faults raise; every injection is appended to
    ``injected`` as ``(stage, algorithm, dataset, attempt)`` so tests can
    assert the exact failure schedule that ran.
    """

    faults: list[Fault] = field(default_factory=list)
    injected: list[tuple[str, str, str, int]] = field(default_factory=list)

    def fail(
        self,
        dataset: str,
        algorithm: str = "*",
        exception: Callable[[], BaseException] = TransientError,
        attempts: tuple[int, ...] | None = (1,),
        stage: str = STAGE_EVALUATE,
    ) -> "FaultPlan":
        """Add a fault; returns ``self`` for chaining."""
        self.faults.append(
            Fault(
                dataset=dataset,
                algorithm=algorithm,
                exception=exception,
                attempts=None if attempts is None else frozenset(attempts),
                stage=stage,
            )
        )
        return self

    def __call__(
        self, stage: str, algorithm: str, dataset: str, attempt: int
    ) -> None:
        for fault in self.faults:
            if fault.matches(stage, algorithm, dataset, attempt):
                self.injected.append((stage, algorithm, dataset, attempt))
                raise fault.build()
