"""The cross-validated evaluation harness (Section 6.1).

For every algorithm/dataset pair the paper runs stratified random-sampling
5-fold cross-validation and reports accuracy, F1-score, earliness, the
harmonic mean of accuracy and earliness, training time (minutes in the
paper; seconds here, unit-converted by the benches), and testing time.
:func:`evaluate` runs exactly that loop for one pair and returns a
:class:`EvaluationResult` holding per-fold and mean scores.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..data.dataset import TimeSeriesDataset
from ..data.splits import stratified_k_fold
from ..exceptions import DataError
from ..obs.trace import get_tracer
from ..stats.metrics import accuracy, earliness, f1_score, harmonic_mean
from .base import EarlyClassifier
from .prediction import collect_predictions
from .voting import wrap_for_dataset

__all__ = ["FoldResult", "EvaluationResult", "evaluate", "evaluate_predictions"]


@dataclass(frozen=True)
class FoldResult:
    """Scores of one cross-validation fold."""

    accuracy: float
    f1: float
    earliness: float
    harmonic_mean: float
    train_seconds: float
    test_seconds: float
    n_test: int


@dataclass(frozen=True)
class EvaluationResult:
    """Aggregated scores of one (algorithm, dataset) evaluation."""

    algorithm: str
    dataset: str
    folds: tuple[FoldResult, ...] = field(repr=False)

    def _mean(self, attribute: str) -> float:
        return float(np.mean([getattr(fold, attribute) for fold in self.folds]))

    @property
    def accuracy(self) -> float:
        """Mean accuracy over folds."""
        return self._mean("accuracy")

    @property
    def f1(self) -> float:
        """Mean macro-F1 over folds."""
        return self._mean("f1")

    @property
    def earliness(self) -> float:
        """Mean earliness over folds (lower is better)."""
        return self._mean("earliness")

    @property
    def harmonic_mean(self) -> float:
        """Mean harmonic mean of accuracy and (1 - earliness)."""
        return self._mean("harmonic_mean")

    @property
    def train_seconds(self) -> float:
        """Mean wall-clock training time per fold, in seconds."""
        return self._mean("train_seconds")

    @property
    def test_seconds(self) -> float:
        """Mean wall-clock test time per fold, in seconds."""
        return self._mean("test_seconds")

    @property
    def test_seconds_per_instance(self) -> float:
        """Mean per-instance prediction latency (drives Figure 13)."""
        totals = [fold.test_seconds for fold in self.folds]
        counts = [fold.n_test for fold in self.folds]
        return float(np.sum(totals) / max(np.sum(counts), 1))


def evaluate_predictions(
    dataset: TimeSeriesDataset,
    labels: np.ndarray,
    prefix_lengths: np.ndarray,
    train_seconds: float = 0.0,
    test_seconds: float = 0.0,
) -> FoldResult:
    """Score one fold's predictions with the Section 2.2 metrics."""
    acc = accuracy(dataset.labels, labels)
    f1 = f1_score(dataset.labels, labels)
    earliness_value = earliness(prefix_lengths, dataset.length)
    return FoldResult(
        accuracy=acc,
        f1=f1,
        earliness=earliness_value,
        harmonic_mean=harmonic_mean(acc, earliness_value),
        train_seconds=train_seconds,
        test_seconds=test_seconds,
        n_test=dataset.n_instances,
    )


def evaluate(
    factory: Callable[[], EarlyClassifier],
    dataset: TimeSeriesDataset,
    algorithm_name: str,
    n_folds: int = 5,
    seed: int = 0,
) -> EvaluationResult:
    """Stratified k-fold evaluation of one algorithm on one dataset.

    ``factory`` builds a fresh unfitted classifier per fold; multivariate
    datasets automatically route univariate algorithms through the voting
    ensemble (Section 6.1).
    """
    smallest_class = int(
        np.unique(dataset.labels, return_counts=True)[1].min()
    )
    folds = max(2, min(n_folds, smallest_class))
    if folds < 2:
        raise DataError("dataset too small for cross-validation")
    tracer = get_tracer()
    fold_results: list[FoldResult] = []
    splits = stratified_k_fold(dataset, folds, seed)
    for fold_index, (train_part, test_part) in enumerate(splits):
        with tracer.span(
            "fold",
            algorithm=algorithm_name,
            dataset=dataset.name,
            fold=fold_index,
        ) as fold_span:
            classifier = wrap_for_dataset(factory, dataset)
            # The perf_counter pairs below are the single source of truth
            # for train_seconds/test_seconds (spans mirror the measured
            # values as attributes, so a trace reproduces the report).
            with tracer.span(
                "fit", algorithm=algorithm_name, fold=fold_index
            ) as fit_span:
                start = time.perf_counter()
                classifier.train(train_part)
                train_seconds = time.perf_counter() - start
                fit_span.set_attribute("seconds", train_seconds)
            with tracer.span(
                "predict", algorithm=algorithm_name, fold=fold_index
            ) as predict_span:
                start = time.perf_counter()
                predictions = classifier.predict(test_part)
                test_seconds = time.perf_counter() - start
                predict_span.set_attribute("seconds", test_seconds)
                predict_span.set_attribute("n_test", test_part.n_instances)
            labels, prefixes = collect_predictions(predictions)
            fold_result = evaluate_predictions(
                test_part, labels, prefixes, train_seconds, test_seconds
            )
            fold_span.set_attribute("accuracy", fold_result.accuracy)
            fold_span.set_attribute("harmonic_mean", fold_result.harmonic_mean)
            fold_results.append(fold_result)
    return EvaluationResult(
        algorithm=algorithm_name,
        dataset=dataset.name,
        folds=tuple(fold_results),
    )
