"""Command-line interface of the benchmarking framework.

Mirrors the paper repository's ``cli.py``: pick algorithms and datasets,
run the cross-validated comparison, and print per-pair scores plus the
per-category aggregates. Installed as the ``etsc-bench`` console script
(with ``repro-cli`` as an alias).

Observability: ``--trace PATH`` writes a JSONL span trace of the run,
``--log-level``/``--progress`` turn on logging and per-cell progress
telemetry (see ``docs/observability.md``).

Fault tolerance: ``--checkpoint PATH`` appends every cell outcome to a
JSONL checkpoint, ``--resume`` restarts a killed run from it (skipping
completed cells), and ``--retries N`` re-attempts transiently-failed
cells with exponential backoff (see ``docs/resilience.md``).

Parallelism: ``--workers N`` evaluates up to N grid cells concurrently
in forked worker processes; reports, checkpoints, and traces merge
deterministically (see ``docs/performance.md``).

Serving: ``etsc-bench serve-sim ...`` replays a dataset through the
resilient streaming endpoint — input guards, deadlines, fallback
degradation, circuit breakers — and prints a feasibility/degradation
report (see ``docs/serving.md``).

SLOs: ``etsc-bench serve-slo ...`` replays declarative scenario configs
(arrival process, stream mix, service model, deadline, faults) and
reports latency quantiles to p99.9, jitter, throughput, and
deadline-miss/degraded-decision rates (see ``docs/slo.md``).

Fleet: ``etsc-bench serve-fleet ...`` serves the same scenarios through
a multi-tenant sharded fleet — bounded admission with load-shedding
policies, per-shard health tracking, automatic failover of SIGKILLed or
hung shard workers — and reports per-shard and fleet-wide SLOs plus
shed/degraded/failover rates (see ``docs/serving.md``).

Robustness: ``etsc-bench robustness ...`` evaluates algorithms on
deterministically corrupted dataset variants (missing blocks, dropout,
noise, warp, label noise, concept drift, ...) and reports degradation
curves over severity plus a robustness-AUC per algorithm (see
``docs/robustness.md``).

Examples
--------
List what is available::

    etsc-bench --list

Run two algorithms on two datasets at reduced scale::

    etsc-bench --algorithms ECTS TEASER --datasets PowerCons Biological \
        --scale 0.2 --folds 3
"""

from __future__ import annotations

import argparse
import sys

from .categorization import category_names
from .registry import default_algorithms, default_datasets, extended_algorithms
from .runner import BenchmarkRunner

__all__ = ["main", "build_parser", "merge_checkpoints_main"]


def _workers_argument(text: str):
    """``--workers`` accepts a positive integer or the literal ``auto``."""
    if text == "auto":
        return "auto"
    try:
        return int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {text!r}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="etsc-bench",
        description=(
            "Evaluate early time-series classification algorithms "
            "(EDBT 2024 framework reproduction)"
        ),
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list registered algorithms and datasets, then exit",
    )
    parser.add_argument(
        "--algorithms",
        nargs="*",
        default=None,
        metavar="NAME",
        help="algorithms to run (default: all registered)",
    )
    parser.add_argument(
        "--datasets",
        nargs="*",
        default=None,
        metavar="NAME",
        help="datasets to run (default: all registered)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.1,
        help="dataset size scale factor (1.0 = published sizes)",
    )
    parser.add_argument(
        "--folds", type=int, default=5, help="cross-validation folds"
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--budget-seconds",
        type=float,
        default=float("inf"),
        help="per-pair time budget (the paper used 48 hours)",
    )
    parser.add_argument(
        "--paper-params",
        action="store_true",
        help="use the full Table 4 parameters instead of the fast profile",
    )
    parser.add_argument(
        "--extended",
        action="store_true",
        help="also run the extension algorithms (MORI-SR, FIXED-50)",
    )
    parser.add_argument(
        "--save-report",
        metavar="PATH",
        default=None,
        help="write the raw campaign results to a JSON file",
    )
    parser.add_argument(
        "--significance",
        action="store_true",
        help="print Friedman/Nemenyi average-rank analysis of the run",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help=(
            "write a JSONL trace of the run (nested grid/cell/fold/"
            "fit/predict spans); inspect with python -m repro.obs.summary"
        ),
    )
    parser.add_argument(
        "--log-level",
        metavar="LEVEL",
        default=None,
        help="enable repro logging at LEVEL (debug/info/warning/error)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help=(
            "log per-cell progress lines (start/finish/timeout with "
            "elapsed time and grid completion %%); implies --log-level info"
        ),
    )
    parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help=(
            "append every cell outcome to a JSONL checkpoint at PATH as "
            "the grid runs, so a killed run can be resumed with --resume"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume the grid from the checkpoint at --checkpoint PATH, "
            "skipping completed cells (the checkpoint's grid fingerprint "
            "must match this invocation)"
        ),
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help=(
            "retry transiently-failed cells up to N extra times with "
            "exponential backoff (timeouts and permanent failures are "
            "never retried)"
        ),
    )
    parser.add_argument(
        "--retry-delay",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="base backoff delay for --retries (doubles per attempt)",
    )
    parser.add_argument(
        "--workers",
        type=_workers_argument,
        default=1,
        metavar="N",
        help=(
            "evaluate up to N grid cells in parallel worker processes "
            "(default 1 = serial), or 'auto' to match the cores this "
            "process may actually use (sched_getaffinity; clamps to 1 "
            "on a 1-core box instead of oversubscribing); results and "
            "checkpoints are merged in canonical order, identical to a "
            "serial run"
        ),
    )
    parser.add_argument(
        "--scheduler",
        choices=("lpt", "fifo"),
        default="lpt",
        help=(
            "parallel dispatch policy: lpt (default) starts the "
            "longest-estimated cells first using the cost model; fifo "
            "submits in canonical grid order (artifacts are identical "
            "either way)"
        ),
    )
    parser.add_argument(
        "--shard",
        metavar="I/N",
        default=None,
        help=(
            "run only the I-th of N cost-balanced bins of the grid "
            "(0-based, e.g. 0/2); requires --checkpoint DIR, a directory "
            "shared by all shards — each writes shard-I.jsonl there and "
            "steals unclaimed cells from idle siblings; combine with "
            "'etsc-bench merge-checkpoints DIR' for the canonical report"
        ),
    )
    parser.add_argument(
        "--no-steal",
        action="store_true",
        help=(
            "in --shard mode, never steal cells from sibling bins "
            "(strict partitioning)"
        ),
    )
    parser.add_argument(
        "--kernel-backend",
        metavar="NAME",
        default=None,
        help=(
            "kernel backend for the hot numerical ops (naive/numpy/"
            "numpy32; default: $REPRO_KERNEL_BACKEND or numpy); forked "
            "grid workers inherit the selection"
        ),
    )
    return parser


def _print_category_table(report, metric: str, out) -> None:
    table = report.metric_by_category(metric)
    if not table:
        return
    algorithms = report.algorithms()
    print(f"\n{metric} by dataset category:", file=out)
    header = f"{'category':14s}" + "".join(
        f"{name:>11s}" for name in algorithms
    )
    print(header, file=out)
    for category in category_names():
        row = table.get(category)
        if not row:
            continue
        cells = "".join(
            f"{row[name]:>11.3f}" if name in row else f"{'--':>11s}"
            for name in algorithms
        )
        print(f"{category:14s}{cells}", file=out)


def main(argv: list[str] | None = None, out=None) -> int:
    """Entry point; returns a process exit code."""
    out = out or sys.stdout
    if argv is None:
        argv = sys.argv[1:]
    # The historical interface is flag-only; subcommands dispatch on the
    # first positional token so existing ``etsc-bench --flags`` usage is
    # untouched.
    if argv and argv[0] == "serve-sim":
        from ..serve.simulate import main as serve_sim_main

        return serve_sim_main(argv[1:], out)
    if argv and argv[0] == "serve-slo":
        from ..slo.cli import main as serve_slo_main

        return serve_slo_main(argv[1:], out)
    if argv and argv[0] == "serve-fleet":
        from ..fleet.cli import main as serve_fleet_main

        return serve_fleet_main(argv[1:], out)
    if argv and argv[0] == "robustness":
        from ..robustness.cli import main as robustness_main

        return robustness_main(argv[1:], out)
    if argv and argv[0] == "merge-checkpoints":
        return merge_checkpoints_main(argv[1:], out)
    arguments = build_parser().parse_args(argv)
    if arguments.kernel_backend:
        from ..exceptions import ConfigurationError
        from ..stats.backends import set_default_backend

        try:
            set_default_backend(arguments.kernel_backend)
        except ConfigurationError as error:
            print(f"error: {error}", file=out)
            return 2
    if arguments.log_level or arguments.progress:
        from ..obs.logging import configure_logging

        configure_logging(arguments.log_level or "INFO")
    build_registry = (
        extended_algorithms if arguments.extended else default_algorithms
    )
    algorithms = build_registry(fast=not arguments.paper_params)
    datasets = default_datasets(scale=arguments.scale, seed=arguments.seed)

    if arguments.list:
        print("algorithms:", file=out)
        for info in algorithms:
            multivariate = "multivariate" if info.supports_multivariate else "univariate"
            print(f"  {info.name:10s} {info.category:22s} {multivariate}", file=out)
        print("datasets:", file=out)
        for name in datasets.names():
            print(f"  {name}", file=out)
        return 0

    if arguments.resume and not arguments.checkpoint:
        print(
            "error: --resume requires --checkpoint PATH (the file to "
            "resume from)",
            file=out,
        )
        return 2
    if arguments.shard is not None and not arguments.checkpoint:
        print(
            "error: --shard requires --checkpoint DIR (the directory "
            "all shards share)",
            file=out,
        )
        return 2
    if arguments.shard is not None and arguments.resume:
        print(
            "error: --shard resumes implicitly from its own "
            "shard-<i>.jsonl; drop --resume",
            file=out,
        )
        return 2
    retry_policy = None
    if arguments.retries > 0:
        from .resilience import RetryPolicy

        retry_policy = RetryPolicy(
            max_attempts=arguments.retries + 1,
            base_delay=arguments.retry_delay,
        )
    from ..exceptions import CheckpointError, ConfigurationError

    try:
        runner = BenchmarkRunner(
            algorithms,
            datasets,
            n_folds=arguments.folds,
            time_budget_seconds=arguments.budget_seconds,
            wide_threshold=max(2, int(1300 * arguments.scale)),
            large_threshold=max(2, int(1000 * arguments.scale)),
            seed=arguments.seed,
            progress=lambda line: print(line, file=out),
            retry_policy=retry_policy,
            checkpoint_path=arguments.checkpoint,
            resume_from=arguments.checkpoint if arguments.resume else None,
            workers=arguments.workers,
            scheduler=arguments.scheduler,
            shard=arguments.shard,
            shard_steal=not arguments.no_steal,
            # The runner cannot see the scale factor or registry profile,
            # but both change the grid's contents — fold them into the
            # fingerprint so --resume refuses a mismatched invocation.
            fingerprint_extra={
                "scale": arguments.scale,
                "extended": arguments.extended,
                "paper_params": arguments.paper_params,
            },
        )
    except ConfigurationError as error:
        print(f"error: {error}", file=out)
        return 2

    try:
        if arguments.trace:
            from ..obs.events import TraceWriter
            from ..obs.trace import Tracer, use_tracer

            with TraceWriter(arguments.trace) as writer:
                with use_tracer(Tracer(on_finish=writer.write_span)):
                    report = runner.run(
                        arguments.algorithms, arguments.datasets
                    )
                n_spans = writer.n_spans
            print(
                f"\ntrace written to {arguments.trace} ({n_spans} spans); "
                f"summarise with: "
                f"python -m repro.obs.summary {arguments.trace}",
                file=out,
            )
        else:
            report = runner.run(arguments.algorithms, arguments.datasets)
    except CheckpointError as error:
        print(f"error: {error}", file=out)
        return 2
    if arguments.shard is not None:
        snapshot = runner.metrics.snapshot()
        print(
            f"\nshard {arguments.shard}: "
            f"{snapshot.get('sched.cells_scheduled', 0)} cells evaluated "
            f"({snapshot.get('sched.steals', 0)} stolen); merge the full "
            f"grid with: etsc-bench merge-checkpoints "
            f"{arguments.checkpoint}",
            file=out,
        )
    for metric in ("accuracy", "f1", "earliness", "harmonic_mean"):
        _print_category_table(report, metric, out)
    if report.failures:
        print("\nfailures:", file=out)
        for (algorithm, dataset), reason in report.failures.items():
            print(f"  {algorithm} on {dataset}: {reason}", file=out)
    if arguments.significance:
        from ..exceptions import ReproError
        from .significance import compare_algorithms

        try:
            analysis = compare_algorithms(report, metric="harmonic_mean")
        except ReproError as error:
            print(f"\nsignificance analysis unavailable: {error}", file=out)
        else:
            print("\naverage ranks (harmonic mean):", file=out)
            print(analysis.to_markdown(), file=out)
    if arguments.save_report:
        from .results import save_report

        save_report(report, arguments.save_report)
        print(f"\nreport saved to {arguments.save_report}", file=out)
    return 0


def merge_checkpoints_main(argv: list[str], out=None) -> int:
    """``etsc-bench merge-checkpoints DIR``: shard files -> one artifact.

    Loads every ``shard-*.jsonl`` in the directory, validates that all
    fingerprints describe the same grid, and rebuilds the canonical
    single checkpoint/report exactly as one uninterrupted run would have
    written them. Missing cells (a shard never ran, or died before
    finishing) are an error unless ``--allow-partial``.
    """
    out = out or sys.stdout
    parser = argparse.ArgumentParser(
        prog="etsc-bench merge-checkpoints",
        description=(
            "merge shard-*.jsonl checkpoints from a --shard grid run "
            "into the canonical single checkpoint and report"
        ),
    )
    parser.add_argument(
        "directory",
        help="the shared checkpoint directory the shards wrote into",
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help=(
            "write the merged checkpoint (canonical dataset-major "
            "order, byte-compatible with a single-run checkpoint) here"
        ),
    )
    parser.add_argument(
        "--save-report",
        metavar="PATH",
        default=None,
        help="write the merged campaign report to a JSON file",
    )
    parser.add_argument(
        "--allow-partial",
        action="store_true",
        help=(
            "merge even if some grid cells have no outcome in any shard "
            "(default: error listing the missing cells)"
        ),
    )
    arguments = parser.parse_args(argv)
    from ..exceptions import CheckpointError
    from .sched import (
        grid_cells,
        load_shard_checkpoints,
        merge_checkpoint_states,
        missing_cells,
        report_from_state,
        write_canonical_checkpoint,
    )

    try:
        states = load_shard_checkpoints(arguments.directory)
        merged = merge_checkpoint_states(states)
    except CheckpointError as error:
        print(f"error: {error}", file=out)
        return 2
    missing = missing_cells(merged)
    total = len(grid_cells(merged.fingerprint))
    print(
        f"merged {len(states)} shard checkpoints: "
        f"{len(merged.results)} results, {len(merged.failures)} failures "
        f"({total - len(missing)}/{total} grid cells)",
        file=out,
    )
    if missing and not arguments.allow_partial:
        print(
            f"error: {len(missing)} cells have no outcome in any shard:",
            file=out,
        )
        for algorithm, dataset in missing[:20]:
            print(f"  {algorithm} on {dataset}", file=out)
        if len(missing) > 20:
            print(f"  ... and {len(missing) - 20} more", file=out)
        print(
            "re-run the missing shards, or pass --allow-partial to "
            "merge what completed",
            file=out,
        )
        return 1
    report = report_from_state(merged)
    for metric in ("accuracy", "f1", "earliness", "harmonic_mean"):
        _print_category_table(report, metric, out)
    if arguments.output:
        write_canonical_checkpoint(merged, arguments.output)
        print(f"\nmerged checkpoint written to {arguments.output}", file=out)
    if arguments.save_report:
        from .results import save_report

        save_report(report, arguments.save_report)
        print(f"report saved to {arguments.save_report}", file=out)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    raise SystemExit(main())
