"""Persistence and rendering of benchmark reports.

A :class:`~repro.core.runner.RunReport` holds everything one experimental
campaign produced. This module serialises reports to JSON (so expensive
grids can be archived and re-rendered without re-running), loads them back,
and renders the per-dataset score matrix as markdown — the per-dataset
results table the paper ships as supplementary material.
"""

from __future__ import annotations

import json
import os
from typing import Iterable

from typing import TYPE_CHECKING

from ..exceptions import DataFormatError
from .categorization import DatasetCategories
from .evaluation import EvaluationResult, FoldResult

if TYPE_CHECKING:  # break the runner -> checkpoint -> results cycle
    from .runner import RunReport

__all__ = [
    "save_report",
    "load_report",
    "report_to_markdown",
    "fold_to_dict",
    "fold_from_dict",
    "categories_from_names",
]

_FORMAT_VERSION = 1


def fold_to_dict(fold: FoldResult) -> dict:
    """JSON-serialisable form of one fold (shared with checkpoints)."""
    return {
        "accuracy": fold.accuracy,
        "f1": fold.f1,
        "earliness": fold.earliness,
        "harmonic_mean": fold.harmonic_mean,
        "train_seconds": fold.train_seconds,
        "test_seconds": fold.test_seconds,
        "n_test": fold.n_test,
    }


def fold_from_dict(payload: dict) -> FoldResult:
    """Inverse of :func:`fold_to_dict`."""
    return FoldResult(**payload)


# Backwards-compatible alias (pre-resilience name).
_fold_to_dict = fold_to_dict


def save_report(report: RunReport, path: str | os.PathLike) -> None:
    """Serialise a run report (results, failures, categories) to JSON."""
    payload = {
        "version": _FORMAT_VERSION,
        "results": [
            {
                "algorithm": algorithm,
                "dataset": dataset,
                "folds": [fold_to_dict(fold) for fold in result.folds],
            }
            for (algorithm, dataset), result in report.results.items()
        ],
        "failures": [
            {"algorithm": algorithm, "dataset": dataset, "reason": reason}
            for (algorithm, dataset), reason in report.failures.items()
        ],
        "categories": {
            dataset: categories.names()
            for dataset, categories in report.categories.items()
        },
        "frequencies": dict(report._frequencies),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def categories_from_names(names: Iterable[str]) -> DatasetCategories:
    """Rebuild a :class:`DatasetCategories` from its flag-name list."""
    names = set(names)
    return DatasetCategories(
        wide="Wide" in names,
        large="Large" in names,
        unstable="Unstable" in names,
        imbalanced="Imbalanced" in names,
        multiclass="Multiclass" in names,
        common="Common" in names,
        univariate="Univariate" in names,
        multivariate="Multivariate" in names,
    )


def load_report(path: str | os.PathLike) -> RunReport:
    """Load a report previously written by :func:`save_report`."""
    from .runner import RunReport

    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("version") != _FORMAT_VERSION:
        raise DataFormatError(
            f"{path}: unsupported report version {payload.get('version')!r}"
        )
    report = RunReport()
    for entry in payload["results"]:
        folds = tuple(fold_from_dict(fold) for fold in entry["folds"])
        report.results[(entry["algorithm"], entry["dataset"])] = (
            EvaluationResult(entry["algorithm"], entry["dataset"], folds)
        )
    for entry in payload["failures"]:
        report.failures[(entry["algorithm"], entry["dataset"])] = entry[
            "reason"
        ]
    for dataset, names in payload["categories"].items():
        report.categories[dataset] = categories_from_names(names)
    report._frequencies.update(payload.get("frequencies", {}))
    return report


def report_to_markdown(report: RunReport, decimals: int = 3) -> str:
    """Per-dataset score matrix as markdown (accuracy/earliness/hm).

    One block per metric, rows = datasets, columns = algorithms, failed
    pairs shown as ``--`` — the layout of the paper's supplementary
    per-dataset tables.
    """
    algorithms = report.algorithms()
    datasets = report.datasets()
    blocks = []
    for metric in ("accuracy", "f1", "earliness", "harmonic_mean"):
        lines = [
            f"## {metric}",
            "",
            "| dataset | " + " | ".join(algorithms) + " |",
            "|" + "---|" * (len(algorithms) + 1),
        ]
        for dataset in datasets:
            cells = []
            for algorithm in algorithms:
                result = report.results.get((algorithm, dataset))
                if result is None:
                    cells.append("--")
                else:
                    cells.append(f"{getattr(result, metric):.{decimals}f}")
            lines.append(f"| {dataset} | " + " | ".join(cells) + " |")
        blocks.append("\n".join(lines))
    if report.failures:
        lines = ["## failures", ""]
        for (algorithm, dataset), reason in report.failures.items():
            lines.append(f"- {algorithm} on {dataset}: {reason}")
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)
