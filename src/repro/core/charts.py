"""Plotting-free chart rendering for benchmark reports.

The paper presents Figures 9-12 as grouped bar charts and Figure 13 as a
heatmap. This module renders the same artefacts as Unicode text so the
benches (and the CLI) can show them in a terminal and archive them in the
markdown reports without a plotting dependency.
"""

from __future__ import annotations

from ..exceptions import DataError

__all__ = ["horizontal_bars", "grouped_bars", "heatmap"]

_BLOCKS = " ▏▎▍▌▋▊▉█"


def _bar(value: float, maximum: float, width: int) -> str:
    """A left-aligned bar of ``value / maximum`` scaled to ``width`` cells."""
    if maximum <= 0:
        return ""
    fraction = max(0.0, min(1.0, value / maximum))
    cells = fraction * width
    full = int(cells)
    remainder = cells - full
    partial_index = int(round(remainder * (len(_BLOCKS) - 1)))
    partial = _BLOCKS[partial_index] if partial_index > 0 else ""
    return "█" * full + partial


def horizontal_bars(
    values: dict[str, float],
    width: int = 40,
    maximum: float | None = None,
    decimals: int = 3,
) -> str:
    """Render ``{label: value}`` as labelled horizontal bars."""
    if not values:
        raise DataError("nothing to chart")
    label_width = max(len(label) for label in values)
    maximum = maximum if maximum is not None else max(values.values())
    maximum = max(maximum, 1e-12)
    lines = []
    for label, value in values.items():
        bar = _bar(value, maximum, width)
        lines.append(
            f"{label:<{label_width}} {value:>{decimals + 4}.{decimals}f} {bar}"
        )
    return "\n".join(lines)


def grouped_bars(
    table: dict[str, dict[str, float]],
    width: int = 40,
    decimals: int = 3,
) -> str:
    """Render ``{group: {label: value}}`` as per-group bar blocks.

    All groups share one scale so bars are comparable across groups — the
    property that makes the paper's per-category bar charts readable.
    """
    if not table:
        raise DataError("nothing to chart")
    maximum = max(
        (value for row in table.values() for value in row.values()),
        default=0.0,
    )
    blocks = []
    for group, row in table.items():
        blocks.append(f"{group}:")
        blocks.append(
            horizontal_bars(row, width=width, maximum=maximum,
                            decimals=decimals)
        )
        blocks.append("")
    return "\n".join(blocks).rstrip()


def heatmap(
    cells: dict[tuple[str, str], float | None],
    feasible_below: float = 1.0,
) -> str:
    """Render Figure 13-style cells as a compact matrix.

    ``cells[(row, column)]`` is the latency ratio; ``None`` marks failures
    (the paper's hatched cells). Feasible cells show ``o``, infeasible
    ``X``, failures ``#``, absences ``.``.
    """
    if not cells:
        raise DataError("nothing to chart")
    rows = sorted({row for row, _ in cells})
    columns = sorted({column for _, column in cells})
    row_width = max(len(row) for row in rows)
    column_width = max(max(len(c) for c in columns), 4)
    header = " " * row_width + " " + " ".join(
        f"{column:>{column_width}}" for column in columns
    )
    lines = [header]
    for row in rows:
        rendered = []
        for column in columns:
            value = cells.get((row, column), "absent")
            if value == "absent":
                rendered.append("." .rjust(column_width))
            elif value is None:
                rendered.append("#".rjust(column_width))
            elif value < feasible_below:
                rendered.append("o".rjust(column_width))
            else:
                rendered.append("X".rjust(column_width))
        lines.append(f"{row:<{row_width}} " + " ".join(rendered))
    lines.append("")
    lines.append("legend: o feasible, X too slow, # failed to train, . absent")
    return "\n".join(lines)
