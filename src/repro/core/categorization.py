"""Dataset categorisation reproducing Table 3 of the paper.

Datasets are grouped by measurable characteristics that the evaluation then
aggregates over:

* **Wide** — series length > 1300 time-points;
* **Large** — more than 1000 instances (the dataset's *height*);
* **Unstable** — coefficient of variation (std over all values divided by
  their mean) > 1.08;
* **Imbalanced** — class imbalance ratio (largest class over smallest) >
  1.73;
* **Multiclass** — more than two class labels;
* **Common** — none of the above;
* **Univariate** / **Multivariate** — by variable count.

The CoV/CIR thresholds are the medians the paper derived from its twelve
datasets; length/height thresholds were set empirically (Section 5.4). All
are exposed as module constants so alternative groupings can be explored.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..data.dataset import TimeSeriesDataset

__all__ = [
    "DatasetCategories",
    "categorize",
    "category_names",
    "canonical_categories",
    "PAPER_TABLE3",
    "WIDE_LENGTH_THRESHOLD",
    "LARGE_HEIGHT_THRESHOLD",
    "UNSTABLE_COV_THRESHOLD",
    "IMBALANCED_CIR_THRESHOLD",
]

WIDE_LENGTH_THRESHOLD = 1300
LARGE_HEIGHT_THRESHOLD = 1000
UNSTABLE_COV_THRESHOLD = 1.08
IMBALANCED_CIR_THRESHOLD = 1.73

_CATEGORY_ORDER = (
    "Wide",
    "Large",
    "Unstable",
    "Imbalanced",
    "Multiclass",
    "Common",
    "Univariate",
    "Multivariate",
)


@dataclass(frozen=True)
class DatasetCategories:
    """The Table 3 category flags of one dataset."""

    wide: bool
    large: bool
    unstable: bool
    imbalanced: bool
    multiclass: bool
    common: bool
    univariate: bool
    multivariate: bool

    def names(self) -> list[str]:
        """The category names this dataset belongs to, in Table 3 order."""
        flags = {
            "Wide": self.wide,
            "Large": self.large,
            "Unstable": self.unstable,
            "Imbalanced": self.imbalanced,
            "Multiclass": self.multiclass,
            "Common": self.common,
            "Univariate": self.univariate,
            "Multivariate": self.multivariate,
        }
        return [name for name in _CATEGORY_ORDER if flags[name]]


def category_names() -> tuple[str, ...]:
    """All category names in the order Table 3 lists them."""
    return _CATEGORY_ORDER


# Table 3 verbatim: the categories the paper assigns to its 12 datasets.
# Reduced-scale synthetic stand-ins keep these canonical assignments (their
# measured statistics reproduce them at scale=1.0; tests verify this).
PAPER_TABLE3: dict[str, tuple[str, ...]] = {
    "BasicMotions": ("Unstable", "Multiclass", "Multivariate"),
    "Biological": ("Imbalanced", "Multivariate"),
    "DodgerLoopDay": ("Multiclass", "Univariate"),
    "DodgerLoopGame": ("Common", "Univariate"),
    "DodgerLoopWeekend": ("Imbalanced", "Univariate"),
    "HouseTwenty": ("Wide", "Unstable", "Univariate"),
    "LSST": ("Large", "Unstable", "Imbalanced", "Multiclass", "Multivariate"),
    "Maritime": ("Large", "Unstable", "Imbalanced", "Multivariate"),
    "PickupGestureWiimoteZ": ("Multiclass", "Univariate"),
    "PLAID": (
        "Wide",
        "Large",
        "Unstable",
        "Imbalanced",
        "Multiclass",
        "Univariate",
    ),
    "PowerCons": ("Common", "Univariate"),
    "SharePriceIncrease": ("Large", "Unstable", "Imbalanced", "Univariate"),
}


def canonical_categories(name: str) -> DatasetCategories | None:
    """Table 3 category flags for one of the paper's datasets, else None."""
    names = PAPER_TABLE3.get(name)
    if names is None:
        return None
    return DatasetCategories(
        wide="Wide" in names,
        large="Large" in names,
        unstable="Unstable" in names,
        imbalanced="Imbalanced" in names,
        multiclass="Multiclass" in names,
        common="Common" in names,
        univariate="Univariate" in names,
        multivariate="Multivariate" in names,
    )


def categorize(
    dataset: TimeSeriesDataset,
    wide_threshold: int = WIDE_LENGTH_THRESHOLD,
    large_threshold: int = LARGE_HEIGHT_THRESHOLD,
    unstable_threshold: float = UNSTABLE_COV_THRESHOLD,
    imbalanced_threshold: float = IMBALANCED_CIR_THRESHOLD,
) -> DatasetCategories:
    """Compute the Table 3 category flags for a dataset."""
    wide = dataset.length > wide_threshold
    large = dataset.n_instances > large_threshold
    unstable = dataset.coefficient_of_variation() > unstable_threshold
    imbalanced = dataset.class_imbalance_ratio() > imbalanced_threshold
    multiclass = dataset.n_classes > 2
    common = not (wide or large or unstable or imbalanced or multiclass)
    return DatasetCategories(
        wide=wide,
        large=large,
        unstable=unstable,
        imbalanced=imbalanced,
        multiclass=multiclass,
        common=common,
        univariate=dataset.is_univariate,
        multivariate=not dataset.is_univariate,
    )
