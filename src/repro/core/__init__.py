"""Framework core: interfaces, evaluation harness, registries, runner."""

from .base import EarlyClassifier, FullTSClassifier
from .categorization import (
    PAPER_TABLE3,
    DatasetCategories,
    canonical_categories,
    categorize,
    category_names,
)
from .evaluation import EvaluationResult, FoldResult, evaluate
from .prediction import EarlyPrediction, collect_predictions
from .registry import (
    AlgorithmInfo,
    AlgorithmRegistry,
    DatasetRegistry,
    default_algorithms,
    default_datasets,
)
from .charts import grouped_bars, heatmap, horizontal_bars
from .checkpoint import (
    CheckpointState,
    CheckpointWriter,
    grid_fingerprint,
    load_checkpoint,
)
from .resilience import (
    FaultPlan,
    RetryPolicy,
    classify_failure,
    failure_reason,
)
from .pool import available_cores
from .results import load_report, report_to_markdown, save_report
from .sched import (
    CellEstimate,
    ClaimBoard,
    CostModel,
    ShardSpec,
    lpt_order,
    merge_checkpoint_states,
    partition_cells,
    resolve_workers,
)
from .significance import (
    SignificanceReport,
    compare_algorithms,
    friedman_test,
    nemenyi_critical_difference,
    rank_matrix,
)
from .streaming import LatencySummary, StreamingDecision, StreamingSession
from .runner import BenchmarkRunner, RunReport, aggregate_by_category
from .timeouts import EvaluationTimeout, time_limit
from .tuning import GridSearchETSC, parameter_grid
from .voting import VotingEnsemble, wrap_for_dataset

__all__ = [
    "EarlyClassifier",
    "FullTSClassifier",
    "EarlyPrediction",
    "collect_predictions",
    "DatasetCategories",
    "categorize",
    "category_names",
    "canonical_categories",
    "PAPER_TABLE3",
    "EvaluationResult",
    "FoldResult",
    "evaluate",
    "AlgorithmInfo",
    "AlgorithmRegistry",
    "DatasetRegistry",
    "default_algorithms",
    "default_datasets",
    "BenchmarkRunner",
    "RunReport",
    "aggregate_by_category",
    "VotingEnsemble",
    "wrap_for_dataset",
    "save_report",
    "load_report",
    "report_to_markdown",
    "EvaluationTimeout",
    "time_limit",
    "RetryPolicy",
    "FaultPlan",
    "classify_failure",
    "failure_reason",
    "CheckpointState",
    "CheckpointWriter",
    "grid_fingerprint",
    "load_checkpoint",
    "GridSearchETSC",
    "parameter_grid",
    "grouped_bars",
    "heatmap",
    "horizontal_bars",
    "SignificanceReport",
    "compare_algorithms",
    "friedman_test",
    "nemenyi_critical_difference",
    "rank_matrix",
    "StreamingDecision",
    "StreamingSession",
    "LatencySummary",
    "CellEstimate",
    "ClaimBoard",
    "CostModel",
    "ShardSpec",
    "available_cores",
    "lpt_order",
    "merge_checkpoint_states",
    "partition_cells",
    "resolve_workers",
]
