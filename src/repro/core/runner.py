"""Grid orchestration: datasets x algorithms -> per-category aggregates.

This is the outer loop of the paper's empirical comparison (Section 6):
run every registered algorithm on every registered dataset under stratified
k-fold cross-validation, respect a per-pair time budget (the paper kills
runs after 48 hours — EDSC never finished the 'Wide' datasets), and
aggregate each metric over the Table 3 dataset categories to produce the
series plotted in Figures 9-12 and the online-feasibility heatmap of
Figure 13.

Fault tolerance: every cell (including the dataset load) is crash-
isolated — *any* exception is caught, classified (timeout / transient /
permanent / data-format, see :mod:`repro.core.resilience`), recorded in
``RunReport.failures`` with traceback context on the cell span, and the
grid keeps going. Transient failures are retried with exponential
backoff. With a checkpoint attached, each cell's outcome is appended to
an append-only JSONL file as it completes, and ``resume_from=`` restores
a killed run, skipping finished cells (see
:mod:`repro.core.checkpoint`).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..data.dataset import TimeSeriesDataset
from ..exceptions import ReproError
from ..obs.logging import GridProgress, get_logger
from ..obs.metrics import MetricsRegistry
from ..obs.trace import get_tracer
from .categorization import (
    DatasetCategories,
    canonical_categories,
    categorize,
    category_names,
)
from .checkpoint import CheckpointWriter, grid_fingerprint, load_checkpoint
from .evaluation import EvaluationResult, evaluate
from .registry import AlgorithmRegistry, DatasetRegistry
from .resilience import (
    TIMEOUT,
    RetryPolicy,
    failure_reason,
    format_traceback,
)
from .timeouts import time_limit

_logger = get_logger("core.runner")

__all__ = ["RunReport", "BenchmarkRunner", "aggregate_by_category"]

_METRIC_ATTRIBUTES = (
    "accuracy",
    "f1",
    "earliness",
    "harmonic_mean",
    "train_seconds",
    "test_seconds",
)


@dataclass
class RunReport:
    """Everything one grid run produced.

    ``results[(algorithm, dataset)]`` holds the cross-validated scores;
    ``failures[(algorithm, dataset)]`` holds the reason a pair was skipped
    (timeout or error) — mirroring the hatched cells of Figure 13.
    """

    results: dict[tuple[str, str], EvaluationResult] = field(
        default_factory=dict
    )
    failures: dict[tuple[str, str], str] = field(default_factory=dict)
    categories: dict[str, DatasetCategories] = field(default_factory=dict)

    def algorithms(self) -> list[str]:
        """Algorithm names appearing in results or failures."""
        names: list[str] = []
        for algorithm, _ in list(self.results) + list(self.failures):
            if algorithm not in names:
                names.append(algorithm)
        return names

    def datasets(self) -> list[str]:
        """Dataset names appearing in results or failures."""
        names: list[str] = []
        for _, dataset in list(self.results) + list(self.failures):
            if dataset not in names:
                names.append(dataset)
        return names

    def metric_by_category(self, metric: str) -> dict[str, dict[str, float]]:
        """``{category: {algorithm: mean metric}}`` over member datasets."""
        if metric not in _METRIC_ATTRIBUTES:
            raise ReproError(
                f"metric must be one of {_METRIC_ATTRIBUTES}, got {metric!r}"
            )
        return aggregate_by_category(self.results, self.categories, metric)

    def online_feasibility(self) -> dict[tuple[str, str], float | None]:
        """Figure 13 cells: per-instance test time over observation period.

        Values below 1 mean the algorithm keeps up with the stream; ``None``
        marks pairs that failed to train (the hatched cells). Datasets
        without a known observation frequency are skipped.
        """
        cells: dict[tuple[str, str], float | None] = {}
        frequencies: dict[str, float] = {}
        for (algorithm, dataset), result in self.results.items():
            frequency = self._frequencies.get(dataset)
            if frequency is None or frequency <= 0:
                continue
            cells[(algorithm, dataset)] = (
                result.test_seconds_per_instance / frequency
            )
        for key in self.failures:
            if key[1] in self._frequencies:
                cells[key] = None
        return cells

    _frequencies: dict[str, float] = field(default_factory=dict)


def aggregate_by_category(
    results: dict[tuple[str, str], EvaluationResult],
    categories: dict[str, DatasetCategories],
    metric: str,
) -> dict[str, dict[str, float]]:
    """Average a metric per (category, algorithm) over member datasets.

    Pairs that failed are simply absent — exactly how the paper's bar
    charts omit EDSC on 'Wide' datasets.
    """
    table: dict[str, dict[str, list[float]]] = {
        name: {} for name in category_names()
    }
    for (algorithm, dataset), result in results.items():
        dataset_categories = categories.get(dataset)
        if dataset_categories is None:
            continue
        value = float(getattr(result, metric))
        for category in dataset_categories.names():
            table[category].setdefault(algorithm, []).append(value)
    return {
        category: {
            algorithm: float(np.mean(values))
            for algorithm, values in per_algorithm.items()
        }
        for category, per_algorithm in table.items()
        if per_algorithm
    }


class BenchmarkRunner:
    """Run the full algorithms x datasets grid with budgets and fallbacks.

    Parameters
    ----------
    algorithms, datasets:
        The registries to iterate.
    n_folds:
        Cross-validation folds (the paper uses 5).
    time_budget_seconds:
        Per-pair wall-clock budget. Checked *between* pairs and recorded as
        a skip when a pair exceeded it — a cooperative version of the
        paper's 48-hour kill rule (no mid-run preemption).
    wide_threshold, large_threshold:
        Categorisation thresholds, exposed so reduced-scale runs can scale
        them together with the data.
    progress:
        Optional callable receiving human-readable progress lines.
    metrics:
        Optional :class:`repro.obs.metrics.MetricsRegistry` to record run
        counters into (cells completed / timed out / failed / retried,
        grid completion). A fresh registry is created when omitted; it is
        always available as ``runner.metrics`` after construction.
    retry_policy:
        :class:`repro.core.resilience.RetryPolicy` governing how many
        attempts a transiently-failing cell gets and the backoff between
        them. The default policy makes a single attempt (no retries).
        Timeouts and permanent/data-format failures are never retried.
    checkpoint_path:
        Write an append-only JSONL checkpoint of every cell outcome to
        this path as the grid runs, so a killed run can be resumed.
    resume_from:
        Path of a checkpoint from a previous (killed) run. Its completed
        cells are restored into the report and skipped; the checkpoint's
        grid fingerprint must match this run's (seed, folds, budget,
        algorithm/dataset lists) or
        :class:`repro.exceptions.CheckpointMismatchError` is raised.
        When ``checkpoint_path`` is omitted, new outcomes append to the
        resumed file.
    fault_injector:
        Deterministic fault-injection hook for tests: a callable
        ``(stage, algorithm, dataset, attempt)`` consulted before every
        dataset load (``stage="load"``) and evaluation attempt
        (``stage="evaluate"``); raising injects the failure. See
        :class:`repro.core.resilience.FaultPlan`.
    fingerprint_extra:
        Extra key/value context folded into the checkpoint fingerprint
        (the CLI records the scale factor and registry profile here).

    Tracing is picked up from the process-wide tracer
    (:func:`repro.obs.trace.get_tracer`) at :meth:`run` time; per-cell
    progress telemetry goes through the ``repro.core.runner`` logger
    (silent unless logging is configured).
    """

    def __init__(
        self,
        algorithms: AlgorithmRegistry,
        datasets: DatasetRegistry,
        n_folds: int = 5,
        time_budget_seconds: float = float("inf"),
        wide_threshold: int | None = None,
        large_threshold: int | None = None,
        seed: int = 0,
        progress: Callable[[str], None] | None = None,
        metrics: MetricsRegistry | None = None,
        retry_policy: RetryPolicy | None = None,
        checkpoint_path: str | os.PathLike | None = None,
        resume_from: str | os.PathLike | None = None,
        fault_injector: Callable[[str, str, str, int], None] | None = None,
        fingerprint_extra: dict | None = None,
    ) -> None:
        self.algorithms = algorithms
        self.datasets = datasets
        self.n_folds = n_folds
        self.time_budget_seconds = time_budget_seconds
        self.wide_threshold = wide_threshold
        self.large_threshold = large_threshold
        self.seed = seed
        self.progress = progress or (lambda line: None)
        self.metrics = metrics or MetricsRegistry()
        self.retry_policy = retry_policy or RetryPolicy()
        self.checkpoint_path = checkpoint_path
        self.resume_from = resume_from
        self.fault_injector = fault_injector
        self.fingerprint_extra = fingerprint_extra

    def _categorize(self, dataset: TimeSeriesDataset) -> DatasetCategories:
        # The paper's 12 datasets keep their published Table 3 assignment
        # regardless of the generation scale; unknown datasets are measured.
        canonical = canonical_categories(dataset.name)
        if canonical is not None:
            return canonical
        kwargs = {}
        if self.wide_threshold is not None:
            kwargs["wide_threshold"] = self.wide_threshold
        if self.large_threshold is not None:
            kwargs["large_threshold"] = self.large_threshold
        return categorize(dataset, **kwargs)

    def fingerprint(
        self,
        algorithm_names: list[str] | None = None,
        dataset_names: list[str] | None = None,
    ) -> dict:
        """The checkpoint fingerprint :meth:`run` would use for this grid."""
        return grid_fingerprint(
            seed=self.seed,
            n_folds=self.n_folds,
            time_budget_seconds=self.time_budget_seconds,
            algorithms=algorithm_names or self.algorithms.names(),
            datasets=dataset_names or self.datasets.names(),
            wide_threshold=self.wide_threshold,
            large_threshold=self.large_threshold,
            extra=self.fingerprint_extra,
        )

    def _open_checkpoint(
        self, report: RunReport, fingerprint: dict
    ) -> tuple[CheckpointWriter | None, set[tuple[str, str]]]:
        """Restore a resumed run's state and open the checkpoint writer.

        Returns ``(writer, completed_keys)``; the writer is ``None`` when
        checkpointing is off. Restored outcomes are copied into ``report``
        before any cell runs.
        """
        completed: set[tuple[str, str]] = set()
        state = None
        if self.resume_from is not None:
            state = load_checkpoint(self.resume_from)
            state.validate_fingerprint(fingerprint)
            report.results.update(state.results)
            report.failures.update(state.failures)
            report.categories.update(state.categories)
            report._frequencies.update(state.frequencies)
            completed = state.completed_keys()
            _logger.info(
                "resuming from %s: %d cells already complete "
                "(%d results, %d failures)",
                self.resume_from,
                len(completed),
                len(state.results),
                len(state.failures),
            )
        path = self.checkpoint_path or self.resume_from
        if path is None:
            return None, completed
        same_file = state is not None and os.path.realpath(
            str(path)
        ) == os.path.realpath(str(self.resume_from))
        writer = CheckpointWriter(path, fingerprint, append=same_file)
        if state is not None and not same_file:
            # Resuming into a fresh checkpoint file: re-record the
            # restored outcomes so the new file stands alone.
            for name, categories in state.categories.items():
                writer.write_dataset(
                    name, categories, state.frequencies.get(name)
                )
            for (algorithm, dataset), result in state.results.items():
                writer.write_result(algorithm, dataset, result)
            for (algorithm, dataset), reason in state.failures.items():
                writer.write_failure(
                    algorithm,
                    dataset,
                    reason,
                    state.failure_kinds.get((algorithm, dataset), "permanent"),
                )
        return writer, completed

    def run(
        self,
        algorithm_names: list[str] | None = None,
        dataset_names: list[str] | None = None,
    ) -> RunReport:
        """Evaluate the (sub)grid and return the aggregated report."""
        report = RunReport()
        algorithm_names = algorithm_names or self.algorithms.names()
        dataset_names = dataset_names or self.datasets.names()
        tracer = get_tracer()
        checkpoint, completed = self._open_checkpoint(
            report, self.fingerprint(algorithm_names, dataset_names)
        )
        n_to_run = (
            len(algorithm_names) * len(dataset_names) - len(completed)
        )
        telemetry = GridProgress(n_to_run, logger=_logger)
        completion = self.metrics.gauge("grid_completion")
        try:
            with tracer.span(
                "grid",
                n_algorithms=len(algorithm_names),
                n_datasets=len(dataset_names),
                n_folds=self.n_folds,
                time_budget_seconds=self.time_budget_seconds,
                seed=self.seed,
                resumed_cells=len(completed),
            ):
                for dataset_name in dataset_names:
                    remaining = [
                        name
                        for name in algorithm_names
                        if (name, dataset_name) not in completed
                    ]
                    if not remaining:
                        continue
                    dataset = self._load_dataset(
                        dataset_name, remaining, report,
                        tracer, telemetry, checkpoint,
                    )
                    if dataset is None:
                        completion.set(telemetry.fraction_done)
                        continue
                    report.categories[dataset_name] = (
                        self._categorize(dataset)
                    )
                    if dataset.frequency_seconds is not None:
                        report._frequencies[dataset_name] = (
                            dataset.frequency_seconds
                        )
                    if checkpoint is not None:
                        checkpoint.write_dataset(
                            dataset_name,
                            report.categories[dataset_name],
                            dataset.frequency_seconds,
                        )
                    for algorithm_name in remaining:
                        self._run_cell(
                            report, algorithm_name, dataset_name, dataset,
                            tracer, telemetry, checkpoint,
                        )
                        completion.set(telemetry.fraction_done)
        finally:
            if checkpoint is not None:
                checkpoint.close()
        return report

    def _load_dataset(
        self,
        dataset_name: str,
        algorithm_names: list[str],
        report: RunReport,
        tracer,
        telemetry: GridProgress,
        checkpoint: CheckpointWriter | None,
    ) -> TimeSeriesDataset | None:
        """Load a dataset under crash isolation and the retry policy.

        A terminal failure (corrupt file, missing generator, retry
        exhaustion) records one failure per remaining cell of the dataset
        — the grid keeps going — and returns ``None``.
        """
        policy = self.retry_policy
        attempt = 0
        with tracer.span("load", dataset=dataset_name) as span:
            while True:
                attempt += 1
                try:
                    if self.fault_injector is not None:
                        self.fault_injector("load", "", dataset_name, attempt)
                    return self.datasets.load(dataset_name)
                except Exception as error:
                    kind = policy.classify(error)
                    reason = failure_reason(error)
                    span.add_event(
                        "attempt_failed",
                        attempt=attempt,
                        kind=kind,
                        error=reason,
                    )
                    if policy.should_retry(error, attempt):
                        self.metrics.counter("load_retries").inc()
                        delay = policy.wait(
                            attempt, key=f"load:{dataset_name}"
                        )
                        span.add_event(
                            "retry", attempt=attempt, delay=delay
                        )
                        _logger.warning(
                            "load %s: transient failure (%s), retrying "
                            "attempt %d/%d after %.2fs",
                            dataset_name, reason, attempt + 1,
                            policy.max_attempts, delay,
                        )
                        continue
                    span.set_status("error")
                    span.set_attribute("reason", reason)
                    span.set_attribute("failure_kind", kind)
                    span.set_attribute("attempts", attempt)
                    span.set_attribute(
                        "traceback", format_traceback(error)
                    )
                    self.metrics.counter("datasets_failed").inc()
                    cell_reason = f"dataset load failed: {reason}"
                    for algorithm_name in algorithm_names:
                        self.metrics.counter("cells_total").inc()
                        self.metrics.counter("cells_failed").inc()
                        report.failures[(algorithm_name, dataset_name)] = (
                            cell_reason
                        )
                        if checkpoint is not None:
                            checkpoint.write_failure(
                                algorithm_name, dataset_name,
                                cell_reason, kind, attempt,
                            )
                        telemetry.failed(
                            algorithm_name, dataset_name, 0.0, cell_reason
                        )
                        self.progress(
                            f"{algorithm_name} on {dataset_name}: "
                            f"FAILED ({cell_reason})"
                        )
                    return None

    def _record_failure(
        self,
        report: RunReport,
        algorithm_name: str,
        dataset_name: str,
        reason: str,
        kind: str,
        attempt: int,
        elapsed: float,
        cell_span,
        telemetry: GridProgress,
        checkpoint: CheckpointWriter | None,
        traceback_text: str | None = None,
    ) -> None:
        """Record one terminal cell failure everywhere it must appear."""
        timeout = kind == TIMEOUT
        cell_span.set_status("timeout" if timeout else "error")
        cell_span.set_attribute("reason", reason)
        cell_span.set_attribute("failure_kind", kind)
        cell_span.set_attribute("attempts", attempt)
        if traceback_text is not None:
            cell_span.set_attribute("traceback", traceback_text)
        self.metrics.counter(
            "cells_timeout" if timeout else "cells_failed"
        ).inc()
        report.failures[(algorithm_name, dataset_name)] = reason
        if checkpoint is not None:
            checkpoint.write_failure(
                algorithm_name, dataset_name, reason, kind, attempt
            )
        telemetry.failed(
            algorithm_name, dataset_name, elapsed, reason, timeout=timeout
        )
        self.progress(
            f"{algorithm_name} on {dataset_name}: FAILED ({reason})"
        )

    def _run_cell(
        self,
        report: RunReport,
        algorithm_name: str,
        dataset_name: str,
        dataset: TimeSeriesDataset,
        tracer,
        telemetry: GridProgress,
        checkpoint: CheckpointWriter | None = None,
    ) -> None:
        """One (algorithm, dataset) pair: evaluate, record, report.

        Crash-isolated: any exception (not just ``ReproError``) is
        caught, classified, and recorded as a failure; transient failures
        are retried under the runner's :class:`RetryPolicy`; the grid
        never aborts because of one bad cell.
        """
        info = self.algorithms.get(algorithm_name)
        policy = self.retry_policy
        self.metrics.counter("cells_total").inc()
        telemetry.started(algorithm_name, dataset_name)
        with tracer.span(
            "cell", algorithm=algorithm_name, dataset=dataset_name
        ) as cell_span:
            start = time.perf_counter()
            attempt = 0
            while True:
                attempt += 1
                try:
                    if self.fault_injector is not None:
                        self.fault_injector(
                            "evaluate", algorithm_name, dataset_name, attempt
                        )
                    # Preemptive kill rule (the paper's 48-hour cutoff);
                    # falls back to the cooperative check below when
                    # SIGALRM is unavailable (non-Unix or worker thread).
                    with time_limit(self.time_budget_seconds):
                        result = evaluate(
                            info.factory,
                            dataset,
                            algorithm_name,
                            n_folds=self.n_folds,
                            seed=self.seed,
                        )
                    break
                except Exception as error:
                    kind = policy.classify(error)
                    reason = failure_reason(error)
                    cell_span.add_event(
                        "attempt_failed",
                        attempt=attempt,
                        kind=kind,
                        error=reason,
                    )
                    if policy.should_retry(error, attempt):
                        self.metrics.counter("cell_retries").inc()
                        delay = policy.wait(
                            attempt, key=f"{algorithm_name}:{dataset_name}"
                        )
                        cell_span.add_event(
                            "retry", attempt=attempt, delay=delay
                        )
                        _logger.warning(
                            "%s on %s: transient failure (%s), retrying "
                            "attempt %d/%d after %.2fs",
                            algorithm_name, dataset_name, reason,
                            attempt + 1, policy.max_attempts, delay,
                        )
                        continue
                    self._record_failure(
                        report, algorithm_name, dataset_name, reason, kind,
                        attempt, time.perf_counter() - start, cell_span,
                        telemetry, checkpoint,
                        traceback_text=format_traceback(error),
                    )
                    return
            elapsed = time.perf_counter() - start
            cell_span.set_attribute("seconds", elapsed)
            cell_span.set_attribute("attempts", attempt)
            if elapsed > self.time_budget_seconds:
                # Cooperative after-the-fact budget check (degraded
                # no-SIGALRM mode): classified timeout, never retried.
                self._record_failure(
                    report, algorithm_name, dataset_name,
                    f"exceeded time budget ({elapsed:.1f}s)", TIMEOUT,
                    attempt, elapsed, cell_span, telemetry, checkpoint,
                )
                return
            report.results[(algorithm_name, dataset_name)] = result
            if checkpoint is not None:
                checkpoint.write_result(algorithm_name, dataset_name, result)
            self.metrics.counter("cells_completed").inc()
            self.metrics.timer("cell_seconds").observe(elapsed)
            detail = (
                f"acc={result.accuracy:.3f} hm={result.harmonic_mean:.3f}"
            )
            telemetry.finished(algorithm_name, dataset_name, elapsed, detail)
            self.progress(
                f"{algorithm_name} on {dataset_name}: "
                f"acc={result.accuracy:.3f} f1={result.f1:.3f} "
                f"earl={result.earliness:.3f} hm={result.harmonic_mean:.3f} "
                f"({elapsed:.1f}s)"
            )
