"""Grid orchestration: datasets x algorithms -> per-category aggregates.

This is the outer loop of the paper's empirical comparison (Section 6):
run every registered algorithm on every registered dataset under stratified
k-fold cross-validation, respect a per-pair time budget (the paper kills
runs after 48 hours — EDSC never finished the 'Wide' datasets), and
aggregate each metric over the Table 3 dataset categories to produce the
series plotted in Figures 9-12 and the online-feasibility heatmap of
Figure 13.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..data.dataset import TimeSeriesDataset
from ..exceptions import ReproError
from ..obs.logging import GridProgress, get_logger
from ..obs.metrics import MetricsRegistry
from ..obs.trace import get_tracer
from .categorization import (
    DatasetCategories,
    canonical_categories,
    categorize,
    category_names,
)
from .evaluation import EvaluationResult, evaluate
from .registry import AlgorithmRegistry, DatasetRegistry
from .timeouts import EvaluationTimeout, time_limit

_logger = get_logger("core.runner")

__all__ = ["RunReport", "BenchmarkRunner", "aggregate_by_category"]

_METRIC_ATTRIBUTES = (
    "accuracy",
    "f1",
    "earliness",
    "harmonic_mean",
    "train_seconds",
    "test_seconds",
)


@dataclass
class RunReport:
    """Everything one grid run produced.

    ``results[(algorithm, dataset)]`` holds the cross-validated scores;
    ``failures[(algorithm, dataset)]`` holds the reason a pair was skipped
    (timeout or error) — mirroring the hatched cells of Figure 13.
    """

    results: dict[tuple[str, str], EvaluationResult] = field(
        default_factory=dict
    )
    failures: dict[tuple[str, str], str] = field(default_factory=dict)
    categories: dict[str, DatasetCategories] = field(default_factory=dict)

    def algorithms(self) -> list[str]:
        """Algorithm names appearing in results or failures."""
        names: list[str] = []
        for algorithm, _ in list(self.results) + list(self.failures):
            if algorithm not in names:
                names.append(algorithm)
        return names

    def datasets(self) -> list[str]:
        """Dataset names appearing in results or failures."""
        names: list[str] = []
        for _, dataset in list(self.results) + list(self.failures):
            if dataset not in names:
                names.append(dataset)
        return names

    def metric_by_category(self, metric: str) -> dict[str, dict[str, float]]:
        """``{category: {algorithm: mean metric}}`` over member datasets."""
        if metric not in _METRIC_ATTRIBUTES:
            raise ReproError(
                f"metric must be one of {_METRIC_ATTRIBUTES}, got {metric!r}"
            )
        return aggregate_by_category(self.results, self.categories, metric)

    def online_feasibility(self) -> dict[tuple[str, str], float | None]:
        """Figure 13 cells: per-instance test time over observation period.

        Values below 1 mean the algorithm keeps up with the stream; ``None``
        marks pairs that failed to train (the hatched cells). Datasets
        without a known observation frequency are skipped.
        """
        cells: dict[tuple[str, str], float | None] = {}
        frequencies: dict[str, float] = {}
        for (algorithm, dataset), result in self.results.items():
            frequency = self._frequencies.get(dataset)
            if frequency is None or frequency <= 0:
                continue
            cells[(algorithm, dataset)] = (
                result.test_seconds_per_instance / frequency
            )
        for key in self.failures:
            if key[1] in self._frequencies:
                cells[key] = None
        return cells

    _frequencies: dict[str, float] = field(default_factory=dict)


def aggregate_by_category(
    results: dict[tuple[str, str], EvaluationResult],
    categories: dict[str, DatasetCategories],
    metric: str,
) -> dict[str, dict[str, float]]:
    """Average a metric per (category, algorithm) over member datasets.

    Pairs that failed are simply absent — exactly how the paper's bar
    charts omit EDSC on 'Wide' datasets.
    """
    table: dict[str, dict[str, list[float]]] = {
        name: {} for name in category_names()
    }
    for (algorithm, dataset), result in results.items():
        dataset_categories = categories.get(dataset)
        if dataset_categories is None:
            continue
        value = float(getattr(result, metric))
        for category in dataset_categories.names():
            table[category].setdefault(algorithm, []).append(value)
    return {
        category: {
            algorithm: float(np.mean(values))
            for algorithm, values in per_algorithm.items()
        }
        for category, per_algorithm in table.items()
        if per_algorithm
    }


class BenchmarkRunner:
    """Run the full algorithms x datasets grid with budgets and fallbacks.

    Parameters
    ----------
    algorithms, datasets:
        The registries to iterate.
    n_folds:
        Cross-validation folds (the paper uses 5).
    time_budget_seconds:
        Per-pair wall-clock budget. Checked *between* pairs and recorded as
        a skip when a pair exceeded it — a cooperative version of the
        paper's 48-hour kill rule (no mid-run preemption).
    wide_threshold, large_threshold:
        Categorisation thresholds, exposed so reduced-scale runs can scale
        them together with the data.
    progress:
        Optional callable receiving human-readable progress lines.
    metrics:
        Optional :class:`repro.obs.metrics.MetricsRegistry` to record run
        counters into (cells completed / timed out / failed, grid
        completion). A fresh registry is created when omitted; it is
        always available as ``runner.metrics`` after construction.

    Tracing is picked up from the process-wide tracer
    (:func:`repro.obs.trace.get_tracer`) at :meth:`run` time; per-cell
    progress telemetry goes through the ``repro.core.runner`` logger
    (silent unless logging is configured).
    """

    def __init__(
        self,
        algorithms: AlgorithmRegistry,
        datasets: DatasetRegistry,
        n_folds: int = 5,
        time_budget_seconds: float = float("inf"),
        wide_threshold: int | None = None,
        large_threshold: int | None = None,
        seed: int = 0,
        progress: Callable[[str], None] | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.algorithms = algorithms
        self.datasets = datasets
        self.n_folds = n_folds
        self.time_budget_seconds = time_budget_seconds
        self.wide_threshold = wide_threshold
        self.large_threshold = large_threshold
        self.seed = seed
        self.progress = progress or (lambda line: None)
        self.metrics = metrics or MetricsRegistry()

    def _categorize(self, dataset: TimeSeriesDataset) -> DatasetCategories:
        # The paper's 12 datasets keep their published Table 3 assignment
        # regardless of the generation scale; unknown datasets are measured.
        canonical = canonical_categories(dataset.name)
        if canonical is not None:
            return canonical
        kwargs = {}
        if self.wide_threshold is not None:
            kwargs["wide_threshold"] = self.wide_threshold
        if self.large_threshold is not None:
            kwargs["large_threshold"] = self.large_threshold
        return categorize(dataset, **kwargs)

    def run(
        self,
        algorithm_names: list[str] | None = None,
        dataset_names: list[str] | None = None,
    ) -> RunReport:
        """Evaluate the (sub)grid and return the aggregated report."""
        report = RunReport()
        algorithm_names = algorithm_names or self.algorithms.names()
        dataset_names = dataset_names or self.datasets.names()
        tracer = get_tracer()
        telemetry = GridProgress(
            len(algorithm_names) * len(dataset_names), logger=_logger
        )
        completion = self.metrics.gauge("grid_completion")
        with tracer.span(
            "grid",
            n_algorithms=len(algorithm_names),
            n_datasets=len(dataset_names),
            n_folds=self.n_folds,
            time_budget_seconds=self.time_budget_seconds,
            seed=self.seed,
        ):
            for dataset_name in dataset_names:
                dataset = self.datasets.load(dataset_name)
                report.categories[dataset_name] = self._categorize(dataset)
                if dataset.frequency_seconds is not None:
                    report._frequencies[dataset_name] = (
                        dataset.frequency_seconds
                    )
                for algorithm_name in algorithm_names:
                    self._run_cell(
                        report, algorithm_name, dataset_name, dataset,
                        tracer, telemetry,
                    )
                    completion.set(telemetry.fraction_done)
        return report

    def _run_cell(
        self,
        report: RunReport,
        algorithm_name: str,
        dataset_name: str,
        dataset: TimeSeriesDataset,
        tracer,
        telemetry: GridProgress,
    ) -> None:
        """One (algorithm, dataset) pair: evaluate, record, report."""
        info = self.algorithms.get(algorithm_name)
        self.metrics.counter("cells_total").inc()
        telemetry.started(algorithm_name, dataset_name)
        with tracer.span(
            "cell", algorithm=algorithm_name, dataset=dataset_name
        ) as cell_span:
            start = time.perf_counter()
            try:
                # Preemptive kill rule (the paper's 48-hour cutoff);
                # falls back to the cooperative check below when
                # SIGALRM is unavailable (non-Unix or worker thread).
                with time_limit(self.time_budget_seconds):
                    result = evaluate(
                        info.factory,
                        dataset,
                        algorithm_name,
                        n_folds=self.n_folds,
                        seed=self.seed,
                    )
            except ReproError as error:
                elapsed = time.perf_counter() - start
                timeout = isinstance(error, EvaluationTimeout)
                cell_span.set_status("timeout" if timeout else "error")
                cell_span.set_attribute("reason", str(error))
                self.metrics.counter(
                    "cells_timeout" if timeout else "cells_failed"
                ).inc()
                report.failures[(algorithm_name, dataset_name)] = str(error)
                telemetry.failed(
                    algorithm_name, dataset_name, elapsed, str(error),
                    timeout=timeout,
                )
                self.progress(
                    f"{algorithm_name} on {dataset_name}: FAILED ({error})"
                )
                return
            elapsed = time.perf_counter() - start
            cell_span.set_attribute("seconds", elapsed)
            if elapsed > self.time_budget_seconds:
                reason = f"exceeded time budget ({elapsed:.1f}s)"
                cell_span.set_status("timeout")
                cell_span.set_attribute("reason", reason)
                self.metrics.counter("cells_timeout").inc()
                report.failures[(algorithm_name, dataset_name)] = reason
                telemetry.failed(
                    algorithm_name, dataset_name, elapsed, reason,
                    timeout=True,
                )
                self.progress(
                    f"{algorithm_name} on {dataset_name}: over budget "
                    f"({elapsed:.1f}s), recorded as timeout"
                )
                return
            report.results[(algorithm_name, dataset_name)] = result
            self.metrics.counter("cells_completed").inc()
            self.metrics.timer("cell_seconds").observe(elapsed)
            detail = (
                f"acc={result.accuracy:.3f} hm={result.harmonic_mean:.3f}"
            )
            telemetry.finished(algorithm_name, dataset_name, elapsed, detail)
            self.progress(
                f"{algorithm_name} on {dataset_name}: "
                f"acc={result.accuracy:.3f} f1={result.f1:.3f} "
                f"earl={result.earliness:.3f} hm={result.harmonic_mean:.3f} "
                f"({elapsed:.1f}s)"
            )
