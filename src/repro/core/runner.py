"""Grid orchestration: datasets x algorithms -> per-category aggregates.

This is the outer loop of the paper's empirical comparison (Section 6):
run every registered algorithm on every registered dataset under stratified
k-fold cross-validation, respect a per-pair time budget (the paper kills
runs after 48 hours — EDSC never finished the 'Wide' datasets), and
aggregate each metric over the Table 3 dataset categories to produce the
series plotted in Figures 9-12 and the online-feasibility heatmap of
Figure 13.

Fault tolerance: every cell (including the dataset load) is crash-
isolated — *any* exception is caught, classified (timeout / transient /
permanent / data-format, see :mod:`repro.core.resilience`), recorded in
``RunReport.failures`` with traceback context on the cell span, and the
grid keeps going. Transient failures are retried with exponential
backoff. With a checkpoint attached, each cell's outcome is appended to
an append-only JSONL file as it completes, and ``resume_from=`` restores
a killed run, skipping finished cells (see
:mod:`repro.core.checkpoint`).

Parallelism: ``workers > 1`` schedules cells onto a fork-based
``ProcessPoolExecutor``. Datasets are loaded once in the parent; each
worker runs the identical crash-isolation/retry/budget attempt loop as
serial mode, records its spans on a private tracer, and ships the
outcome plus serialised spans back. The parent merges outcomes in
canonical grid order (dataset-major, registry algorithm order), writing
report entries and checkpoint lines in exactly the order serial mode
would — a parallel run's report and checkpoint are byte-identical to a
serial run's (modulo wall-clock timings). Worker span trees are stitched
under the parent's grid span via :meth:`repro.obs.trace.Tracer
.adopt_spans`. If the pool breaks (a worker died hard), the remaining
cells fall back to in-parent serial execution.

Scheduling: parallel submission order is chosen by the cost model in
:mod:`repro.core.sched` — longest-estimated-first (LPT) by default, so
the skewed grid's expensive cells start before the cheap ones pack the
tail (``scheduler="fifo"`` keeps canonical submission order for A/B
measurement). Because the commit loop above is untouched, the schedule
changes only *when* cells execute, never what the artifacts contain.
``workers="auto"`` sizes the pool to the cores this process is actually
allowed to use. ``shard="i/n"`` (with a checkpoint *directory*) runs one
cost-balanced bin of the grid, stealing unclaimed cells from sibling
shards when its own bin drains — see :meth:`BenchmarkRunner._run_sharded`
and ``etsc-bench merge-checkpoints``.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

import numpy as np

from ..data.dataset import TimeSeriesDataset
from ..exceptions import CheckpointError, ConfigurationError, ReproError
from ..obs.events import span_to_record
from ..obs.logging import GridProgress, get_logger
from ..obs.metrics import MetricsRegistry
from ..obs.trace import Tracer, get_tracer, use_tracer
from .categorization import (
    DatasetCategories,
    canonical_categories,
    categorize,
    category_names,
)
from .checkpoint import CheckpointWriter, grid_fingerprint, load_checkpoint
from .evaluation import EvaluationResult, evaluate
from .registry import AlgorithmRegistry, DatasetRegistry
from .resilience import (
    TIMEOUT,
    RetryPolicy,
    failure_reason,
    format_traceback,
)
from .sched import (
    CellEstimate,
    ClaimBoard,
    CostModel,
    ShardSpec,
    claims_directory,
    find_shard_checkpoints,
    lpt_order,
    partition_cells,
    resolve_workers,
    shard_checkpoint_path,
)
from .timeouts import time_limit

_logger = get_logger("core.runner")

__all__ = ["RunReport", "BenchmarkRunner", "aggregate_by_category"]

_METRIC_ATTRIBUTES = (
    "accuracy",
    "f1",
    "earliness",
    "harmonic_mean",
    "train_seconds",
    "test_seconds",
)


@dataclass
class RunReport:
    """Everything one grid run produced.

    ``results[(algorithm, dataset)]`` holds the cross-validated scores;
    ``failures[(algorithm, dataset)]`` holds the reason a pair was skipped
    (timeout or error) — mirroring the hatched cells of Figure 13.
    """

    results: dict[tuple[str, str], EvaluationResult] = field(
        default_factory=dict
    )
    failures: dict[tuple[str, str], str] = field(default_factory=dict)
    categories: dict[str, DatasetCategories] = field(default_factory=dict)

    def algorithms(self) -> list[str]:
        """Algorithm names appearing in results or failures."""
        names: list[str] = []
        for algorithm, _ in list(self.results) + list(self.failures):
            if algorithm not in names:
                names.append(algorithm)
        return names

    def datasets(self) -> list[str]:
        """Dataset names appearing in results or failures."""
        names: list[str] = []
        for _, dataset in list(self.results) + list(self.failures):
            if dataset not in names:
                names.append(dataset)
        return names

    def metric_by_category(self, metric: str) -> dict[str, dict[str, float]]:
        """``{category: {algorithm: mean metric}}`` over member datasets."""
        if metric not in _METRIC_ATTRIBUTES:
            raise ReproError(
                f"metric must be one of {_METRIC_ATTRIBUTES}, got {metric!r}"
            )
        return aggregate_by_category(self.results, self.categories, metric)

    def online_feasibility(self) -> dict[tuple[str, str], float | None]:
        """Figure 13 cells: per-instance test time over observation period.

        Values below 1 mean the algorithm keeps up with the stream; ``None``
        marks pairs that failed to train (the hatched cells). Datasets
        without a known observation frequency are skipped.
        """
        cells: dict[tuple[str, str], float | None] = {}
        frequencies: dict[str, float] = {}
        for (algorithm, dataset), result in self.results.items():
            frequency = self._frequencies.get(dataset)
            if frequency is None or frequency <= 0:
                continue
            cells[(algorithm, dataset)] = (
                result.test_seconds_per_instance / frequency
            )
        for key in self.failures:
            if key[1] in self._frequencies:
                cells[key] = None
        return cells

    _frequencies: dict[str, float] = field(default_factory=dict)


def aggregate_by_category(
    results: dict[tuple[str, str], EvaluationResult],
    categories: dict[str, DatasetCategories],
    metric: str,
) -> dict[str, dict[str, float]]:
    """Average a metric per (category, algorithm) over member datasets.

    Pairs that failed are simply absent — exactly how the paper's bar
    charts omit EDSC on 'Wide' datasets.
    """
    table: dict[str, dict[str, list[float]]] = {
        name: {} for name in category_names()
    }
    for (algorithm, dataset), result in results.items():
        dataset_categories = categories.get(dataset)
        if dataset_categories is None:
            continue
        value = float(getattr(result, metric))
        for category in dataset_categories.names():
            table[category].setdefault(algorithm, []).append(value)
    return {
        category: {
            algorithm: float(np.mean(values))
            for algorithm, values in per_algorithm.items()
        }
        for category, per_algorithm in table.items()
        if per_algorithm
    }


@dataclass
class _CellOutcome:
    """What one cell attempt loop produced (success or terminal failure).

    Separating the *attempt* (runs in a worker or the parent) from the
    *bookkeeping* (metrics, report, checkpoint, telemetry — always the
    parent, always in canonical order) is what lets parallel runs merge
    deterministically.
    """

    algorithm: str
    dataset: str
    result: EvaluationResult | None
    reason: str | None
    kind: str | None
    attempts: int
    elapsed: float
    retries: int
    cpu_seconds: float = 0.0


#: Fork-inherited state for pool workers. Registries hold closures (not
#: picklable), so the parent parks itself and the preloaded datasets here
#: right before forking; workers read them back by key instead of
#: receiving them over the pipe.
_WORKER_STATE: dict[str, Any] | None = None


def _evaluate_cell_worker(
    key: tuple[str, str],
) -> tuple[_CellOutcome, list[dict[str, Any]]]:
    """Pool entry point: run one cell, return its outcome and spans.

    Spans are recorded on a worker-private tracer (the fork-inherited
    parent tracer must not be used — its ``on_finish`` may hold the
    parent's trace-file handle) and shipped back as plain dicts for
    ``Tracer.adopt_spans`` to stitch under the grid span.
    """
    state = _WORKER_STATE
    assert state is not None, "worker used without fork-inherited state"
    runner: BenchmarkRunner = state["runner"]
    algorithm_name, dataset_name = key
    dataset = state["datasets"][dataset_name]
    parent_tracer = get_tracer()
    if parent_tracer.enabled:
        tracer: Any = Tracer(
            trace_memory=getattr(parent_tracer, "_trace_memory", False)
        )
    else:
        tracer = parent_tracer  # the null tracer: record nothing
    with use_tracer(tracer):
        outcome = runner._execute_cell(
            algorithm_name, dataset_name, dataset, tracer
        )
    records = [span_to_record(span) for span in tracer.finished_spans()]
    return outcome, records


class BenchmarkRunner:
    """Run the full algorithms x datasets grid with budgets and fallbacks.

    Parameters
    ----------
    algorithms, datasets:
        The registries to iterate.
    n_folds:
        Cross-validation folds (the paper uses 5).
    time_budget_seconds:
        Per-pair wall-clock budget. Checked *between* pairs and recorded as
        a skip when a pair exceeded it — a cooperative version of the
        paper's 48-hour kill rule (no mid-run preemption).
    wide_threshold, large_threshold:
        Categorisation thresholds, exposed so reduced-scale runs can scale
        them together with the data.
    progress:
        Optional callable receiving human-readable progress lines.
    metrics:
        Optional :class:`repro.obs.metrics.MetricsRegistry` to record run
        counters into (cells completed / timed out / failed / retried,
        grid completion). A fresh registry is created when omitted; it is
        always available as ``runner.metrics`` after construction.
    retry_policy:
        :class:`repro.core.resilience.RetryPolicy` governing how many
        attempts a transiently-failing cell gets and the backoff between
        them. The default policy makes a single attempt (no retries).
        Timeouts and permanent/data-format failures are never retried.
    checkpoint_path:
        Write an append-only JSONL checkpoint of every cell outcome to
        this path as the grid runs, so a killed run can be resumed.
    resume_from:
        Path of a checkpoint from a previous (killed) run. Its completed
        cells are restored into the report and skipped; the checkpoint's
        grid fingerprint must match this run's (seed, folds, budget,
        algorithm/dataset lists) or
        :class:`repro.exceptions.CheckpointMismatchError` is raised.
        When ``checkpoint_path`` is omitted, new outcomes append to the
        resumed file.
    fault_injector:
        Deterministic fault-injection hook for tests: a callable
        ``(stage, algorithm, dataset, attempt)`` consulted before every
        dataset load (``stage="load"``) and evaluation attempt
        (``stage="evaluate"``); raising injects the failure. See
        :class:`repro.core.resilience.FaultPlan`.
    fingerprint_extra:
        Extra key/value context folded into the checkpoint fingerprint
        (the CLI records the scale factor and registry profile here).
    workers:
        Number of worker processes evaluating cells concurrently
        (default 1 = in-process serial), or ``"auto"`` to size the pool
        to the cores this process may actually run on
        (:func:`repro.core.pool.available_cores` — clamps to 1 on a
        1-core box instead of oversubscribing). Requires the ``fork``
        start method (silently degrades to serial where unavailable);
        results, checkpoint lines, and report contents are merged in
        canonical grid order, identical to a serial run.
    scheduler:
        Parallel dispatch policy: ``"lpt"`` (default) submits cells
        longest-estimated-first using the cost model; ``"fifo"`` submits
        in canonical grid order. Serial runs ignore it. Artifacts are
        schedule-independent either way.
    shard:
        ``"i/n"`` (or a :class:`repro.core.sched.ShardSpec`) runs only
        the ``i``-th of ``n`` cost-balanced bins of the grid, writing to
        ``<checkpoint_path>/shard-i.jsonl`` — ``checkpoint_path`` must
        then be a *directory* shared by all shards. An idle shard steals
        unclaimed cells from its siblings (disable with
        ``shard_steal=False``). Shard runs resume implicitly from their
        own file; ``resume_from`` is rejected.
    shard_steal:
        Whether a shard that drains its own bin steals unclaimed,
        uncompleted cells from sibling bins (default ``True``).
    cost_model:
        The :class:`repro.core.sched.CostModel` estimating per-cell
        durations. A fresh one is created when omitted; resume seeds it
        with the checkpoint's recorded wall timings either way.

    Tracing is picked up from the process-wide tracer
    (:func:`repro.obs.trace.get_tracer`) at :meth:`run` time; per-cell
    progress telemetry goes through the ``repro.core.runner`` logger
    (silent unless logging is configured).
    """

    def __init__(
        self,
        algorithms: AlgorithmRegistry,
        datasets: DatasetRegistry,
        n_folds: int = 5,
        time_budget_seconds: float = float("inf"),
        wide_threshold: int | None = None,
        large_threshold: int | None = None,
        seed: int = 0,
        progress: Callable[[str], None] | None = None,
        metrics: MetricsRegistry | None = None,
        retry_policy: RetryPolicy | None = None,
        checkpoint_path: str | os.PathLike | None = None,
        resume_from: str | os.PathLike | None = None,
        fault_injector: Callable[[str, str, str, int], None] | None = None,
        fingerprint_extra: dict | None = None,
        workers: int | str = 1,
        scheduler: str = "lpt",
        shard: str | ShardSpec | None = None,
        shard_steal: bool = True,
        cost_model: CostModel | None = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        if scheduler not in ("lpt", "fifo"):
            raise ConfigurationError(
                f"scheduler must be 'lpt' or 'fifo', got {scheduler!r}"
            )
        self.scheduler = scheduler
        if isinstance(shard, str):
            shard = ShardSpec.parse(shard)
        self.shard = shard
        self.shard_steal = shard_steal
        self.cost_model = cost_model or CostModel()
        if shard is not None:
            if checkpoint_path is None:
                raise ConfigurationError(
                    "shard mode requires checkpoint_path (a directory "
                    "shared by all shards)"
                )
            if resume_from is not None:
                raise ConfigurationError(
                    "shard mode resumes implicitly from its own "
                    "shard-<i>.jsonl; resume_from is not supported"
                )
        self.algorithms = algorithms
        self.datasets = datasets
        self.n_folds = n_folds
        self.time_budget_seconds = time_budget_seconds
        self.wide_threshold = wide_threshold
        self.large_threshold = large_threshold
        self.seed = seed
        self.progress = progress or (lambda line: None)
        self.metrics = metrics or MetricsRegistry()
        self.retry_policy = retry_policy or RetryPolicy()
        self.checkpoint_path = checkpoint_path
        self.resume_from = resume_from
        self.fault_injector = fault_injector
        self.fingerprint_extra = fingerprint_extra

    def _categorize(self, dataset: TimeSeriesDataset) -> DatasetCategories:
        # The paper's 12 datasets keep their published Table 3 assignment
        # regardless of the generation scale; unknown datasets are measured.
        canonical = canonical_categories(dataset.name)
        if canonical is not None:
            return canonical
        kwargs = {}
        if self.wide_threshold is not None:
            kwargs["wide_threshold"] = self.wide_threshold
        if self.large_threshold is not None:
            kwargs["large_threshold"] = self.large_threshold
        return categorize(dataset, **kwargs)

    def fingerprint(
        self,
        algorithm_names: list[str] | None = None,
        dataset_names: list[str] | None = None,
    ) -> dict:
        """The checkpoint fingerprint :meth:`run` would use for this grid."""
        return grid_fingerprint(
            seed=self.seed,
            n_folds=self.n_folds,
            time_budget_seconds=self.time_budget_seconds,
            algorithms=algorithm_names or self.algorithms.names(),
            datasets=dataset_names or self.datasets.names(),
            wide_threshold=self.wide_threshold,
            large_threshold=self.large_threshold,
            extra=self.fingerprint_extra,
        )

    def _open_checkpoint(
        self, report: RunReport, fingerprint: dict
    ) -> tuple[CheckpointWriter | None, set[tuple[str, str]]]:
        """Restore a resumed run's state and open the checkpoint writer.

        Returns ``(writer, completed_keys)``; the writer is ``None`` when
        checkpointing is off. Restored outcomes are copied into ``report``
        before any cell runs.
        """
        completed: set[tuple[str, str]] = set()
        state = None
        if self.resume_from is not None:
            state = load_checkpoint(self.resume_from)
            state.validate_fingerprint(fingerprint)
            report.results.update(state.results)
            report.failures.update(state.failures)
            report.categories.update(state.categories)
            report._frequencies.update(state.frequencies)
            completed = state.completed_keys()
            self._seed_cost_model(state)
            _logger.info(
                "resuming from %s: %d cells already complete "
                "(%d results, %d failures)",
                self.resume_from,
                len(completed),
                len(state.results),
                len(state.failures),
            )
        path = self.checkpoint_path or self.resume_from
        if path is None:
            return None, completed
        same_file = state is not None and os.path.realpath(
            str(path)
        ) == os.path.realpath(str(self.resume_from))
        writer = CheckpointWriter(path, fingerprint, append=same_file)
        if state is not None and not same_file:
            # Resuming into a fresh checkpoint file: re-record the
            # restored outcomes so the new file stands alone.
            for name, categories in state.categories.items():
                writer.write_dataset(
                    name, categories, state.frequencies.get(name)
                )
            for (algorithm, dataset), result in state.results.items():
                timings = state.timings.get((algorithm, dataset), {})
                writer.write_result(
                    algorithm,
                    dataset,
                    result,
                    wall_seconds=timings.get("wall_seconds"),
                    cpu_seconds=timings.get("cpu_seconds"),
                )
            for (algorithm, dataset), reason in state.failures.items():
                timings = state.timings.get((algorithm, dataset), {})
                writer.write_failure(
                    algorithm,
                    dataset,
                    reason,
                    state.failure_kinds.get((algorithm, dataset), "permanent"),
                    state.failure_attempts.get((algorithm, dataset), 1),
                    wall_seconds=timings.get("wall_seconds"),
                    cpu_seconds=timings.get("cpu_seconds"),
                )
        return writer, completed

    def _seed_cost_model(self, state) -> None:
        """Feed a resumed checkpoint's recorded wall timings to the model."""
        seeded = 0
        for (algorithm, dataset), timings in state.timings.items():
            wall = timings.get("wall_seconds")
            if wall is not None:
                self.cost_model.record(algorithm, dataset, wall)
                seeded += 1
        if seeded:
            _logger.info(
                "cost model seeded with %d measured cell timings", seeded
            )

    def run(
        self,
        algorithm_names: list[str] | None = None,
        dataset_names: list[str] | None = None,
    ) -> RunReport:
        """Evaluate the (sub)grid and return the aggregated report.

        In shard mode (``shard="i/n"``) only this shard's bin (plus any
        stolen cells) is evaluated and the returned report is partial —
        merge the shard checkpoints (``etsc-bench merge-checkpoints`` or
        :func:`repro.core.sched.merge_checkpoint_states`) for the
        canonical full report.
        """
        report = RunReport()
        algorithm_names = algorithm_names or self.algorithms.names()
        dataset_names = dataset_names or self.datasets.names()
        tracer = get_tracer()
        if self.shard is not None:
            return self._run_sharded(
                report, algorithm_names, dataset_names, tracer
            )
        checkpoint, completed = self._open_checkpoint(
            report, self.fingerprint(algorithm_names, dataset_names)
        )
        n_to_run = (
            len(algorithm_names) * len(dataset_names) - len(completed)
        )
        telemetry = GridProgress(n_to_run, logger=_logger)
        completion = self.metrics.gauge("grid_completion")
        workers = self._effective_workers()
        try:
            with tracer.span(
                "grid",
                n_algorithms=len(algorithm_names),
                n_datasets=len(dataset_names),
                n_folds=self.n_folds,
                time_budget_seconds=self.time_budget_seconds,
                seed=self.seed,
                resumed_cells=len(completed),
                workers=workers,
            ) as grid_span:
                if workers > 1:
                    self._run_parallel(
                        report, algorithm_names, dataset_names, completed,
                        tracer, grid_span, telemetry, checkpoint,
                        completion, workers,
                    )
                else:
                    self._run_serial(
                        report, algorithm_names, dataset_names, completed,
                        tracer, telemetry, checkpoint, completion,
                    )
        finally:
            if checkpoint is not None:
                checkpoint.close()
        return report

    def _effective_workers(self) -> int:
        """Worker count after platform gating (fork-only parallelism)."""
        if self.workers <= 1:
            return 1
        if "fork" not in multiprocessing.get_all_start_methods():
            _logger.warning(
                "workers=%d requested but the 'fork' start method is "
                "unavailable on this platform; running serially",
                self.workers,
            )
            return 1
        return self.workers

    def _run_serial(
        self,
        report: RunReport,
        algorithm_names: list[str],
        dataset_names: list[str],
        completed: set[tuple[str, str]],
        tracer,
        telemetry: GridProgress,
        checkpoint: CheckpointWriter | None,
        completion,
    ) -> None:
        """The historical in-process grid loop."""
        for dataset_name in dataset_names:
            remaining = [
                name
                for name in algorithm_names
                if (name, dataset_name) not in completed
            ]
            if not remaining:
                continue
            dataset = self._load_dataset(
                dataset_name, remaining, report,
                tracer, telemetry, checkpoint,
            )
            if dataset is None:
                completion.set(telemetry.fraction_done)
                continue
            self._commit_dataset(report, dataset_name, dataset, checkpoint)
            for algorithm_name in remaining:
                self._run_cell(
                    report, algorithm_name, dataset_name, dataset,
                    tracer, telemetry, checkpoint,
                )
                completion.set(telemetry.fraction_done)

    def _run_parallel(
        self,
        report: RunReport,
        algorithm_names: list[str],
        dataset_names: list[str],
        completed: set[tuple[str, str]],
        tracer,
        grid_span,
        telemetry: GridProgress,
        checkpoint: CheckpointWriter | None,
        completion,
        workers: int,
    ) -> None:
        """Fan cells out to a fork pool, merge in canonical grid order.

        Datasets load in the parent (workers inherit them by fork, so
        each is loaded exactly once); every pending cell is submitted up
        front; outcomes are committed dataset-major in registry algorithm
        order with all checkpoint/report writes deferred to this merge
        loop — producing byte-identical artifacts to a serial run. A
        broken pool (hard worker death) degrades the affected cells to
        in-parent serial execution.
        """
        global _WORKER_STATE
        datasets: dict[str, TimeSeriesDataset] = {}
        load_failures: dict[str, tuple[str, str, int]] = {}
        grid: list[tuple[str, list[str]]] = []
        for dataset_name in dataset_names:
            remaining = [
                name
                for name in algorithm_names
                if (name, dataset_name) not in completed
            ]
            if not remaining:
                continue
            grid.append((dataset_name, remaining))
            dataset, reason, kind, attempt = self._load_with_retries(
                dataset_name, tracer
            )
            if dataset is None:
                assert reason is not None and kind is not None
                load_failures[dataset_name] = (reason, kind, attempt)
            else:
                datasets[dataset_name] = dataset
        pending = [
            (algorithm_name, dataset_name)
            for dataset_name, remaining in grid
            if dataset_name in datasets
            for algorithm_name in remaining
        ]
        # Submission order is the schedule: the fork pool starts cells in
        # the order they were submitted, so handing it the LPT order puts
        # the expensive cells first. The commit loop below still walks the
        # canonical grid — artifacts cannot observe the schedule.
        estimates = self._cell_estimates(pending, datasets)
        if self.scheduler == "lpt":
            submit_order = lpt_order(
                pending,
                {key: est.seconds for key, est in estimates.items()},
            )
        else:
            submit_order = list(pending)
        grid_span.add_event(
            "sched_plan",
            scheduler=self.scheduler,
            n_cells=len(pending),
            workers=workers,
            estimated_total_seconds=sum(
                est.seconds for est in estimates.values()
            ),
        )
        _WORKER_STATE = {"runner": self, "datasets": datasets}
        executor = ProcessPoolExecutor(
            max_workers=min(workers, max(len(pending), 1)),
            mp_context=multiprocessing.get_context("fork"),
        )
        try:
            futures = {
                key: executor.submit(_evaluate_cell_worker, key)
                for key in submit_order
            }
            for dataset_name, remaining in grid:
                if dataset_name in load_failures:
                    reason, kind, attempt = load_failures[dataset_name]
                    self._commit_load_failure(
                        report, remaining, dataset_name, reason, kind,
                        attempt, telemetry, checkpoint,
                    )
                    completion.set(telemetry.fraction_done)
                    continue
                dataset = datasets[dataset_name]
                self._commit_dataset(
                    report, dataset_name, dataset, checkpoint
                )
                for algorithm_name in remaining:
                    key = (algorithm_name, dataset_name)
                    try:
                        outcome, span_records = futures[key].result()
                    except (BrokenProcessPool, OSError) as error:
                        _logger.warning(
                            "%s on %s: worker pool broke (%s); "
                            "re-running the cell in the parent",
                            algorithm_name, dataset_name, error,
                        )
                        span_records = []
                        outcome = self._execute_cell(
                            algorithm_name, dataset_name, dataset, tracer
                        )
                    if span_records and isinstance(tracer, Tracer):
                        tracer.adopt_spans(
                            span_records, parent_id=grid_span.span_id
                        )
                    self._commit_outcome(
                        report, outcome, telemetry, checkpoint
                    )
                    self._record_sched(
                        grid_span, outcome, estimates.get(key)
                    )
                    completion.set(telemetry.fraction_done)
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
            _WORKER_STATE = None

    def _commit_dataset(
        self,
        report: RunReport,
        dataset_name: str,
        dataset: TimeSeriesDataset,
        checkpoint: CheckpointWriter | None,
    ) -> None:
        """Record a loaded dataset's categories/frequency (+ checkpoint)."""
        report.categories[dataset_name] = self._categorize(dataset)
        if dataset.frequency_seconds is not None:
            report._frequencies[dataset_name] = dataset.frequency_seconds
        if checkpoint is not None:
            checkpoint.write_dataset(
                dataset_name,
                report.categories[dataset_name],
                dataset.frequency_seconds,
            )

    def _load_dataset(
        self,
        dataset_name: str,
        algorithm_names: list[str],
        report: RunReport,
        tracer,
        telemetry: GridProgress,
        checkpoint: CheckpointWriter | None,
    ) -> TimeSeriesDataset | None:
        """Load a dataset under crash isolation and the retry policy.

        A terminal failure (corrupt file, missing generator, retry
        exhaustion) records one failure per remaining cell of the dataset
        — the grid keeps going — and returns ``None``.
        """
        dataset, reason, kind, attempt = self._load_with_retries(
            dataset_name, tracer
        )
        if dataset is None:
            assert reason is not None and kind is not None
            self._commit_load_failure(
                report, algorithm_names, dataset_name, reason, kind,
                attempt, telemetry, checkpoint,
            )
        return dataset

    def _load_with_retries(
        self, dataset_name: str, tracer
    ) -> tuple[TimeSeriesDataset | None, str | None, str | None, int]:
        """The load attempt loop: ``(dataset, reason, kind, attempts)``.

        Span-side recording only — terminal-failure bookkeeping (report,
        checkpoint, telemetry) is the caller's job, so parallel runs can
        defer it to the canonical-order merge.
        """
        policy = self.retry_policy
        attempt = 0
        with tracer.span("load", dataset=dataset_name) as span:
            while True:
                attempt += 1
                try:
                    if self.fault_injector is not None:
                        self.fault_injector("load", "", dataset_name, attempt)
                    return self.datasets.load(dataset_name), None, None, attempt
                except Exception as error:
                    kind = policy.classify(error)
                    reason = failure_reason(error)
                    span.add_event(
                        "attempt_failed",
                        attempt=attempt,
                        kind=kind,
                        error=reason,
                    )
                    if policy.should_retry(error, attempt):
                        self.metrics.counter("load_retries").inc()
                        delay = policy.wait(
                            attempt, key=f"load:{dataset_name}"
                        )
                        span.add_event(
                            "retry", attempt=attempt, delay=delay
                        )
                        _logger.warning(
                            "load %s: transient failure (%s), retrying "
                            "attempt %d/%d after %.2fs",
                            dataset_name, reason, attempt + 1,
                            policy.max_attempts, delay,
                        )
                        continue
                    span.set_status("error")
                    span.set_attribute("reason", reason)
                    span.set_attribute("failure_kind", kind)
                    span.set_attribute("attempts", attempt)
                    span.set_attribute(
                        "traceback", format_traceback(error)
                    )
                    self.metrics.counter("datasets_failed").inc()
                    return None, reason, kind, attempt

    def _commit_load_failure(
        self,
        report: RunReport,
        algorithm_names: list[str],
        dataset_name: str,
        reason: str,
        kind: str,
        attempt: int,
        telemetry: GridProgress,
        checkpoint: CheckpointWriter | None,
    ) -> None:
        """Record one failure per cell of a dataset that failed to load."""
        cell_reason = f"dataset load failed: {reason}"
        for algorithm_name in algorithm_names:
            self.metrics.counter("cells_total").inc()
            self.metrics.counter("cells_failed").inc()
            report.failures[(algorithm_name, dataset_name)] = cell_reason
            if checkpoint is not None:
                checkpoint.write_failure(
                    algorithm_name, dataset_name,
                    cell_reason, kind, attempt,
                )
            telemetry.failed(
                algorithm_name, dataset_name, 0.0, cell_reason
            )
            self.progress(
                f"{algorithm_name} on {dataset_name}: "
                f"FAILED ({cell_reason})"
            )

    def _run_cell(
        self,
        report: RunReport,
        algorithm_name: str,
        dataset_name: str,
        dataset: TimeSeriesDataset,
        tracer,
        telemetry: GridProgress,
        checkpoint: CheckpointWriter | None = None,
    ) -> None:
        """One (algorithm, dataset) pair: evaluate, record, report.

        Crash-isolated: any exception (not just ``ReproError``) is
        caught, classified, and recorded as a failure; transient failures
        are retried under the runner's :class:`RetryPolicy`; the grid
        never aborts because of one bad cell.
        """
        self.metrics.counter("cells_total").inc()
        telemetry.started(algorithm_name, dataset_name)
        outcome = self._execute_cell(
            algorithm_name, dataset_name, dataset, tracer
        )
        self._commit_outcome(
            report, outcome, telemetry, checkpoint, announce=False
        )

    def _execute_cell(
        self,
        algorithm_name: str,
        dataset_name: str,
        dataset: TimeSeriesDataset,
        tracer,
    ) -> _CellOutcome:
        """The cell attempt loop, shared by serial mode and pool workers.

        Runs fault injection, the paper's kill rule, and the retry policy
        inside a ``cell`` span, recording attempt events and terminal
        status on the span. Everything observable outside the span — the
        report entry, checkpoint line, metrics, telemetry — is described
        by the returned :class:`_CellOutcome` and committed by the
        caller, so parallel runs commit in canonical order.
        """
        info = self.algorithms.get(algorithm_name)
        policy = self.retry_policy
        retries = 0
        with tracer.span(
            "cell", algorithm=algorithm_name, dataset=dataset_name
        ) as cell_span:
            start = time.perf_counter()
            cpu_start = time.process_time()
            attempt = 0
            while True:
                attempt += 1
                try:
                    if self.fault_injector is not None:
                        self.fault_injector(
                            "evaluate", algorithm_name, dataset_name, attempt
                        )
                    # Preemptive kill rule (the paper's 48-hour cutoff);
                    # falls back to the cooperative check below when
                    # SIGALRM is unavailable (non-Unix or worker thread).
                    with time_limit(self.time_budget_seconds):
                        result = evaluate(
                            info.factory,
                            dataset,
                            algorithm_name,
                            n_folds=self.n_folds,
                            seed=self.seed,
                        )
                    break
                except Exception as error:
                    kind = policy.classify(error)
                    reason = failure_reason(error)
                    cell_span.add_event(
                        "attempt_failed",
                        attempt=attempt,
                        kind=kind,
                        error=reason,
                    )
                    if policy.should_retry(error, attempt):
                        retries += 1
                        delay = policy.wait(
                            attempt, key=f"{algorithm_name}:{dataset_name}"
                        )
                        cell_span.add_event(
                            "retry", attempt=attempt, delay=delay
                        )
                        _logger.warning(
                            "%s on %s: transient failure (%s), retrying "
                            "attempt %d/%d after %.2fs",
                            algorithm_name, dataset_name, reason,
                            attempt + 1, policy.max_attempts, delay,
                        )
                        continue
                    elapsed = time.perf_counter() - start
                    cpu_seconds = time.process_time() - cpu_start
                    timeout = kind == TIMEOUT
                    cell_span.set_status("timeout" if timeout else "error")
                    cell_span.set_attribute("reason", reason)
                    cell_span.set_attribute("failure_kind", kind)
                    cell_span.set_attribute("attempts", attempt)
                    cell_span.set_attribute(
                        "traceback", format_traceback(error)
                    )
                    return _CellOutcome(
                        algorithm=algorithm_name,
                        dataset=dataset_name,
                        result=None,
                        reason=reason,
                        kind=kind,
                        attempts=attempt,
                        elapsed=elapsed,
                        retries=retries,
                        cpu_seconds=cpu_seconds,
                    )
            elapsed = time.perf_counter() - start
            cpu_seconds = time.process_time() - cpu_start
            cell_span.set_attribute("seconds", elapsed)
            cell_span.set_attribute("attempts", attempt)
            if elapsed > self.time_budget_seconds:
                # Cooperative after-the-fact budget check (degraded
                # no-SIGALRM mode): classified timeout, never retried.
                reason = f"exceeded time budget ({elapsed:.1f}s)"
                cell_span.set_status("timeout")
                cell_span.set_attribute("reason", reason)
                cell_span.set_attribute("failure_kind", TIMEOUT)
                cell_span.set_attribute("attempts", attempt)
                return _CellOutcome(
                    algorithm=algorithm_name,
                    dataset=dataset_name,
                    result=None,
                    reason=reason,
                    kind=TIMEOUT,
                    attempts=attempt,
                    elapsed=elapsed,
                    retries=retries,
                    cpu_seconds=cpu_seconds,
                )
            return _CellOutcome(
                algorithm=algorithm_name,
                dataset=dataset_name,
                result=result,
                reason=None,
                kind=None,
                attempts=attempt,
                elapsed=elapsed,
                retries=retries,
                cpu_seconds=cpu_seconds,
            )

    def _commit_outcome(
        self,
        report: RunReport,
        outcome: _CellOutcome,
        telemetry: GridProgress,
        checkpoint: CheckpointWriter | None,
        announce: bool = True,
    ) -> None:
        """Record a cell outcome everywhere it must appear (parent only)."""
        algorithm_name, dataset_name = outcome.algorithm, outcome.dataset
        if announce:
            self.metrics.counter("cells_total").inc()
            telemetry.started(algorithm_name, dataset_name)
        # Feed the measurement back so later estimates for this cell (and
        # this algorithm's calibration factor) come from reality.
        self.cost_model.record(
            algorithm_name, dataset_name, outcome.elapsed
        )
        if outcome.retries:
            self.metrics.counter("cell_retries").inc(outcome.retries)
        result = outcome.result
        if result is None:
            assert outcome.reason is not None and outcome.kind is not None
            timeout = outcome.kind == TIMEOUT
            self.metrics.counter(
                "cells_timeout" if timeout else "cells_failed"
            ).inc()
            report.failures[(algorithm_name, dataset_name)] = outcome.reason
            if checkpoint is not None:
                checkpoint.write_failure(
                    algorithm_name, dataset_name,
                    outcome.reason, outcome.kind, outcome.attempts,
                    wall_seconds=outcome.elapsed,
                    cpu_seconds=outcome.cpu_seconds,
                )
            telemetry.failed(
                algorithm_name, dataset_name, outcome.elapsed,
                outcome.reason, timeout=timeout,
            )
            self.progress(
                f"{algorithm_name} on {dataset_name}: "
                f"FAILED ({outcome.reason})"
            )
            return
        report.results[(algorithm_name, dataset_name)] = result
        if checkpoint is not None:
            checkpoint.write_result(
                algorithm_name, dataset_name, result,
                wall_seconds=outcome.elapsed,
                cpu_seconds=outcome.cpu_seconds,
            )
        self.metrics.counter("cells_completed").inc()
        self.metrics.timer("cell_seconds").observe(outcome.elapsed)
        detail = f"acc={result.accuracy:.3f} hm={result.harmonic_mean:.3f}"
        telemetry.finished(
            algorithm_name, dataset_name, outcome.elapsed, detail
        )
        self.progress(
            f"{algorithm_name} on {dataset_name}: "
            f"acc={result.accuracy:.3f} f1={result.f1:.3f} "
            f"earl={result.earliness:.3f} hm={result.harmonic_mean:.3f} "
            f"({outcome.elapsed:.1f}s)"
        )

    # ------------------------------------------------------------------
    # Cost-model scheduling and checkpoint shards (repro.core.sched).

    def _cell_estimates(
        self,
        cells: list[tuple[str, str]],
        datasets: dict[str, TimeSeriesDataset],
    ) -> dict[tuple[str, str], CellEstimate]:
        """Estimate every cell's duration (attaching loaded shapes)."""
        estimates: dict[tuple[str, str], CellEstimate] = {}
        for algorithm_name, dataset_name in cells:
            dataset = datasets.get(dataset_name)
            shape = dataset.values.shape if dataset is not None else None
            if shape is not None:
                self.cost_model.attach_shape(dataset_name, shape)
            estimates[(algorithm_name, dataset_name)] = (
                self.cost_model.estimate(
                    algorithm_name,
                    dataset_name,
                    shape,
                    self.algorithms.get(algorithm_name).category,
                )
            )
        return estimates

    def _record_sched(
        self,
        grid_span,
        outcome: _CellOutcome,
        estimate: CellEstimate | None,
        stolen: bool = False,
    ) -> None:
        """Scheduler telemetry for one committed cell.

        The live ``sched.*`` counters and the ``sched_cell`` grid-span
        event are written together so :func:`repro.obs.metrics
        .metrics_from_spans` recomputes exactly the live numbers from a
        trace (the rollup==live parity contract).
        """
        if estimate is None:
            return
        error_pct = (
            abs(outcome.elapsed - estimate.seconds)
            / max(estimate.seconds, 1e-9)
            * 100.0
        )
        self.metrics.counter("sched.cells_scheduled").inc()
        if stolen:
            self.metrics.counter("sched.steals").inc()
        self.metrics.timer("sched.estimate_error_pct").observe(error_pct)
        grid_span.add_event(
            "sched_cell",
            algorithm=outcome.algorithm,
            dataset=outcome.dataset,
            estimate_seconds=estimate.seconds,
            actual_seconds=outcome.elapsed,
            error_pct=error_pct,
            source=estimate.source,
            stolen=stolen,
        )

    def _run_sharded(
        self,
        report: RunReport,
        algorithm_names: list[str],
        dataset_names: list[str],
        tracer,
    ) -> RunReport:
        """Run this shard's cost-balanced bin of the grid, then steal.

        ``checkpoint_path`` is a directory shared by every shard; this
        shard appends to ``shard-<i>.jsonl`` in it (resuming implicitly
        if the file exists) and coordinates with siblings purely through
        atomic claim files — no locks, no coordinator. The returned
        report covers this shard's cells only; ``etsc-bench
        merge-checkpoints`` rebuilds the canonical single artifact.
        """
        shard = self.shard
        assert shard is not None
        directory = Path(self.checkpoint_path)
        directory.mkdir(parents=True, exist_ok=True)
        fingerprint = self.fingerprint(algorithm_names, dataset_names)
        own_path = shard_checkpoint_path(directory, shard.index)
        completed: set[tuple[str, str]] = set()
        append = own_path.exists()
        if append:
            state = load_checkpoint(own_path)
            state.validate_fingerprint(fingerprint)
            report.results.update(state.results)
            report.failures.update(state.failures)
            report.categories.update(state.categories)
            report._frequencies.update(state.frequencies)
            completed = state.completed_keys()
            self._seed_cost_model(state)
            _logger.info(
                "shard %s resuming from %s: %d cells already complete",
                shard, own_path, len(completed),
            )
        claims = ClaimBoard(claims_directory(directory), shard.owner)
        checkpoint = CheckpointWriter(own_path, fingerprint, append=append)
        all_cells = [
            (algorithm_name, dataset_name)
            for dataset_name in dataset_names
            for algorithm_name in algorithm_names
        ]
        telemetry = GridProgress(len(all_cells), logger=_logger)
        completion = self.metrics.gauge("grid_completion")
        workers = self._effective_workers()
        try:
            with tracer.span(
                "grid",
                n_algorithms=len(algorithm_names),
                n_datasets=len(dataset_names),
                n_folds=self.n_folds,
                time_budget_seconds=self.time_budget_seconds,
                seed=self.seed,
                resumed_cells=len(completed),
                workers=workers,
                shard=str(shard),
            ) as grid_span:
                self._run_shard_grid(
                    report, all_cells, dataset_names, completed,
                    directory, own_path, fingerprint, claims, checkpoint,
                    telemetry, completion, tracer, grid_span, workers,
                    shard,
                )
        finally:
            checkpoint.close()
        return report

    def _run_shard_grid(
        self,
        report: RunReport,
        all_cells: list[tuple[str, str]],
        dataset_names: list[str],
        completed: set[tuple[str, str]],
        directory: Path,
        own_path: Path,
        fingerprint: dict,
        claims: ClaimBoard,
        checkpoint: CheckpointWriter,
        telemetry: GridProgress,
        completion,
        tracer,
        grid_span,
        workers: int,
        shard: ShardSpec,
    ) -> None:
        """Shard body: load, partition, run own bin, steal the rest."""
        # Load every dataset once: any bin's cells may execute here
        # (stealing), and the partition heuristic needs the shapes.
        datasets: dict[str, TimeSeriesDataset] = {}
        load_failures: dict[str, tuple[str, str, int]] = {}
        for dataset_name in dataset_names:
            dataset, reason, kind, attempt = self._load_with_retries(
                dataset_name, tracer
            )
            if dataset is None:
                assert reason is not None and kind is not None
                load_failures[dataset_name] = (reason, kind, attempt)
            else:
                datasets[dataset_name] = dataset
                self.cost_model.attach_shape(
                    dataset_name, dataset.values.shape
                )
        # Partition on the *pure heuristic* over the full grid — never
        # on recorded history — so every shard, whatever it has resumed
        # or measured, derives identical bins. (Should shards still
        # disagree — say a transient load failure hid a shape from one —
        # the claim board keeps each cell single-run; only balance
        # suffers.)
        heuristics = {
            (algorithm_name, dataset_name): self.cost_model.heuristic(
                datasets[dataset_name].values.shape
                if dataset_name in datasets
                else None,
                self.algorithms.get(algorithm_name).category,
            )
            for algorithm_name, dataset_name in all_cells
        }
        bins = partition_cells(all_cells, heuristics, shard.count)
        own_bin = bins[shard.index]
        own_set = set(own_bin)
        # Dispatch order within the shard may use the full cost model
        # (history-calibrated); only the partition must stay history-free.
        estimates = self._cell_estimates(all_cells, datasets)
        seconds = {key: est.seconds for key, est in estimates.items()}
        runnable = [key for key in own_bin if key not in completed]
        if self.scheduler == "lpt":
            runnable = lpt_order(runnable, seconds)
        claimed = [key for key in runnable if claims.claim(*key)]
        grid_span.add_event(
            "sched_plan",
            scheduler=self.scheduler,
            n_cells=len(claimed),
            workers=workers,
            shard=str(shard),
            bin_cells=len(own_bin),
            estimated_total_seconds=sum(seconds[key] for key in claimed),
        )
        if len(claimed) < len(runnable):
            _logger.info(
                "shard %s: %d own-bin cells already claimed by siblings",
                shard, len(runnable) - len(claimed),
            )
        self._execute_claimed(
            claimed, datasets, load_failures, estimates, report,
            checkpoint, telemetry, completion, tracer, grid_span,
            workers, stolen=False,
        )
        if not self.shard_steal:
            return
        # Steal phase: everything outside our bin that nobody has
        # completed or claimed, longest first — the point of stealing is
        # to absorb a straggler sibling's expensive tail.
        sibling_done = self._sibling_completed(
            directory, own_path, fingerprint
        )
        candidates = [
            key
            for key in all_cells
            if key not in own_set
            and key not in completed
            and key not in sibling_done
        ]
        if self.scheduler == "lpt":
            candidates = lpt_order(candidates, seconds)
        stolen = [
            key
            for key in candidates
            if not claims.claimed_by_other(*key) and claims.claim(*key)
        ]
        if stolen:
            self.progress(
                f"shard {shard}: stealing {len(stolen)} unclaimed "
                f"cells from sibling bins"
            )
            _logger.info(
                "shard %s stealing %d unclaimed cells", shard, len(stolen)
            )
        self._execute_claimed(
            stolen, datasets, load_failures, estimates, report,
            checkpoint, telemetry, completion, tracer, grid_span,
            workers, stolen=True,
        )

    def _sibling_completed(
        self, directory: Path, own_path: Path, fingerprint: dict
    ) -> set[tuple[str, str]]:
        """Cells sibling shard checkpoints already have outcomes for."""
        done: set[tuple[str, str]] = set()
        for path in find_shard_checkpoints(directory):
            if path == own_path:
                continue
            try:
                state = load_checkpoint(path)
                state.validate_fingerprint(fingerprint)
            except CheckpointError as error:
                _logger.warning(
                    "ignoring sibling checkpoint %s: %s", path, error
                )
                continue
            done |= state.completed_keys()
        return done

    def _execute_claimed(
        self,
        keys: list[tuple[str, str]],
        datasets: dict[str, TimeSeriesDataset],
        load_failures: dict[str, tuple[str, str, int]],
        estimates: dict[tuple[str, str], CellEstimate],
        report: RunReport,
        checkpoint: CheckpointWriter,
        telemetry: GridProgress,
        completion,
        tracer,
        grid_span,
        workers: int,
        stolen: bool,
    ) -> None:
        """Run a batch of claimed cells (pool when ``workers > 1``).

        Cells commit in the batch's dispatch order — the per-shard file
        is not canonical; the merge step rebuilds canonical order.
        Datasets announce lazily, once each, on first committed cell.
        """
        global _WORKER_STATE
        poolable = [key for key in keys if key[1] in datasets]
        executor = None
        futures: dict[tuple[str, str], Any] = {}
        if workers > 1 and len(poolable) > 1:
            _WORKER_STATE = {"runner": self, "datasets": datasets}
            executor = ProcessPoolExecutor(
                max_workers=min(workers, len(poolable)),
                mp_context=multiprocessing.get_context("fork"),
            )
            futures = {
                key: executor.submit(_evaluate_cell_worker, key)
                for key in poolable
            }
        try:
            for key in keys:
                algorithm_name, dataset_name = key
                if dataset_name in load_failures:
                    reason, kind, attempt = load_failures[dataset_name]
                    self._commit_load_failure(
                        report, [algorithm_name], dataset_name, reason,
                        kind, attempt, telemetry, checkpoint,
                    )
                    completion.set(telemetry.fraction_done)
                    continue
                dataset = datasets[dataset_name]
                if dataset_name not in report.categories:
                    self._commit_dataset(
                        report, dataset_name, dataset, checkpoint
                    )
                span_records: list[dict[str, Any]] = []
                if key in futures:
                    try:
                        outcome, span_records = futures[key].result()
                    except (BrokenProcessPool, OSError) as error:
                        _logger.warning(
                            "%s on %s: worker pool broke (%s); "
                            "re-running the cell in the parent",
                            algorithm_name, dataset_name, error,
                        )
                        span_records = []
                        outcome = self._execute_cell(
                            algorithm_name, dataset_name, dataset, tracer
                        )
                else:
                    outcome = self._execute_cell(
                        algorithm_name, dataset_name, dataset, tracer
                    )
                if span_records and isinstance(tracer, Tracer):
                    tracer.adopt_spans(
                        span_records, parent_id=grid_span.span_id
                    )
                self._commit_outcome(report, outcome, telemetry, checkpoint)
                self._record_sched(
                    grid_span, outcome, estimates.get(key), stolen=stolen
                )
                completion.set(telemetry.fraction_done)
        finally:
            if executor is not None:
                executor.shutdown(wait=False, cancel_futures=True)
                _WORKER_STATE = None
