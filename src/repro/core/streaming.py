"""Point-by-point streaming interface over a trained early classifier.

The paper's online analysis (Section 6.2.5) asks whether an algorithm can
emit its decision before the next observation arrives. The
:class:`StreamingSession` makes that setting concrete: measurements are
pushed one time-point at a time; after each push the underlying early
classifier is consulted on the observed prefix, and the session reports a
decision as soon as the classifier commits *within* the observed data. Per-
push latency is recorded so feasibility against the sampling period can be
checked directly (the Figure 13 criterion).

The session never un-commits: once a decision is emitted the remaining
pushes are absorbed without further classifier calls.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..data.dataset import TimeSeriesDataset
from ..exceptions import DataError, NotFittedError
from ..obs.trace import get_tracer
from .base import EarlyClassifier
from .prediction import EarlyPrediction

__all__ = ["StreamingSession", "StreamingDecision", "LatencySummary"]


@dataclass(frozen=True)
class StreamingDecision:
    """A decision emitted by a streaming session."""

    label: int
    decided_at: int  # number of points observed when the decision fired
    confidence: float | None


@dataclass(frozen=True)
class LatencySummary:
    """Order statistics of a session's per-consultation latencies.

    The Figure 13 feasibility question is about the *distribution* of
    push latencies, not just their mean — a p95 above the sampling period
    still drops observations even when the mean keeps up.
    """

    count: int
    mean: float
    p50: float
    p95: float
    max: float

    def as_dict(self) -> dict[str, float]:
        """Plain-dict form (for JSON reports and metric snapshots)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "max": self.max,
        }


class StreamingSession:
    """Feed one multivariate time-point at a time to an early classifier.

    Parameters
    ----------
    classifier:
        A *trained* early classifier.
    series_length:
        Full horizon of the incoming series (needed by algorithms whose
        earliness reasoning uses the total length). Must not exceed the
        classifier's training length.
    check_every:
        Consult the classifier every ``check_every`` pushes (1 = every
        point). Coarser checking trades decision latency for throughput —
        useful when each consultation is expensive.
    """

    def __init__(
        self,
        classifier: EarlyClassifier,
        series_length: int,
        check_every: int = 1,
    ) -> None:
        if not classifier.is_trained:
            raise NotFittedError("StreamingSession needs a trained classifier")
        if series_length < 1:
            raise DataError("series_length must be >= 1")
        if series_length > classifier.trained_length:
            raise DataError(
                f"series_length {series_length} exceeds the classifier's "
                f"training length {classifier.trained_length}"
            )
        if check_every < 1:
            raise DataError("check_every must be >= 1")
        self.classifier = classifier
        self.series_length = series_length
        self.check_every = check_every
        self._buffer: list[np.ndarray] = []
        self._decision: StreamingDecision | None = None
        self.push_latencies: list[float] = []

    # ------------------------------------------------------------------
    @property
    def n_observed(self) -> int:
        """Number of time-points pushed so far."""
        return len(self._buffer)

    @property
    def decision(self) -> StreamingDecision | None:
        """The emitted decision, or ``None`` while undecided."""
        return self._decision

    @property
    def is_decided(self) -> bool:
        """Whether a decision has been emitted."""
        return self._decision is not None

    # ------------------------------------------------------------------
    def _consult(self) -> None:
        values = np.stack(self._buffer, axis=-1)[np.newaxis, :, :]
        prefix = TimeSeriesDataset(values, np.zeros(1, dtype=int))
        prediction: EarlyPrediction = self.classifier.predict(prefix)[0]
        # The classifier treats the observed prefix as a complete series
        # and *forces* a decision at its last point. A commitment exactly
        # at the prefix end is therefore ambiguous (genuine rule-fire vs
        # forced) unless the true series has actually ended — so only
        # strictly-interior commitments and the final forced decision are
        # accepted; a genuine fire at the boundary is picked up on the
        # next consultation.
        genuine = prediction.prefix_length < self.n_observed
        final = self.n_observed == self.series_length
        if genuine or final:
            self._decision = StreamingDecision(
                label=prediction.label,
                decided_at=self.n_observed,
                confidence=prediction.confidence,
            )

    def push(self, point: np.ndarray | float) -> StreamingDecision | None:
        """Observe one time-point; returns the decision once available.

        ``point`` is a scalar for univariate streams or a vector with one
        value per variable.
        """
        if self.n_observed >= self.series_length:
            raise DataError("stream already received its full series")
        point = np.atleast_1d(np.asarray(point, dtype=float))
        if self._buffer and point.shape != self._buffer[0].shape:
            raise DataError(
                f"point has {point.shape[0]} variables, expected "
                f"{self._buffer[0].shape[0]}"
            )
        self._buffer.append(point)
        if self._decision is not None:
            return self._decision
        due = (
            self.n_observed % self.check_every == 0
            or self.n_observed == self.series_length
        )
        if due:
            with get_tracer().span("push", n_observed=self.n_observed) as span:
                start = time.perf_counter()
                self._consult()
                latency = time.perf_counter() - start
                self.push_latencies.append(latency)
                span.set_attribute("seconds", latency)
                span.set_attribute("decided", self._decision is not None)
        return self._decision

    def run(self, series: np.ndarray) -> StreamingDecision:
        """Push an entire ``(n_variables, length)`` series point by point.

        Returns the decision (guaranteed by the forced commit at the final
        point). Points after the decision are still consumed, mirroring a
        sensor that keeps transmitting.
        """
        series = np.atleast_2d(np.asarray(series, dtype=float))
        if series.shape[1] != self.series_length - self.n_observed:
            raise DataError(
                f"series provides {series.shape[1]} points, session expects "
                f"{self.series_length - self.n_observed} more"
            )
        decision = None
        with get_tracer().span(
            "stream",
            series_length=self.series_length,
            check_every=self.check_every,
        ) as span:
            for t in range(series.shape[1]):
                decision = self.push(series[:, t])
            assert decision is not None, (
                "forced decision missing at full length"
            )
            span.set_attribute("decided_at", decision.decided_at)
            span.set_attribute("n_consultations", len(self.push_latencies))
        return decision

    def latency_summary(self) -> LatencySummary:
        """Mean/p50/p95/max of the recorded per-consultation latencies.

        Shared by the Figure 13 bench and the metrics layer, so every
        latency figure comes from the same order statistics.
        """
        if not self.push_latencies:
            raise DataError("no consultations recorded yet")
        latencies = np.asarray(self.push_latencies, dtype=float)
        return LatencySummary(
            count=int(latencies.size),
            mean=float(latencies.mean()),
            p50=float(np.quantile(latencies, 0.50)),
            p95=float(np.quantile(latencies, 0.95)),
            max=float(latencies.max()),
        )

    def mean_latency_ratio(self, frequency_seconds: float) -> float:
        """Mean per-consultation latency over the sampling period.

        The Figure 13 feasibility criterion: values below 1 keep up with
        the stream.
        """
        if frequency_seconds <= 0:
            raise DataError("frequency_seconds must be positive")
        return self.latency_summary().mean / frequency_seconds
