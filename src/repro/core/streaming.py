"""Point-by-point streaming interface over a trained early classifier.

The paper's online analysis (Section 6.2.5) asks whether an algorithm can
emit its decision before the next observation arrives. The
:class:`StreamingSession` makes that setting concrete: measurements are
pushed one time-point at a time; after each push the underlying early
classifier is consulted on the observed prefix, and the session reports a
decision as soon as the classifier commits *within* the observed data. Per-
push latency is recorded so feasibility against the sampling period can be
checked directly (the Figure 13 criterion).

The session never un-commits: once a decision is emitted the remaining
pushes are absorbed without further classifier calls.

Production streams are not clean: points arrive malformed, consultations
overrun the sampling period, classifiers throw. The resilient wrapper
that handles all of that — input guards, deadlines, fallback degradation,
circuit breakers — is :class:`repro.serve.GuardedStreamingSession`, which
extends this class.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..exceptions import DataError, NotFittedError
from ..obs.trace import get_tracer
from .base import EarlyClassifier
from .prediction import SOURCE_FALLBACK, SOURCE_MODEL, EarlyPrediction

__all__ = ["StreamingSession", "StreamingDecision", "LatencySummary"]


@dataclass(frozen=True)
class StreamingDecision:
    """A decision emitted by a streaming session.

    ``degraded`` / ``source`` mirror the fields of
    :class:`~repro.core.prediction.EarlyPrediction`: a decision the
    serving layer had to source from a fallback predictor (deadline miss,
    consultation failure, open circuit breaker) carries
    ``degraded=True, source="fallback"``. Plain sessions always emit
    model-sourced decisions.
    """

    label: int
    decided_at: int  # number of points observed when the decision fired
    confidence: float | None
    degraded: bool = False
    source: str = SOURCE_MODEL


@dataclass(frozen=True)
class LatencySummary:
    """Order statistics of a session's per-consultation latencies.

    The Figure 13 feasibility question is about the *distribution* of
    push latencies, not just their mean — a p95 above the sampling period
    still drops observations even when the mean keeps up. ``p99`` exposes
    the tail the paper's online criterion is really about, and
    ``over_budget_count`` is the number of consultations that exceeded
    the sampling period (0 when no budget was supplied), so Figure 13
    feasibility can be read directly off the summary.

    ``p999`` and ``jitter`` (the population standard deviation of the
    sample) serve the SLO harness (:mod:`repro.slo`): real-time scenarios
    are judged on the extreme tail and on latency *stability*, not just
    central quantiles. Both default to 0 so historical construction
    sites keep working.

    Small-sample semantics
    ----------------------
    Quantiles are linear-interpolated order statistics
    (``numpy.quantile`` with the default method): with ``n`` samples,
    quantile ``q`` interpolates between the order statistics bracketing
    position ``q * (n - 1)``. For tiny samples the tail quantiles
    therefore collapse onto the maximum — with fewer than ``1/(1-q)``
    samples there is simply no observation beyond position ``q``, so
    ``p999 == max`` for every ``n <= 1000``-ish sample set and
    ``p99 == max`` whenever ``n <= 100``-ish. That is the correct
    reading (the observed tail *is* the max), but per-shard fleet
    summaries over a handful of consultations should be compared on
    ``p50``/``mean``, not ``p999``.

    An *empty* sample produces the all-zero :meth:`empty` summary
    (``count == 0``) rather than raising — a fleet shard that served no
    consultations still renders a report row. Callers that consider "no
    consultations yet" an error (``StreamingSession.latency_summary``)
    check the count themselves.
    """

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float
    over_budget_count: int = 0
    p999: float = 0.0
    jitter: float = 0.0

    @classmethod
    def empty(cls) -> "LatencySummary":
        """The all-zero summary of an empty sample (``count == 0``)."""
        return cls(count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0, max=0.0)

    @classmethod
    def from_latencies(
        cls,
        latencies: "np.ndarray | list[float]",
        budget_seconds: float | None = None,
    ) -> "LatencySummary":
        """Summarize a latency sample (shared by sessions, serve-sim,
        the SLO harness, and the fleet's per-shard rollups).

        An empty sample returns :meth:`empty` — ``numpy.quantile`` would
        raise an ``IndexError`` on a zero-length array, and a shard that
        served nothing is a report row, not a crash. See the class
        docstring for how the tail quantiles behave on tiny samples.
        """
        if budget_seconds is not None and budget_seconds <= 0:
            raise DataError("budget_seconds must be positive")
        latencies = np.asarray(latencies, dtype=float)
        if latencies.size == 0:
            return cls.empty()
        over_budget = (
            int((latencies > budget_seconds).sum())
            if budget_seconds is not None
            else 0
        )
        return cls(
            count=int(latencies.size),
            mean=float(latencies.mean()),
            p50=float(np.quantile(latencies, 0.50)),
            p95=float(np.quantile(latencies, 0.95)),
            p99=float(np.quantile(latencies, 0.99)),
            max=float(latencies.max()),
            over_budget_count=over_budget,
            p999=float(np.quantile(latencies, 0.999)),
            jitter=float(latencies.std()),
        )

    def as_dict(self) -> dict[str, float]:
        """Plain-dict form (for JSON reports and metric snapshots)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "p999": self.p999,
            "max": self.max,
            "jitter": self.jitter,
            "over_budget_count": self.over_budget_count,
        }


class StreamingSession:
    """Feed one multivariate time-point at a time to an early classifier.

    Parameters
    ----------
    classifier:
        A *trained* early classifier.
    series_length:
        Full horizon of the incoming series (needed by algorithms whose
        earliness reasoning uses the total length). Must not exceed the
        classifier's training length.
    check_every:
        Consult the classifier every ``check_every`` pushes (1 = every
        point). Coarser checking trades decision latency for throughput —
        useful when each consultation is expensive.
    """

    def __init__(
        self,
        classifier: EarlyClassifier,
        series_length: int,
        check_every: int = 1,
    ) -> None:
        if not classifier.is_trained:
            raise NotFittedError("StreamingSession needs a trained classifier")
        if series_length < 1:
            raise DataError("series_length must be >= 1")
        if series_length > classifier.trained_length:
            raise DataError(
                f"series_length {series_length} exceeds the classifier's "
                f"training length {classifier.trained_length}"
            )
        if check_every < 1:
            raise DataError("check_every must be >= 1")
        self.classifier = classifier
        self.series_length = series_length
        self.check_every = check_every
        self._buffer: list[np.ndarray] = []
        self._decision: StreamingDecision | None = None
        self._ended = False
        self.push_latencies: list[float] = []

    # ------------------------------------------------------------------
    @property
    def n_observed(self) -> int:
        """Number of time-points pushed so far."""
        return len(self._buffer)

    @property
    def decision(self) -> StreamingDecision | None:
        """The emitted decision, or ``None`` while undecided."""
        return self._decision

    @property
    def is_decided(self) -> bool:
        """Whether a decision has been emitted."""
        return self._decision is not None

    # ------------------------------------------------------------------
    def _predict_prefix(self, values: np.ndarray) -> EarlyPrediction:
        """One classifier consultation on the ``(V, t)`` observed prefix.

        The resilient serving subclass overrides this hook to add fault
        injection, deadline enforcement, circuit breaking, and fallback
        degradation around the model call.
        """
        return self.classifier.predict_one(values)

    def _consult(self) -> None:
        prediction = self._predict_prefix(np.stack(self._buffer, axis=-1))
        # The classifier treats the observed prefix as a complete series
        # and *forces* a decision at its last point. A commitment exactly
        # at the prefix end is therefore ambiguous (genuine rule-fire vs
        # forced) unless the true series has actually ended — so only
        # strictly-interior commitments and the final forced decision are
        # accepted; a genuine fire at the boundary is picked up on the
        # next consultation. Fallback-sourced answers carry no earliness
        # trigger at all (their prefix_length always equals the observed
        # length), so they can only ever commit as the forced final
        # decision.
        genuine = (
            prediction.prefix_length < self.n_observed
            and prediction.source != SOURCE_FALLBACK
        )
        final = self.n_observed == self.series_length or self._ended
        if genuine or final:
            self._decision = StreamingDecision(
                label=prediction.label,
                decided_at=self.n_observed,
                confidence=prediction.confidence,
                degraded=prediction.degraded,
                source=prediction.source,
            )

    def _timed_consult(self) -> None:
        """Consult under a ``push`` span, recording the latency."""
        with get_tracer().span("push", n_observed=self.n_observed) as span:
            start = time.perf_counter()
            self._consult()
            latency = time.perf_counter() - start
            self.push_latencies.append(latency)
            span.set_attribute("seconds", latency)
            span.set_attribute("decided", self._decision is not None)
            if self._decision is not None:
                span.set_attribute("source", self._decision.source)

    def _coerce_point(self, point: np.ndarray | float) -> np.ndarray:
        """Validate and coerce one pushed point to a float vector.

        Raises an explicit :class:`~repro.exceptions.DataError` for
        non-numeric input, non-1-D points, and channel counts that
        disagree with the classifier's training data — rather than
        letting a raw numpy error surface deep inside the classifier.
        """
        try:
            point = np.asarray(point, dtype=float)
        except (TypeError, ValueError) as error:
            raise DataError(
                f"pushed point is not numeric: {error}"
            ) from error
        point = np.atleast_1d(point)
        if point.ndim != 1:
            raise DataError(
                f"a pushed point must be a scalar or a 1-D vector with one "
                f"value per variable, got shape {point.shape}"
            )
        expected = self.classifier.trained_variables
        if point.shape[0] != expected:
            raise DataError(
                f"point has {point.shape[0]} variables, expected {expected}"
            )
        return point

    def push(self, point: np.ndarray | float) -> StreamingDecision | None:
        """Observe one time-point; returns the decision once available.

        ``point`` is a scalar for univariate streams or a vector with one
        value per variable.
        """
        if self.n_observed >= self.series_length:
            raise DataError("stream already received its full series")
        point = self._coerce_point(point)
        self._buffer.append(point)
        if self._decision is not None:
            return self._decision
        due = (
            self.n_observed % self.check_every == 0
            or self.n_observed == self.series_length
        )
        if due:
            self._timed_consult()
        return self._decision

    def finalize(self) -> StreamingDecision:
        """Declare the stream over and force a decision on what arrived.

        Needed when a stream ends short of ``series_length`` (sensor
        dropout, or points rejected by a serving-layer input guard): the
        classifier's forced commit at the observed prefix end is accepted
        as final. Idempotent once decided.
        """
        if self._decision is not None:
            return self._decision
        if not self._buffer:
            raise DataError("cannot finalize a stream with no observations")
        self._ended = True
        self._timed_consult()
        assert self._decision is not None, "forced final decision missing"
        return self._decision

    def run(self, series: np.ndarray) -> StreamingDecision:
        """Push an entire ``(n_variables, length)`` series point by point.

        Returns the decision (guaranteed by the forced commit at the final
        point). Points after the decision are still consumed, mirroring a
        sensor that keeps transmitting.
        """
        series = np.atleast_2d(np.asarray(series, dtype=float))
        if series.shape[1] != self.series_length - self.n_observed:
            raise DataError(
                f"series provides {series.shape[1]} points, session expects "
                f"{self.series_length - self.n_observed} more"
            )
        decision = None
        with get_tracer().span(
            "stream",
            series_length=self.series_length,
            check_every=self.check_every,
        ) as span:
            for t in range(series.shape[1]):
                decision = self.push(series[:, t])
            if decision is None:
                # Reachable only in subclasses that may skip points (an
                # input guard rejecting malformed observations).
                decision = self.finalize()
            span.set_attribute("decided_at", decision.decided_at)
            span.set_attribute("n_consultations", len(self.push_latencies))
        return decision

    def latency_summary(
        self, budget_seconds: float | None = None
    ) -> LatencySummary:
        """Mean/p50/p95/p99/max of the recorded consultation latencies.

        Shared by the Figure 13 bench and the metrics layer, so every
        latency figure comes from the same order statistics. With
        ``budget_seconds`` (the stream's sampling period),
        ``over_budget_count`` reports how many consultations overran it —
        each one a dropped observation in a real deployment.
        """
        if not self.push_latencies:
            # A session with zero consultations is caller error (nothing
            # was ever pushed) — unlike an aggregate rollup, where an
            # empty sample is a legitimate all-zero row.
            raise DataError("no consultations recorded yet")
        return LatencySummary.from_latencies(
            self.push_latencies, budget_seconds
        )

    def mean_latency_ratio(self, frequency_seconds: float) -> float:
        """Mean per-consultation latency over the sampling period.

        The Figure 13 feasibility criterion: values below 1 keep up with
        the stream.
        """
        if frequency_seconds <= 0:
            raise DataError("frequency_seconds must be positive")
        return self.latency_summary().mean / frequency_seconds
