"""Algorithm and dataset registries — the extensibility surface (Sec. 5.5).

The paper's framework lets users drop in new algorithms and datasets; here
registration is explicit. A registered algorithm is a factory of
:class:`~repro.core.base.EarlyClassifier` instances plus the metadata that
Table 2 reports (category, multivariate support, implementation language —
always Python here). A registered dataset is a factory returning a
:class:`~repro.data.dataset.TimeSeriesDataset`.

The default registry (populated by :func:`default_algorithms` /
:func:`default_datasets`) holds every algorithm and dataset of the paper's
empirical comparison, so a bench or the CLI can iterate the whole grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..data.dataset import TimeSeriesDataset
from ..exceptions import RegistryError
from .base import EarlyClassifier

__all__ = [
    "AlgorithmInfo",
    "AlgorithmRegistry",
    "DatasetRegistry",
    "default_algorithms",
    "default_datasets",
]


@dataclass(frozen=True)
class AlgorithmInfo:
    """Metadata of a registered algorithm (the rows of Table 2)."""

    name: str
    factory: Callable[[], EarlyClassifier] = field(repr=False)
    category: str = "miscellaneous"  # model/prefix/shapelet-based, ...
    supports_multivariate: bool = False
    early: bool = True
    language: str = "Python"


class AlgorithmRegistry:
    """Name-keyed registry of early-classification algorithms."""

    def __init__(self) -> None:
        self._algorithms: dict[str, AlgorithmInfo] = {}

    def register(
        self,
        name: str,
        factory: Callable[[], EarlyClassifier],
        category: str = "miscellaneous",
        supports_multivariate: bool = False,
        early: bool = True,
    ) -> AlgorithmInfo:
        """Add an algorithm; duplicate names are rejected."""
        if name in self._algorithms:
            raise RegistryError(f"algorithm {name!r} already registered")
        info = AlgorithmInfo(
            name=name,
            factory=factory,
            category=category,
            supports_multivariate=supports_multivariate,
            early=early,
        )
        self._algorithms[name] = info
        return info

    def get(self, name: str) -> AlgorithmInfo:
        """Look up one algorithm by name."""
        try:
            return self._algorithms[name]
        except KeyError:
            known = ", ".join(sorted(self._algorithms))
            raise RegistryError(
                f"unknown algorithm {name!r}; known: {known}"
            ) from None

    def names(self) -> list[str]:
        """Registered algorithm names in registration order."""
        return list(self._algorithms)

    def __contains__(self, name: str) -> bool:
        return name in self._algorithms

    def __iter__(self):
        return iter(self._algorithms.values())

    def __len__(self) -> int:
        return len(self._algorithms)


class DatasetRegistry:
    """Name-keyed registry of dataset factories."""

    def __init__(self) -> None:
        self._datasets: dict[str, Callable[[], TimeSeriesDataset]] = {}

    def register(
        self, name: str, factory: Callable[[], TimeSeriesDataset]
    ) -> None:
        """Add a dataset factory; duplicate names are rejected."""
        if name in self._datasets:
            raise RegistryError(f"dataset {name!r} already registered")
        self._datasets[name] = factory

    def load(self, name: str) -> TimeSeriesDataset:
        """Build the named dataset."""
        try:
            factory = self._datasets[name]
        except KeyError:
            known = ", ".join(sorted(self._datasets))
            raise RegistryError(
                f"unknown dataset {name!r}; known: {known}"
            ) from None
        return factory()

    def names(self) -> list[str]:
        """Registered dataset names in registration order."""
        return list(self._datasets)

    def __contains__(self, name: str) -> bool:
        return name in self._datasets

    def __len__(self) -> int:
        return len(self._datasets)


def default_algorithms(fast: bool = True) -> AlgorithmRegistry:
    """The paper's eight evaluated algorithms, paper-default parameters.

    ``fast=True`` shrinks budget-style parameters (checkpoints, epochs,
    kernel counts) so the full evaluation grid runs at laptop scale; the
    algorithmic structure is unchanged. ``fast=False`` uses the Table 4
    settings directly.
    """
    from ..etsc.ecec import ECEC
    from ..etsc.economy_k import EconomyK
    from ..etsc.ects import ECTS
    from ..etsc.edsc import EDSC
    from ..etsc.strut import s_mini, s_mlstm, s_weasel
    from ..etsc.teaser import TEASER

    registry = AlgorithmRegistry()
    if fast:
        registry.register(
            "ECEC",
            lambda: ECEC(n_prefixes=10, n_folds=3),
            category="model-based",
        )
        registry.register(
            "ECO-K",
            # The paper's k grid {1,2,3} triples training; the fast profile
            # fixes k=2 to keep ECO-K in its published "time-effective" band.
            lambda: EconomyK(
                n_clusters=2, n_checkpoints=8, n_estimators=10
            ),
            category="model-based",
        )
        registry.register("ECTS", lambda: ECTS(), category="prefix-based")
        registry.register(
            "EDSC",
            lambda: EDSC(n_lengths=2, stride=2, max_shapelets=25),
            category="shapelet-based",
        )
        registry.register(
            "TEASER", lambda: TEASER(n_prefixes=8), category="prefix-based"
        )
        registry.register(
            "S-MINI",
            lambda: s_mini(n_features=500),
            category="selective-truncation",
            supports_multivariate=True,
        )
        registry.register(
            "S-WEASEL",
            lambda: s_weasel(),
            category="selective-truncation",
            supports_multivariate=True,
        )
        registry.register(
            "S-MLSTM",
            lambda: s_mlstm(n_epochs=10),
            category="selective-truncation",
            supports_multivariate=True,
        )
        return registry
    registry.register(
        "ECEC", lambda: ECEC(n_prefixes=20), category="model-based"
    )
    registry.register("ECO-K", lambda: EconomyK(), category="model-based")
    registry.register("ECTS", lambda: ECTS(support=0), category="prefix-based")
    registry.register(
        "EDSC",
        lambda: EDSC(k=3.0, min_length=5, n_lengths=None, stride=1),
        category="shapelet-based",
    )
    registry.register(
        "TEASER", lambda: TEASER(n_prefixes=20), category="prefix-based"
    )
    registry.register(
        "S-MINI",
        lambda: s_mini(n_features=10000),
        category="selective-truncation",
        supports_multivariate=True,
    )
    registry.register(
        "S-WEASEL",
        lambda: s_weasel(),
        category="selective-truncation",
        supports_multivariate=True,
    )
    registry.register(
        "S-MLSTM",
        lambda: s_mlstm(n_epochs=30, lstm_units=None),
        category="selective-truncation",
        supports_multivariate=True,
    )
    return registry


def extended_algorithms(fast: bool = True) -> AlgorithmRegistry:
    """The default algorithms plus the framework extensions.

    Adds MORI-SR (the stopping-rule method of the paper's reference [28],
    listed among the approaches the framework plans to incorporate) and the
    FIXED-50 fixed-prefix baseline.
    """
    from ..etsc.extensions import FixedPrefix, MoriSR

    registry = default_algorithms(fast=fast)
    registry.register(
        "MORI-SR",
        lambda: MoriSR(n_checkpoints=8 if fast else 20),
        category="model-based",
    )
    registry.register(
        "FIXED-50", lambda: FixedPrefix(fraction=0.5), category="baseline"
    )
    from ..etsc.sprt import SPRTClassifier

    # Binary-class only: on multiclass datasets the runner records the
    # incompatibility as a failure, exactly like any other unsupported case.
    registry.register(
        "SPRT",
        lambda: SPRTClassifier(),
        category="model-based",
        supports_multivariate=True,
    )
    return registry


def default_datasets(scale: float = 1.0, seed: int = 0) -> DatasetRegistry:
    """The paper's twelve datasets (synthetic stand-ins; see DESIGN.md).

    ``scale`` shrinks instance counts (and, for the widest sets, lengths)
    uniformly so the grid stays tractable; 1.0 keeps the generator
    defaults, which are themselves laptop-scale versions of the published
    sizes. Dataset *shape* statistics (class counts, imbalance, CoV
    category) are preserved by construction.
    """
    from ..datasets import biological, maritime, ucr

    registry = DatasetRegistry()
    registry.register(
        "Biological", lambda: biological.generate(scale=scale, seed=seed)
    )
    registry.register(
        "Maritime", lambda: maritime.generate(scale=scale, seed=seed)
    )
    for name in ucr.DATASET_NAMES:
        registry.register(
            name,
            lambda name=name: ucr.generate(name, scale=scale, seed=seed),
        )
    return registry
